#!/bin/sh
# Offline CI gate for the workspace. No network access is required at
# any step: all dependencies are in-tree path crates (enforced by the
# tidy `deps` check).
#
# Steps, in order (first failure stops the run):
#   1. cargo fmt --check          formatting drift
#   2. cargo run -p tidy          in-tree static analysis (6 checks)
#   3. cargo build --release      the tree compiles at opt level
#   4. cargo test -q              unit + integration + tier-1 suites
#   5. parallel-join equivalence  morsel executor ≡ serial joins, run
#                                 single-test-threaded so the executor's
#                                 own 7-thread pools are the only
#                                 parallelism in the process
#
# Exit codes:
#   0  everything passed
#   1  formatting drift (cargo fmt --check failed)
#   2  tidy findings or tidy usage error (see its own output)
#   3  release build failed
#   4  tests failed
#   5  parallel-join equivalence suite failed
set -u

cd "$(dirname "$0")" || exit 2

echo "ci: cargo fmt --check"
cargo fmt --check || exit 1

echo "ci: cargo run -p tidy"
cargo run -q -p tidy || exit 2

echo "ci: cargo build --release"
cargo build --release || exit 3

echo "ci: cargo test -q"
cargo test -q || exit 4

echo "ci: parallel-join equivalence (RUST_TEST_THREADS=1, executor threads up to 7)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_join || exit 5

echo "ci: ok"
exit 0
