#!/bin/sh
# Offline CI gate for the workspace. No network access is required at
# any step: all dependencies are in-tree path crates (enforced by the
# tidy `deps` check).
#
# Steps, in order (first failure stops the run):
#   1. cargo fmt --check          formatting drift
#   2. cargo run -p tidy          in-tree static analysis (6 checks)
#   3. cargo build --release      the tree compiles at opt level
#   4. cargo test -q              unit + integration + tier-1 suites
#   5. parallel-join equivalence  morsel executor ≡ serial joins, run
#                                 single-test-threaded so the executor's
#                                 own 7-thread pools are the only
#                                 parallelism in the process
#   6. schedule-mode ablation     fig4 --ablate at tiny scale; asserts
#                                 results/BENCH_fig45_ablation.json is
#                                 produced and well-formed
#   7. obs stats artifact         same run's results/BENCH_obs_stats.json
#                                 carries coherent observability counters
#   8. chaos / fault tolerance    seeded chaos property suite, run
#                                 single-test-threaded (injected panics
#                                 + panic hooks are process-global),
#                                 then the live fault_tolerance sweep at
#                                 tiny scale; asserts
#                                 results/BENCH_fault_tolerance.json is
#                                 produced and well-formed
#
# Exit codes:
#   0  everything passed
#   1  formatting drift (cargo fmt --check failed)
#   2  tidy findings or tidy usage error (see its own output)
#   3  release build failed
#   4  tests failed
#   5  parallel-join equivalence suite failed
#   6  schedule-mode ablation failed or wrote a malformed artifact
#   7  obs stats artifact missing or malformed
#   8  chaos suite failed, or fault-tolerance artifact missing/malformed
set -u

cd "$(dirname "$0")" || exit 2

echo "ci: cargo fmt --check"
cargo fmt --check || exit 1

echo "ci: cargo run -p tidy"
cargo run -q -p tidy || exit 2

echo "ci: cargo build --release"
cargo build --release || exit 3

echo "ci: cargo test -q"
cargo test -q || exit 4

echo "ci: parallel-join equivalence (RUST_TEST_THREADS=1, executor threads up to 7)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_join || exit 5

echo "ci: schedule-mode ablation (fig4 --ablate, tiny scale)"
rm -f results/BENCH_fig45_ablation.json results/BENCH_obs_stats.json
cargo run --release -q -p bench --bin fig4 -- \
    --scale 0.0005 --right-scale 0.05 --threads 4 --ablate || exit 6
[ -s results/BENCH_fig45_ablation.json ] || {
    echo "ci: ablation artifact missing or empty" >&2
    exit 6
}
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || exit 6
import json
d = json.load(open("results/BENCH_fig45_ablation.json"))
assert d["bench"] == "fig45_schedule_ablation", d.get("bench")
assert len(d["experiments"]) == 4, "expected 4 experiments"
for e in d["experiments"]:
    assert e["identical_to_serial"], e["experiment"]
    assert len(e["cells"]) == 12, e["experiment"]
print("ci: ablation artifact well-formed")
EOF
else
    # No python3: fall back to a structural grep.
    grep -q '"bench": "fig45_schedule_ablation"' results/BENCH_fig45_ablation.json || exit 6
    grep -q '"scheduler": "StaticLocality"' results/BENCH_fig45_ablation.json || exit 6
fi

echo "ci: obs stats artifact (results/BENCH_obs_stats.json)"
[ -s results/BENCH_obs_stats.json ] || {
    echo "ci: obs stats artifact missing or empty" >&2
    exit 7
}
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || exit 7
import json
d = json.load(open("results/BENCH_obs_stats.json"))
assert d["bench"] == "obs_stats", d.get("bench")
assert len(d["experiments"]) == 4, "expected 4 experiments"
for e in d["experiments"]:
    c = e["counters"]
    assert c["refine_calls"] >= e["result_pairs"], e["experiment"]
    assert c["filter_hits"] >= c["refine_accepts"], e["experiment"]
    assert c["records_parsed"] > 0, e["experiment"]
    assert c["morsels_executed"] == e["morsels"], e["experiment"]
    assert len(e["morsel_stats"]) == e["morsels"], e["experiment"]
print("ci: obs stats artifact well-formed")
EOF
else
    grep -q '"bench": "obs_stats"' results/BENCH_obs_stats.json || exit 7
    grep -q '"refine_calls"' results/BENCH_obs_stats.json || exit 7
fi

echo "ci: chaos property suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q -p spatialjoin --test chaos || exit 8

echo "ci: live fault-tolerance sweep (tiny scale)"
rm -f results/BENCH_fault_tolerance.json
cargo run --release -q -p bench --bin fault_tolerance -- \
    --scale 0.0002 --right-scale 0.01 --threads 4 || exit 8
[ -s results/BENCH_fault_tolerance.json ] || {
    echo "ci: fault-tolerance artifact missing or empty" >&2
    exit 8
}
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || exit 8
import json
d = json.load(open("results/BENCH_fault_tolerance.json"))
assert d["bench"] == "fault_tolerance", d.get("bench")
assert len(d["rates"]) >= 3, "expected >= 3 fault rates"
modes = {r["mode"] for r in d["live"]}
assert modes == {"spark-recompute", "impala-fail-fast", "pool-retry"}, modes
for r in d["live"]:
    # Every completed recovery must have been verified bit-identical.
    assert not r["completed"] or r["bit_identical"], r
    assert r["overhead"] > 0, r
for f in d["checksum_failover"]:
    assert f["read_ok"], f
    assert f["blocks_failed_over"] <= f["replicas_corrupted"], f
assert len(d["replay_model"]["rows"]) == 3
print("ci: fault-tolerance artifact well-formed")
EOF
else
    grep -q '"bench": "fault_tolerance"' results/BENCH_fault_tolerance.json || exit 8
    grep -q '"mode": "spark-recompute"' results/BENCH_fault_tolerance.json || exit 8
    grep -q '"checksum_failover"' results/BENCH_fault_tolerance.json || exit 8
fi

echo "ci: ok"
exit 0
