//! Join-strategy ablation from §II: broadcast indexed join (what both
//! of the paper's systems implement) vs the spatially partitioned join
//! (what SpatialHadoop/HadoopGIS do). Broadcast wins while the right
//! side is small enough to replicate; partitioning amortises as it
//! grows.

use bench::timing::{BenchId, Harness};
use geom::engine::{PreparedEngine, SpatialPredicate};
use spatialjoin::join::{broadcast_index_join, partitioned_join};
use std::hint::black_box;

fn bench_strategies(c: &mut Harness) {
    let points: Vec<(i64, geom::Point)> = datagen::taxi::points(20_000, 42)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();

    for right_n in [500usize, 5_000, 40_000] {
        let polys: Vec<(i64, geom::Geometry)> = datagen::nycb::geometries(right_n, 42)
            .into_iter()
            .enumerate()
            .map(|(i, g)| (i as i64, g))
            .collect();
        let mut group = c.benchmark_group(format!("join-strategy/right-{right_n}"));
        group.sample_size(10);
        group.bench_function(BenchId::from_parameter("broadcast"), |b| {
            b.iter(|| {
                broadcast_index_join(
                    black_box(&points),
                    black_box(&polys),
                    SpatialPredicate::Within,
                    &PreparedEngine,
                )
                .len()
            })
        });
        group.bench_function(BenchId::from_parameter("partitioned"), |b| {
            b.iter(|| {
                partitioned_join(
                    black_box(&points),
                    black_box(&polys),
                    SpatialPredicate::Within,
                    &PreparedEngine,
                    2_000,
                )
                .len()
            })
        });
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_strategies(&mut harness);
}
