//! Indexing ablation: STR bulk load vs one-at-a-time insertion, and
//! query cost of R-tree vs grid vs linear scan — why both systems in
//! the paper bulk-build a broadcast R-tree for filtering.

use bench::timing::{BenchId, Harness};
use geom::{Envelope, HasEnvelope};
use rtree::{DynamicRTree, GridIndex, RTree};
use std::hint::black_box;

fn entries(n: usize) -> Vec<(Envelope, u32)> {
    datagen::lion::polylines(n, 42)
        .iter()
        .enumerate()
        .map(|(i, l)| (l.envelope(), i as u32))
        .collect()
}

fn bench_build(c: &mut Harness) {
    let mut group = c.benchmark_group("index-build");
    for n in [1_000usize, 10_000] {
        let data = entries(n);
        group.bench_with_input(BenchId::new("str-bulk-load", n), &data, |b, data| {
            b.iter(|| RTree::bulk_load_entries(black_box(data.clone())))
        });
        group.bench_with_input(BenchId::new("dynamic-insert", n), &data, |b, data| {
            b.iter(|| {
                let mut t = DynamicRTree::new();
                for &(e, i) in data {
                    t.insert_entry(e, i);
                }
                t
            })
        });
        group.bench_with_input(BenchId::new("grid-build", n), &data, |b, data| {
            b.iter(|| GridIndex::build(datagen::NYC_EXTENT, 64, 64, black_box(data.clone())))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Harness) {
    let data = entries(20_000);
    let str_tree = RTree::bulk_load_entries(data.clone());
    let mut dyn_tree = DynamicRTree::new();
    for &(e, i) in &data {
        dyn_tree.insert_entry(e, i);
    }
    let grid = GridIndex::build(datagen::NYC_EXTENT, 64, 64, data.clone());
    let probes: Vec<Envelope> = datagen::taxi::points(500, 7)
        .into_iter()
        .map(|p| Envelope::of_point(p).expanded_by(500.0))
        .collect();

    let mut group = c.benchmark_group("index-query/20k-streets-500ft");
    group.bench_function("str-rtree", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &probes {
                str_tree.for_each_intersecting(q, |_| hits += 1);
            }
            hits
        })
    });
    group.bench_function("dynamic-rtree", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &probes {
                dyn_tree.for_each_intersecting(q, |_| hits += 1);
            }
            hits
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &probes {
                grid.for_each_intersecting(q, |_| hits += 1);
            }
            hits
        })
    });
    group.bench_function("linear-scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &probes {
                for (e, _) in &data {
                    if e.intersects(q) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args();
    bench_build(&mut harness);
    bench_query(&mut harness);
}
