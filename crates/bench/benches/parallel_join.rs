//! Morsel-parallel broadcast join sweep: threads × schedule mode ×
//! morsel size on a taxi/nycb-style synthetic workload.
//!
//! Two numbers come out of every configuration:
//!
//! * **measured** wall-clock of `PreparedSet::par_probe` on this
//!   machine (bounded by the physical core count), and
//! * **replay** speedup from feeding the measured per-morsel timings
//!   through the discrete-event simulator (`cluster::simulate`) on a
//!   single node with `threads` cores — the same measured-costs replay
//!   the figure benches use to report the paper's cluster sizes from
//!   one local run.
//!
//! Every parallel result is checked for exact equality with the serial
//! `broadcast_index_join` output before it is reported. The run writes
//! `results/BENCH_parallel_join.json` (hand-rolled JSON, no external
//! serializer) and also times the `geom_col == 1` record-parse fast
//! path against the general column scan.

use bench::timing::{BenchId, Harness};
use cluster::{ClusterSpec, ScheduleMode, Scheduler, TaskSpec};
use geom::engine::{PreparedEngine, SpatialPredicate};
use spatialjoin::join::{broadcast_index_join, parse_point_records};
use spatialjoin::parallel::{MorselConfig, PreparedSet};
use spatialjoin::{GeomRecord, PointRecord};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const LEFT_POINTS: usize = 120_000;
const RIGHT_POLYGONS: usize = 2_500;
const REPETITIONS: usize = 3;

struct ConfigResult {
    threads: usize,
    mode: ScheduleMode,
    morsel_size: usize,
    measured_secs: f64,
    measured_speedup: f64,
    replay_makespan_secs: f64,
    replay_speedup: f64,
    identical_to_serial: bool,
}

fn workload() -> (Vec<PointRecord>, Vec<GeomRecord>) {
    let left: Vec<PointRecord> = datagen::taxi::points(LEFT_POINTS, 42)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    let right: Vec<GeomRecord> = datagen::nycb::geometries(RIGHT_POLYGONS, 42)
        .into_iter()
        .enumerate()
        .map(|(i, g)| (i as i64, g))
        .collect();
    (left, right)
}

/// Best-of-N wall-clock plus one representative run's morsel timings
/// and output.
fn measure(
    set: &PreparedSet<PreparedEngine>,
    left: &[PointRecord],
    cfg: MorselConfig,
) -> (f64, Vec<(i64, i64)>, Vec<cluster::TaskTiming>) {
    let mut best = f64::INFINITY;
    let mut kept = None;
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        let (pairs, timings) = set.par_probe_timed(left, &PreparedEngine, cfg);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            kept = Some((pairs, timings));
        }
    }
    let (pairs, timings) = kept.expect("at least one repetition ran");
    (best, pairs, timings)
}

/// Replays measured per-morsel costs on one simulated node with
/// `threads` cores, under the simulator policy matching the pool's
/// schedule mode.
fn replay(timings: &[cluster::TaskTiming], threads: usize, mode: ScheduleMode) -> f64 {
    let mut tasks: Vec<TaskSpec> = timings.iter().map(|t| TaskSpec::of_cost(t.secs)).collect();
    // run_morsels reports timings in completion order; replay wants
    // input order so static chunking matches the pool's assignment.
    let mut by_index: Vec<(usize, TaskSpec)> = timings
        .iter()
        .zip(tasks.iter())
        .map(|(t, s)| (t.index, *s))
        .collect();
    by_index.sort_unstable_by_key(|(i, _)| *i);
    tasks = by_index.into_iter().map(|(_, s)| s).collect();
    let spec = ClusterSpec {
        num_nodes: 1,
        cores_per_node: threads,
        mem_per_node: 16 * (1 << 30),
    };
    let scheduler = match mode {
        ScheduleMode::Dynamic => Scheduler::Dynamic,
        ScheduleMode::Static => Scheduler::StaticChunked,
        ScheduleMode::StaticLocality => Scheduler::StaticLocality,
    };
    cluster::simulate(&tasks, &spec, scheduler).makespan
}

fn mode_name(mode: ScheduleMode) -> &'static str {
    match mode {
        ScheduleMode::Dynamic => "dynamic",
        ScheduleMode::Static => "static",
        ScheduleMode::StaticLocality => "static-locality",
    }
}

fn sweep() -> (f64, Vec<ConfigResult>, usize) {
    let (left, right) = workload();
    let engine = PreparedEngine;
    let serial_reference = broadcast_index_join(&left, &right, SpatialPredicate::Within, &engine);
    let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);

    // Serial baseline through the same morsel driver (threads = 1 runs
    // inline on the caller thread).
    let serial_cfg = MorselConfig {
        threads: 1,
        mode: ScheduleMode::Static,
        morsel_size: usize::MAX,
    };
    let (serial_secs, serial_pairs, _) = measure(&set, &left, serial_cfg);
    assert_eq!(
        serial_pairs, serial_reference,
        "morsel driver must reproduce the serial join exactly"
    );

    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
            for morsel_size in [512usize, 2048, 8192] {
                let cfg = MorselConfig {
                    threads,
                    mode,
                    morsel_size,
                };
                let (secs, pairs, timings) = measure(&set, &left, cfg);
                let identical = pairs == serial_reference;
                assert!(
                    identical,
                    "parallel output diverged: threads={threads} mode={mode:?} morsel={morsel_size}"
                );
                let total_work: f64 = timings.iter().map(|t| t.secs).sum();
                let makespan = replay(&timings, threads, mode);
                results.push(ConfigResult {
                    threads,
                    mode,
                    morsel_size,
                    measured_secs: secs,
                    measured_speedup: serial_secs / secs,
                    replay_makespan_secs: makespan,
                    replay_speedup: if makespan > 0.0 {
                        total_work / makespan
                    } else {
                        1.0
                    },
                    identical_to_serial: identical,
                });
                println!(
                    "threads={threads} mode={m:<7} morsel={morsel_size:<5} \
                     measured {secs:>8.4}s (x{ms:.2})  replay x{rs:.2}",
                    m = mode_name(mode),
                    ms = serial_secs / secs,
                    rs = results.last().map(|r| r.replay_speedup).unwrap_or(1.0),
                );
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (serial_secs, results, cores)
}

fn write_json(serial_secs: f64, results: &[ConfigResult], cores: usize) {
    let speedup_at_4 = results
        .iter()
        .filter(|r| r.threads == 4)
        .map(|r| r.replay_speedup)
        .fold(0.0f64, f64::max);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parallel_join\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"left_taxi_points\": {LEFT_POINTS}, \"right_nycb_polygons\": {RIGHT_POLYGONS}, \"predicate\": \"Within\"}},"
    );
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"note\": \"measured = wall-clock on this machine (bounded by machine_cores); replay = measured per-morsel costs through cluster::simulate on 1 node x N cores\","
    );
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.6},");
    let _ = writeln!(json, "  \"speedup_at_4_threads\": {speedup_at_4:.3},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"mode\": \"{}\", \"morsel_size\": {}, \
             \"measured_secs\": {:.6}, \"measured_speedup\": {:.3}, \
             \"replay_makespan_secs\": {:.6}, \"replay_speedup\": {:.3}, \
             \"identical_to_serial\": {}}}{comma}",
            r.threads,
            mode_name(r.mode),
            r.morsel_size,
            r.measured_secs,
            r.measured_speedup,
            r.replay_makespan_secs,
            r.replay_speedup,
            r.identical_to_serial,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    assert!(
        speedup_at_4 >= 2.0,
        "replay speedup at 4 threads is {speedup_at_4:.3}, expected >= 2x"
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_parallel_join.json"
    );
    std::fs::write(path, &json).expect("write BENCH_parallel_join.json");
    println!("\nwrote {path} (speedup_at_4_threads = x{speedup_at_4:.2})");
}

/// Satellite to the executor: the `geom_col == 1` record-parse fast
/// path (one split, no column scan) against a general column position.
fn bench_parse_records(c: &mut Harness) {
    let points = datagen::taxi::points(50_000, 7);
    let col1: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{i}\tPOINT ({} {})", p.x, p.y))
        .collect();
    let col3: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{i}\taux1\taux2\tPOINT ({} {})", p.x, p.y))
        .collect();
    let mut group = c.benchmark_group("parse-records/50k-points");
    group.sample_size(7);
    group.bench_function(BenchId::from_parameter("geom-col-1-fast-path"), |b| {
        b.iter(|| parse_point_records(black_box(&col1), 1).len())
    });
    group.bench_function(BenchId::from_parameter("geom-col-3-column-scan"), |b| {
        b.iter(|| parse_point_records(black_box(&col3), 3).len())
    });
    group.finish();
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let parse_only = args.iter().any(|a| a.as_str() == "parse");
    if !parse_only {
        let (serial_secs, results, cores) = sweep();
        write_json(serial_secs, &results, cores);
    }
    let mut harness = Harness::from_args();
    bench_parse_records(&mut harness);
}
