//! Partitioner ablation: how the three space-decomposition strategies
//! (fixed grid, STR, quadtree) balance a skewed point set — the load
//! balance of a partitioned join is bounded by the quality of its
//! partitioner.

use bench::timing::{BenchId, Harness};
use geom::Point;
use rtree::{FixedGridPartitioner, QuadTreePartitioner, SpatialPartitioner, StrPartitioner};
use std::hint::black_box;

fn report_balance<P: SpatialPartitioner>(name: &str, p: &P, pts: &[Point]) {
    let mut counts = vec![0usize; p.num_cells()];
    for &pt in pts {
        if let Some(c) = p.cell_of(pt) {
            counts[c] += 1;
        }
    }
    let max = counts.iter().max().copied().unwrap_or(0);
    let avg = pts.len() / counts.len().max(1);
    eprintln!(
        "#   {name:<12} {:>5} cells, max/avg occupancy = {:.1}",
        p.num_cells(),
        max as f64 / avg.max(1) as f64
    );
}

fn bench_partitioners(c: &mut Harness) {
    let pts = datagen::taxi::points(100_000, 42);
    let extent = datagen::NYC_EXTENT;
    let sample: Vec<Point> = pts.iter().step_by(10).copied().collect();

    // Build cost.
    let mut group = c.benchmark_group("partitioner-build/64-cells");
    group.bench_function(BenchId::from_parameter("fixed-grid"), |b| {
        b.iter(|| FixedGridPartitioner::new(black_box(extent), 8, 8))
    });
    group.bench_function(BenchId::from_parameter("str"), |b| {
        b.iter(|| StrPartitioner::build(black_box(extent), &sample, 64))
    });
    group.bench_function(BenchId::from_parameter("quadtree"), |b| {
        b.iter(|| QuadTreePartitioner::build(black_box(extent), &sample, sample.len() / 64, 10))
    });
    group.finish();

    // Routing cost.
    let grid = FixedGridPartitioner::new(extent, 8, 8);
    let str_p = StrPartitioner::build(extent, &sample, 64);
    let qt = QuadTreePartitioner::build(extent, &sample, sample.len() / 64, 10);
    let mut group = c.benchmark_group("partitioner-route/100k-points");
    group.bench_function(BenchId::from_parameter("fixed-grid"), |b| {
        b.iter(|| pts.iter().filter_map(|&p| grid.cell_of(p)).count())
    });
    group.bench_function(BenchId::from_parameter("str"), |b| {
        b.iter(|| pts.iter().filter_map(|&p| str_p.cell_of(p)).count())
    });
    group.bench_function(BenchId::from_parameter("quadtree"), |b| {
        b.iter(|| pts.iter().filter_map(|&p| qt.cell_of(p)).count())
    });
    group.finish();

    // The paper-relevant output: balance under skew.
    eprintln!("# occupancy balance on skewed taxi points (lower is better):");
    report_balance("fixed-grid", &grid, &pts);
    report_balance("str", &str_p, &pts);
    report_balance("quadtree", &qt, &pts);
}

fn main() {
    let mut harness = Harness::from_args();
    bench_partitioners(&mut harness);
}
