//! Partition-count ablation from the end of §III: "optimizing the
//! number of partitions … represents the tradeoffs between the degrees
//! of parallelisms (the higher the better) and the communication
//! overheads (the lower the better)."
//!
//! A fixed amount of work is split into k tasks; the replay adds
//! Spark's per-partition metadata cost. Too few partitions starve the
//! cores; too many drown the job in coordination.

use bench::timing::{BenchId, Harness};
use cluster::{simulate, ClusterSpec, NetworkModel, Scheduler, TaskSpec};
use std::hint::black_box;

const TOTAL_WORK: f64 = 400.0; // CPU-seconds to distribute

fn runtime_with_partitions(k: usize, spec: &ClusterSpec, net: &NetworkModel) -> f64 {
    let tasks: Vec<TaskSpec> = (0..k)
        .map(|_| TaskSpec::of_cost(TOTAL_WORK / k as f64))
        .collect();
    net.stage_coordination_cost(k) + simulate(&tasks, spec, Scheduler::Dynamic).makespan
}

fn bench_partition_sweep(c: &mut Harness) {
    let spec = ClusterSpec::ec2_paper_cluster();
    let net = NetworkModel::ec2_spark();
    let mut group = c.benchmark_group("partition-count");
    for k in [10usize, 80, 320, 1280, 5120, 20480] {
        group.bench_with_input(BenchId::from_parameter(k), &k, |b, &k| {
            b.iter(|| runtime_with_partitions(black_box(k), &spec, &net))
        });
    }
    group.finish();

    // Print the tradeoff curve itself (the paper-relevant output).
    eprintln!("# partitions -> simulated stage runtime (400 CPU-s on 80 cores):");
    for k in [10usize, 40, 80, 160, 320, 1280, 5120, 20480, 81920] {
        eprintln!(
            "#   {k:>6} partitions: {:.2}s",
            runtime_with_partitions(k, &spec, &net)
        );
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_partition_sweep(&mut harness);
}
