//! Microbenchmark behind §V.B: per-call `Within` refinement cost across
//! the three engines, on simple (nycb-like) and complex (wwf-like)
//! polygons. The jts-like/geos-like ratio here is the root cause of
//! every end-to-end gap in Tables 1-2.

use bench::timing::{BenchId, Harness};
use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, RefinementEngine};
use geom::Point;
use std::hint::black_box;

fn bench_refinement(c: &mut Harness) {
    let cases = [
        (
            "nycb-9v",
            datagen::nycb::geometries(200, 42),
            datagen::taxi::points(500, 42),
        ),
        ("wwf-279v", datagen::wwf::geometries(200, 42), {
            // Probe near the polygons so candidates actually refine.
            datagen::gbif::points(500, 42)
        }),
    ];
    for (label, polys, points) in cases {
        let mut group = c.benchmark_group(format!("within-refinement/{label}"));
        // Pair every point against a pseudo-random polygon so all
        // engines see the identical candidate stream.
        let pairs: Vec<(Point, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, (i * 7919) % polys.len()))
            .collect();

        let fast: Vec<_> = polys.iter().map(|g| PreparedEngine.prepare(g)).collect();
        group.bench_function(BenchId::from_parameter("prepared"), |b| {
            b.iter(|| {
                let mut hits = 0;
                for &(p, ri) in &pairs {
                    if PreparedEngine.within(black_box(p), &fast[ri]) {
                        hits += 1;
                    }
                }
                hits
            })
        });

        let flat: Vec<_> = polys.iter().map(|g| FlatEngine.prepare(g)).collect();
        group.bench_function(BenchId::from_parameter("jts-like-flat"), |b| {
            b.iter(|| {
                let mut hits = 0;
                for &(p, ri) in &pairs {
                    if FlatEngine.within(black_box(p), &flat[ri]) {
                        hits += 1;
                    }
                }
                hits
            })
        });

        let naive: Vec<_> = polys.iter().map(|g| NaiveEngine.prepare(g)).collect();
        group.bench_function(BenchId::from_parameter("geos-like-naive"), |b| {
            b.iter(|| {
                let mut hits = 0;
                for &(p, ri) in &pairs {
                    if NaiveEngine.within(black_box(p), &naive[ri]) {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_refinement(&mut harness);
}
