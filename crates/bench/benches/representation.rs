//! Representation ablation from §III: WKT strings (what both systems
//! in the paper ship over HDFS) vs the binary encoding this
//! reproduction adds as the paper's stated future work. Measures
//! decode cost per record — the overhead every scan and probe pays.

use bench::timing::{BenchId, Harness};
use geom::Geometry;
use std::hint::black_box;

fn bench_representation(c: &mut Harness) {
    let cases = [
        ("taxi-points", datagen::taxi::geometries(5_000, 42)),
        ("lion-polylines", datagen::lion::geometries(2_000, 42)),
        ("wwf-polygons", datagen::wwf::geometries(100, 42)),
    ];
    for (label, geoms) in cases {
        let wkt_records: Vec<String> = geoms.iter().map(geom::wkt::write).collect();
        let bin_records: Vec<Vec<u8>> = geoms.iter().map(geom::binary::encode).collect();
        let wkt_bytes: usize = wkt_records.iter().map(String::len).sum();
        let bin_bytes: usize = bin_records.iter().map(Vec::len).sum();
        eprintln!(
            "# {label}: wkt {wkt_bytes} B vs binary {bin_bytes} B ({:.2}x)",
            wkt_bytes as f64 / bin_bytes as f64
        );

        let mut group = c.benchmark_group(format!("decode/{label}"));
        group.bench_function(BenchId::from_parameter("wkt"), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for r in &wkt_records {
                    let g: Geometry = geom::wkt::parse(black_box(r)).unwrap();
                    n += g.num_points();
                }
                n
            })
        });
        group.bench_function(BenchId::from_parameter("binary"), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for r in &bin_records {
                    let (g, _) = geom::binary::decode(black_box(r)).unwrap();
                    n += g.num_points();
                }
                n
            })
        });
        group.bench_function(BenchId::from_parameter("wkt-encode"), |b| {
            b.iter(|| {
                let mut bytes = 0usize;
                for g in &geoms {
                    bytes += geom::wkt::write(black_box(g)).len();
                }
                bytes
            })
        });
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_representation(&mut harness);
}
