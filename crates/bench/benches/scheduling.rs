//! Scheduling ablation behind §V.B-C: dynamic (Spark) vs static
//! (Impala/OpenMP) scheduling on uniform and skewed task sets, in the
//! discrete-event replay the end-to-end figures are built on.

use bench::timing::{BenchId, Harness};
use cluster::{simulate, ClusterSpec, Scheduler, TaskSpec};
use std::hint::black_box;

fn uniform(n: usize) -> Vec<TaskSpec> {
    (0..n).map(|_| TaskSpec::of_cost(1.0)).collect()
}

/// Log-normal-ish heavy tail in contiguous runs, like a spatially
/// sorted file with hot regions.
fn skewed(n: usize) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let hot = (i / 37) % 5 == 0;
            TaskSpec::of_cost(if hot { 8.0 } else { 0.3 })
        })
        .collect()
}

fn bench_schedulers(c: &mut Harness) {
    let spec = ClusterSpec::ec2_paper_cluster();
    for (label, tasks) in [("uniform", uniform(4096)), ("skewed", skewed(4096))] {
        let mut group = c.benchmark_group(format!("scheduler-sim/{label}"));
        for sched in [
            Scheduler::Dynamic,
            Scheduler::StaticChunked,
            Scheduler::StaticLocality,
        ] {
            group.bench_function(BenchId::from_parameter(format!("{sched:?}")), |b| {
                b.iter(|| simulate(black_box(&tasks), &spec, sched).makespan)
            });
        }
        group.finish();
    }

    // Also report the *quality* difference once, as a plain comparison
    // (the harness measures sim speed; the makespans themselves are the
    // paper-relevant output).
    let tasks = skewed(4096);
    let dynamic = simulate(&tasks, &spec, Scheduler::Dynamic).makespan;
    let static_ = simulate(&tasks, &spec, Scheduler::StaticChunked).makespan;
    eprintln!(
        "# skewed 4096 tasks on 10x8 cores: dynamic {dynamic:.2}s vs static {static_:.2}s \
         ({:.2}x worse)",
        static_ / dynamic
    );
}

fn main() {
    let mut harness = Harness::from_args();
    bench_schedulers(&mut harness);
}
