//! Scheduling ablation behind §V.B-C: dynamic (Spark) vs static
//! (Impala/OpenMP) scheduling on uniform and skewed task sets, in the
//! discrete-event replay the end-to-end figures are built on.
//!
//! Sweeps scheduler × node count × skew: each task set is simulated on
//! the paper's 4/6/8/10-node topologies under all three schedulers,
//! with `StaticLocality` fed a balanced scan-range placement of the
//! task's partition tag — the same pipeline `fig4 --ablate` drives
//! with measured morsel costs.

use bench::timing::{BenchId, Harness};
use cluster::{scan_range_assignment, simulate, ClusterSpec, Scheduler, TaskSpec};
use std::hint::black_box;

const NODES: [usize; 4] = [4, 6, 8, 10];

/// Tasks plus the partition (block) tag each would carry in the file.
struct TaskSet {
    tasks: Vec<TaskSpec>,
    tags: Vec<usize>,
}

/// Tasks come 16 to an HDFS block, like the ablation's bounded
/// placement units.
const BLOCK: usize = 16;

fn uniform(n: usize) -> TaskSet {
    TaskSet {
        tasks: (0..n).map(|_| TaskSpec::of_cost(1.0)).collect(),
        tags: (0..n).map(|i| i / BLOCK).collect(),
    }
}

/// One dense contiguous hot region (blocks 40..90 of 256), like a
/// spatially sorted file whose city centre probes cost 27× the rural
/// tail. Contiguity is the point: static chunking hands whole slices
/// of the hot run to one or two nodes, while block-wise locality
/// placement interleaves it across all of them.
fn skewed(n: usize) -> TaskSet {
    TaskSet {
        tasks: (0..n)
            .map(|i| {
                let hot = (40..90).contains(&(i / BLOCK));
                TaskSpec::of_cost(if hot { 8.0 } else { 0.3 })
            })
            .collect(),
        tags: (0..n).map(|i| i / BLOCK).collect(),
    }
}

/// Retags each task with a balanced block → node placement for this
/// node count (what the ablation does before a locality replay).
fn placed(set: &TaskSet, nodes: usize) -> Vec<TaskSpec> {
    let placement = scan_range_assignment(&set.tags, nodes);
    set.tasks
        .iter()
        .enumerate()
        .map(|(i, t)| TaskSpec {
            cost: t.cost,
            locality: placement.get(i).copied(),
        })
        .collect()
}

fn bench_schedulers(c: &mut Harness) {
    for (label, set) in [("uniform", uniform(4096)), ("skewed", skewed(4096))] {
        for nodes in NODES {
            let spec = ClusterSpec::ec2_with_nodes(nodes);
            let tasks = placed(&set, nodes);
            let mut group = c.benchmark_group(format!("scheduler-sim/{label}/n{nodes}"));
            for sched in [
                Scheduler::Dynamic,
                Scheduler::StaticChunked,
                Scheduler::StaticLocality,
            ] {
                group.bench_function(BenchId::from_parameter(format!("{sched:?}")), |b| {
                    b.iter(|| simulate(black_box(&tasks), &spec, sched).makespan)
                });
            }
            group.finish();
        }
    }

    // Also report the *quality* difference once, as a plain comparison
    // (the harness measures sim speed; the makespans and imbalance are
    // the paper-relevant output).
    let set = skewed(4096);
    eprintln!("# skewed 4096 tasks, makespan (imbalance) per scheduler x node count:");
    for nodes in NODES {
        let spec = ClusterSpec::ec2_with_nodes(nodes);
        let tasks = placed(&set, nodes);
        let mut line = format!("#   n={nodes}:");
        for sched in [
            Scheduler::Dynamic,
            Scheduler::StaticChunked,
            Scheduler::StaticLocality,
        ] {
            let r = simulate(&tasks, &spec, sched);
            line.push_str(&format!(
                " {sched:?} {:.2}s ({:.3})",
                r.makespan,
                r.imbalance()
            ));
        }
        eprintln!("{line}");
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_schedulers(&mut harness);
}
