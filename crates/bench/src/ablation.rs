//! Schedule-mode ablation for Figs. 4/5: *measured* morsel timings
//! replayed under all three [`Scheduler`] policies.
//!
//! The paper's central systems contrast is Spark's dynamic task
//! scheduling against ISP-MC's static assignment; §V observes that
//! "some Impala instances take much longer to complete the spatial
//! joins than others". This module turns that observation into an
//! ablation: the broadcast probe runs for real through the morsel
//! executor, each morsel is tagged with its dominant grid partition
//! (standing in for the HDFS block holding those records), and the
//! measured per-morsel costs are replayed on the paper's 4/6/8/10-node
//! EC2 topology under dynamic, static-chunked and static-locality
//! scheduling.
//!
//! Before morselisation the left side is **spatially sorted** by grid
//! cell, mimicking the spatially ordered files the paper's datasets
//! ship as — that ordering is what makes hot regions contiguous in
//! task order, the precondition for static chunking's imbalance.
//! Expected shape, and what the JSON records: `StaticChunked` shows
//! the worst imbalance on skewed workloads, `StaticLocality` recovers
//! most of it (distinct partitions round-robin across nodes), and
//! `Dynamic` wins overall.

use crate::{BenchError, Experiment, Replay, Workload};
use cluster::{scan_range_assignment, simulate, ClusterSpec, ScheduleMode, Scheduler, TaskSpec};
use geom::engine::RefinementEngine;
use spatialjoin::join::parse_geom_records;
use spatialjoin::join::parse_point_records;
use spatialjoin::parallel::{
    partition_blocks, spatial_sort_points, timings_to_taskspecs, MorselConfig, PreparedSet,
    DEFAULT_MORSEL_SIZE, LOCALITY_GRID_SIDE,
};
use std::fmt::Write as _;

/// Node counts of the paper's Fig. 4/5 sweep.
pub const ABLATION_NODES: [usize; 4] = [4, 6, 8, 10];

/// The three policies under ablation, in report order.
pub const ABLATION_SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Dynamic,
    Scheduler::StaticChunked,
    Scheduler::StaticLocality,
];

/// Stable label for a scheduler in tables and JSON.
pub fn scheduler_name(s: Scheduler) -> &'static str {
    match s {
        Scheduler::Dynamic => "Dynamic",
        Scheduler::StaticChunked => "StaticChunked",
        Scheduler::StaticLocality => "StaticLocality",
    }
}

/// One `(scheduler, nodes)` replay of an experiment's measured tasks.
#[derive(Debug, Clone, Copy)]
pub struct AblationCell {
    pub scheduler: Scheduler,
    pub nodes: usize,
    /// Simulated full-scale runtime (seconds).
    pub runtime_secs: f64,
    /// [`cluster::SimReport::imbalance`] — busiest node over average.
    pub imbalance: f64,
    pub utilisation: f64,
}

/// One measured morsel of the serial reference pass.
#[derive(Debug, Clone, Copy)]
pub struct MorselStat {
    /// Morsel index in left-input order.
    pub index: usize,
    /// Dominant grid partition (the morsel's simulated HDFS block).
    pub partition: usize,
    /// Intrinsic cost: the minimum over the measurement passes.
    pub secs: f64,
}

/// A full scheduler × node-count grid for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentAblation {
    pub experiment: &'static str,
    /// Number of measured morsel tasks replayed.
    pub morsels: usize,
    /// Result pairs found by the probe (sanity signal in the JSON).
    pub result_pairs: usize,
    /// Whether every schedule mode reproduced the serial output
    /// bit-identically (asserted, but recorded too).
    pub identical_to_serial: bool,
    /// Driver-visible obs counter delta over parsing plus one serial
    /// measurement pass (the reference execution the replay is built
    /// from).
    pub stats: obs::Counters,
    /// Per-morsel measurements, in morsel (input) order.
    pub morsel_stats: Vec<MorselStat>,
    pub cells: Vec<AblationCell>,
}

impl ExperimentAblation {
    /// The replay of `scheduler` at `nodes`, if present.
    pub fn cell(&self, scheduler: Scheduler, nodes: usize) -> Option<&AblationCell> {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && c.nodes == nodes)
    }
}

/// Runs one experiment's probe for real and replays its measured
/// morsel timings under every scheduler × node count.
///
/// `engine` selects the refinement path the figure's system uses
/// (JTS-like prepared geometries for Fig. 4's SpatialSpark, GEOS-like
/// naive refinement for Fig. 5's ISP-MC), so the measured skew is the
/// system's own.
///
/// # Errors
/// Propagates DFS read failures; a schedule mode diverging from the
/// serial output is a bug and panics.
pub fn ablate_experiment<E: RefinementEngine>(
    w: &Workload,
    exp: Experiment,
    engine: &E,
    threads: usize,
    replay: &Replay,
) -> Result<ExperimentAblation, BenchError> {
    // Counter window: parsing plus the first (reference) measurement
    // pass below. The pool wrappers fold worker counts back into this
    // thread, so the snapshot delta is exact at any thread count.
    let before = obs::thread_snapshot();
    let left_lines = w.dfs.read_all_lines(exp.left_path())?;
    let right_lines = w.dfs.read_all_lines(exp.right_path())?;
    let mut left = parse_point_records(&left_lines, 1);
    let right = parse_geom_records(&right_lines, 1);
    drop(left_lines);
    drop(right_lines);

    // The paper's files are spatially ordered; replaying an unsorted
    // synthetic file would hide exactly the contiguous hot runs the
    // ablation studies.
    spatial_sort_points(&mut left, LOCALITY_GRID_SIDE);

    // Aim for ~20 tasks per core at the largest node count (10 × 8)
    // so scheduling quality, not task granularity, dominates the
    // replay — without starving per-morsel measurement.
    let morsel_size = (left.len() / 1600).clamp(16, DEFAULT_MORSEL_SIZE);
    let predicate = exp.predicate();
    let set = PreparedSet::prepare(&right, predicate, engine);

    // Measure per-morsel costs on a single worker: a concurrent
    // measurement pass would fold scheduler preemption into each
    // morsel's wall-clock (on small machines threads can exceed
    // cores), and the replay needs the morsel's own cost, not its
    // queueing luck. The serial pass doubles as the reference output.
    let measure_cfg = MorselConfig {
        threads: 1,
        mode: ScheduleMode::Static,
        morsel_size,
    };
    let (pairs, mut timings, partitions) = set.par_probe_tagged(&left, engine, measure_cfg);
    let stats = obs::thread_snapshot().minus(&before);
    let serial = &pairs;

    // Per-morsel minimum over three passes: at small scales a morsel
    // runs in microseconds, where one cache miss or timer hiccup can
    // double a reading — the min is the morsel's intrinsic cost.
    timings.sort_by_key(|t| t.index);
    for _ in 0..2 {
        let (_, mut again, _) = set.par_probe_tagged(&left, engine, measure_cfg);
        again.sort_by_key(|t| t.index);
        for (t, a) in timings.iter_mut().zip(&again) {
            t.secs = t.secs.min(a.secs);
        }
    }

    // Check all three modes reproduce the serial output exactly at the
    // requested thread count.
    let mut identical = true;
    for mode in [
        ScheduleMode::Dynamic,
        ScheduleMode::Static,
        ScheduleMode::StaticLocality,
    ] {
        let cfg = MorselConfig {
            threads,
            mode,
            morsel_size,
        };
        identical &= set.par_probe(&left, engine, cfg) == *serial;
    }
    assert!(
        identical,
        "{}: a schedule mode diverged from the serial join output",
        exp.label()
    );

    // Per-morsel measurements in input order, for the obs artifact.
    let morsel_stats: Vec<MorselStat> = timings
        .iter()
        .map(|t| MorselStat {
            index: t.index,
            partition: partitions.get(t.index).copied().unwrap_or(0),
            secs: t.secs,
        })
        .collect();

    // Measured morsel costs -> simulator tasks at full scale, in
    // morsel (input) order, each tagged with its dominant partition.
    let tasks: Vec<TaskSpec> = timings_to_taskspecs(&timings, &partitions)
        .into_iter()
        .map(|t| TaskSpec {
            cost: t.cost * replay.cost_factor(),
            locality: t.locality,
        })
        .collect();

    // HDFS blocks have bounded size, so a hot grid cell spans many
    // independently placed blocks — cap each placement unit at ~1% of
    // the file so no single block can dominate a node by itself.
    let block_cap = (tasks.len() / 100).max(1);
    let blocks = partition_blocks(&partitions, block_cap);

    let mut cells = Vec::with_capacity(ABLATION_NODES.len() * ABLATION_SCHEDULERS.len());
    for &nodes in &ABLATION_NODES {
        let spec = ClusterSpec::ec2_with_nodes(nodes);
        // Block -> node placement for this node count: Impala's
        // scan-range assignment (whole blocks, balanced task counts).
        let placement = scan_range_assignment(&blocks, nodes);
        let placed: Vec<TaskSpec> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskSpec {
                cost: t.cost,
                locality: placement.get(i).copied(),
            })
            .collect();
        for &scheduler in &ABLATION_SCHEDULERS {
            let r = simulate(&placed, &spec, scheduler);
            cells.push(AblationCell {
                scheduler,
                nodes,
                runtime_secs: r.makespan,
                imbalance: r.imbalance(),
                utilisation: r.utilisation,
            });
        }
    }
    Ok(ExperimentAblation {
        experiment: exp.label(),
        morsels: tasks.len(),
        result_pairs: pairs.len(),
        identical_to_serial: identical,
        stats,
        morsel_stats,
        cells,
    })
}

/// Prints one experiment's grid: a runtime column per node count, one
/// row per scheduler, plus the 10-node imbalance that backs the
/// paper's "some instances take much longer" observation.
pub fn print_ablation(row: &ExperimentAblation) {
    println!(
        "{} ({} morsels, identical_to_serial={})",
        row.experiment, row.morsels, row.identical_to_serial
    );
    print!("  {:<16}", "scheduler");
    for n in ABLATION_NODES {
        print!("{n:>10}");
    }
    println!("{:>14}", "imbalance@10");
    for &scheduler in &ABLATION_SCHEDULERS {
        print!("  {:<16}", scheduler_name(scheduler));
        for n in ABLATION_NODES {
            let t = row
                .cell(scheduler, n)
                .map(|c| c.runtime_secs)
                .unwrap_or(0.0);
            print!("{t:>10.0}");
        }
        let imb = row
            .cell(scheduler, 10)
            .map(|c| c.imbalance)
            .unwrap_or(f64::NAN);
        println!("{imb:>14.3}");
    }
}

/// Serialises ablation rows as `results/BENCH_fig45_ablation.json`
/// (hand-rolled JSON, matching the other bench artifacts) and returns
/// the path written.
pub fn write_ablation_json(
    figure: &str,
    replay: &Replay,
    threads: usize,
    rows: &[ExperimentAblation],
) -> std::io::Result<&'static str> {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fig45_schedule_ablation\",");
    let _ = writeln!(json, "  \"figure\": \"{figure}\",");
    let _ = writeln!(json, "  \"scale\": {},", replay.scale);
    let _ = writeln!(json, "  \"calibration\": {},", replay.calibration);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"nodes\": [4, 6, 8, 10],");
    let _ = writeln!(
        json,
        "  \"schedulers\": [\"Dynamic\", \"StaticChunked\", \"StaticLocality\"],"
    );
    let _ = writeln!(
        json,
        "  \"note\": \"runtime = measured per-morsel probe costs (spatially sorted left side, \
         dominant-partition locality tags) replayed through cluster::simulate at full scale\","
    );
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"experiment\": \"{}\",", row.experiment);
        let _ = writeln!(json, "      \"morsels\": {},", row.morsels);
        let _ = writeln!(json, "      \"result_pairs\": {},", row.result_pairs);
        let _ = writeln!(
            json,
            "      \"identical_to_serial\": {},",
            row.identical_to_serial
        );
        let _ = writeln!(json, "      \"cells\": [");
        for (j, c) in row.cells.iter().enumerate() {
            let comma = if j + 1 == row.cells.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        {{\"scheduler\": \"{}\", \"nodes\": {}, \"runtime_secs\": {:.6}, \
                 \"imbalance\": {:.6}, \"utilisation\": {:.6}}}{comma}",
                scheduler_name(c.scheduler),
                c.nodes,
                c.runtime_secs,
                c.imbalance,
                c.utilisation,
            );
        }
        let _ = writeln!(json, "      ]");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_fig45_ablation.json"
    );
    std::fs::write(path, &json)?;
    Ok(path)
}

/// Serialises the observability side of the ablation rows as
/// `results/BENCH_obs_stats.json`: per experiment, the driver-visible
/// counter delta of the serial reference pass plus every measured
/// morsel (index, partition, seconds). Returns the path written.
pub fn write_obs_stats_json(
    figure: &str,
    replay: &Replay,
    threads: usize,
    rows: &[ExperimentAblation],
) -> std::io::Result<&'static str> {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"obs_stats\",");
    let _ = writeln!(json, "  \"figure\": \"{figure}\",");
    let _ = writeln!(json, "  \"scale\": {},", replay.scale);
    let _ = writeln!(json, "  \"calibration\": {},", replay.calibration);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"note\": \"counters = obs thread-snapshot delta over parsing + one serial \
         reference pass; morsel_stats = measured per-morsel minimum costs in input order\","
    );
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"experiment\": \"{}\",", row.experiment);
        let _ = writeln!(json, "      \"morsels\": {},", row.morsels);
        let _ = writeln!(json, "      \"result_pairs\": {},", row.result_pairs);
        let _ = writeln!(json, "      \"counters\": {{");
        let fields = row.stats.fields();
        for (j, (name, value)) in fields.iter().enumerate() {
            let comma = if j + 1 == fields.len() { "" } else { "," };
            let _ = writeln!(json, "        \"{name}\": {value}{comma}");
        }
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"morsel_stats\": [");
        for (j, m) in row.morsel_stats.iter().enumerate() {
            let comma = if j + 1 == row.morsel_stats.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                json,
                "        {{\"index\": {}, \"partition\": {}, \"secs\": {:.9}}}{comma}",
                m.index, m.partition, m.secs
            );
        }
        let _ = writeln!(json, "      ]");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_obs_stats.json"
    );
    std::fs::write(path, &json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_names_are_stable() {
        assert_eq!(scheduler_name(Scheduler::Dynamic), "Dynamic");
        assert_eq!(scheduler_name(Scheduler::StaticChunked), "StaticChunked");
        assert_eq!(scheduler_name(Scheduler::StaticLocality), "StaticLocality");
    }

    #[test]
    fn tiny_ablation_end_to_end() {
        let w = crate::build_small_workload(0.00005, 0.01, 7).expect("workload");
        let replay = Replay::new(0.00005);
        let row = ablate_experiment(
            &w,
            Experiment::TaxiNycb,
            &geom::engine::PreparedEngine,
            2,
            &replay,
        )
        .expect("ablation");
        assert!(row.identical_to_serial);
        assert_eq!(
            row.cells.len(),
            ABLATION_NODES.len() * ABLATION_SCHEDULERS.len()
        );
        // The reference pass's counter delta covers parsing and the
        // whole probe: every emitted pair passed refinement, every
        // morsel was executed and counted.
        assert!(row.stats.refine_calls >= row.result_pairs as u64);
        assert!(row.stats.records_parsed > 0);
        assert_eq!(row.stats.morsels_executed as usize, row.morsels);
        assert_eq!(row.morsel_stats.len(), row.morsels);
        assert!(row
            .morsel_stats
            .iter()
            .enumerate()
            .all(|(i, m)| m.index == i && m.secs >= 0.0));
        assert!(row.cells.iter().all(|c| c.runtime_secs.is_finite()));
        assert!(row
            .cells
            .iter()
            .all(|c| c.utilisation > 0.0 && c.utilisation <= 1.0 + 1e-9));
    }
}
