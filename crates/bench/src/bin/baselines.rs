//! Baseline comparison (extension beyond the paper's tables): the two
//! in-memory systems against the two §II Hadoop-based strategies on the
//! taxi-nycb join, 10 nodes.
//!
//! The paper declines to measure Hadoop systems directly but argues
//! they "suffer from the combined platform and implementation related
//! inefficiencies" (disk-materialised intermediates, JVM job startup,
//! text-only streaming in HadoopGIS). This harness quantifies that
//! claim inside one consistent replay framework. Expected ordering:
//! SpatialSpark < ISP-MC < SpatialHadoop-style < HadoopGIS-style.
//!
//! Usage: `cargo run --release -p bench --bin baselines -- [--scale f]`

use bench::{
    build_workload, ispmc_runtime_at_scale, parse_args, run_hadoop_baseline, run_ispmc_warm,
    run_spark_warm, spark_runtime_at_scale, BenchError, Experiment,
};

const NODES: usize = 10;

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    eprintln!("# generating workload at scale {} ...", replay.scale);
    let w = build_workload(replay.scale, 42)?;
    let exp = Experiment::TaxiNycb;

    println!(
        "Baselines: {} on {} nodes (scale {}, calibration {})",
        exp.label(),
        NODES,
        replay.scale,
        replay.calibration
    );
    println!("{:<28}{:>12}{:>12}", "system", "runtime(s)", "pairs");

    eprintln!("# SpatialSpark ...");
    let spark = run_spark_warm(&w, exp, threads)?;
    println!(
        "{:<28}{:>12.0}{:>12}",
        "SpatialSpark (broadcast)",
        spark_runtime_at_scale(&spark, &replay, NODES),
        spark.pair_count()
    );

    eprintln!("# ISP-MC ...");
    let ispmc = run_ispmc_warm(&w, exp, threads)?;
    println!(
        "{:<28}{:>12.0}{:>12}",
        "ISP-MC (SQL)",
        ispmc_runtime_at_scale(&ispmc, &replay, NODES),
        ispmc.pair_count()
    );

    eprintln!("# SpatialHadoop-style ...");
    let (sh, sh_total) = run_hadoop_baseline(&w, exp, threads, true, &replay, NODES)?;
    let join_only = {
        let scaled = bench::scale_hadoop_metrics(&sh.metrics, &replay);
        scaled.simulate_runtime(
            &hadooplet::HadoopConf {
                threads,
                ..hadooplet::HadoopConf::default()
            },
            NODES,
        )
    };
    println!(
        "{:<28}{:>12.0}{:>12}   (join only; {:.0}s incl. one-time partitioning)",
        "SpatialHadoop (map-only)",
        join_only,
        sh.pair_count(),
        sh_total
    );

    eprintln!("# HadoopGIS-style ...");
    let (gis, gis_t) = run_hadoop_baseline(&w, exp, threads, false, &replay, NODES)?;
    println!(
        "{:<28}{:>12.0}{:>12}",
        "HadoopGIS (reduce-side)",
        gis_t,
        gis.pair_count()
    );

    assert_eq!(
        spatialjoin::normalize_pairs(spark.pairs.clone()),
        spatialjoin::normalize_pairs(sh.pairs.clone()),
        "all systems must agree"
    );
    assert_eq!(
        spatialjoin::normalize_pairs(spark.pairs.clone()),
        spatialjoin::normalize_pairs(gis.pairs.clone()),
    );
    println!("(all four systems produced identical join results)");
    Ok(())
}
