//! Diagnostic: decompose the ISP-MC vs standalone simulation terms for
//! one experiment. Not a paper artifact.

use bench::{build_workload, parse_args, run_ispmc_warm, BenchError, Experiment};
use cluster::{simulate, ClusterSpec, Scheduler};

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    let w = build_workload(replay.scale, 42)?;
    let run = run_ispmc_warm(&w, Experiment::TaxiLion500, threads)?;
    let m = &run.result.metrics;
    let spec = ClusterSpec::single_node_highend();

    let total: f64 = m.probe_batches.iter().map(|b| b.total()).sum();
    let barrier_sum: f64 = m.probe_batches.iter().map(|b| b.barrier_time()).sum();
    let concurrent = (spec.cores_per_node / m.chunks_per_batch.max(1)).max(1) as f64;
    let flat = m.probe_tasks();
    let chunked = simulate(&flat, &spec, Scheduler::StaticChunked);
    let dynamic = simulate(&flat, &spec, Scheduler::Dynamic);

    println!(
        "batches={} chunks={} chunks/batch={}",
        m.probe_batches.len(),
        flat.len(),
        m.chunks_per_batch
    );
    println!("total work                = {total:.3}s");
    println!("ideal on 16 cores         = {:.3}s", total / 16.0);
    println!(
        "ISP-MC barrier sum / {concurrent} = {:.3}s",
        barrier_sum / concurrent
    );
    println!("standalone static-chunked = {:.3}s", chunked.makespan);
    println!("dynamic                   = {:.3}s", dynamic.makespan);
    // Per-core load distribution under static chunking.
    let cores = 16;
    let n = flat.len();
    let mut core_sums = vec![0.0f64; cores];
    for (k, t) in flat.iter().enumerate() {
        core_sums[(k * cores) / n] += t.cost;
    }
    let max = core_sums.iter().cloned().fold(0.0, f64::max);
    let min = core_sums.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("static core sums: min={min:.3} max={max:.3}");
    for (i, s) in core_sums.iter().enumerate() {
        println!("  core {i:>2}: {s:.3}");
    }
    Ok(())
}
