//! Fault-tolerance sweep: **live** fault injection through the real
//! executors, next to the original replay-model ablation.
//!
//! §III notes that "Spark provides fault tolerance through re-computing
//! as RDDs keep track of data processing workflows", where Impala's
//! fixed plan must restart a failed query. The original harness modelled
//! that contrast on measured task timings; this version also *runs* it:
//! the chaos layer injects worker panics, stragglers and transient read
//! faults into the actual execution paths at a sweep of fault rates,
//! and each recovery mode pays its real cost —
//!
//! * `spark-recompute` — sparklet recomputes lost partitions from
//!   lineage mid-job on the surviving workers;
//! * `impala-fail-fast` — any fragment failure aborts the query; the
//!   harness restarts it from scratch (fresh fault draws) until it
//!   completes or the restart budget is spent;
//! * `pool-retry` — the shared morsel pool retries panicking morsels in
//!   place under a bounded [`RetryPolicy`].
//!
//! Every recovered run is checked bit-identical to its fault-free
//! twin, and a separate phase plants replica corruption on a
//! replication-3 file to drive the minihdfs checksum fail-over.
//! Results land in `results/BENCH_fault_tolerance.json`.
//!
//! Usage: `cargo run --release -p bench --bin fault_tolerance -- \
//!         [--scale f] [--threads n] [--right-scale f]`

use std::fmt::Write as _;
use std::time::Instant;

use bench::{
    parse_bench_args, run_ispmc_chaos, run_spark_chaos, scale_spark_report, BenchError, Experiment,
    Workload,
};
use cluster::{
    simulate, simulate_with_recompute, simulate_with_restart, Chaos, ChaosConfig, ClusterSpec,
    Failure, RetryPolicy, Scheduler,
};
use spatialjoin::{MorselConfig, PreparedSet, RecordReader};

const SEED: u64 = 42;
/// Nonzero per-site fault rates swept through every live recovery mode.
/// The lowest rate is small enough that a whole fail-fast query can
/// survive with no fired fault, so the restart mode has a completing
/// data point; at the higher rates it demonstrably cannot finish.
const RATES: [f64; 4] = [0.001, 0.05, 0.15, 0.3];
/// Restart budget for the fail-fast mode before the harness gives up.
const MAX_RESTARTS: u32 = 25;
/// Attempts per morsel in the pool-retry mode.
const POOL_ATTEMPTS: u32 = 8;

/// One live (rate, mode) measurement.
struct LiveRow {
    rate: f64,
    mode: &'static str,
    completed: bool,
    wall_secs: f64,
    /// Wall time relative to the mode's fault-free baseline.
    overhead: f64,
    bit_identical: bool,
    faults_injected: u64,
    task_retries: u64,
    partitions_recomputed: u64,
    restarts: u32,
}

/// One checksum fail-over measurement on the replicated file.
struct FailoverRow {
    rate: f64,
    replicas_corrupted: usize,
    blocks_failed_over: u64,
    read_ok: bool,
}

fn main() -> Result<(), BenchError> {
    let args = parse_bench_args()?;
    let threads = args.threads;
    eprintln!("# generating workload at scale {} ...", args.replay.scale);
    let w = args.build_workload(SEED)?;
    let exp = Experiment::TaxiNycb;

    // Injected panics are expected; keep them off stderr.
    std::panic::set_hook(Box::new(|_| {}));

    // --- Fault-free baselines (live wall clock + reference output) ---
    let spark_base = run_spark_chaos(&w, exp, threads, ChaosConfig::disabled())?;
    let t0 = Instant::now();
    let spark_base2 = run_spark_chaos(&w, exp, threads, ChaosConfig::disabled())?;
    let spark_base_secs = t0.elapsed().as_secs_f64();
    let ispmc_base = run_ispmc_chaos(&w, exp, threads, ChaosConfig::disabled())?;
    let t0 = Instant::now();
    let _ = run_ispmc_chaos(&w, exp, threads, ChaosConfig::disabled())?;
    let ispmc_base_secs = t0.elapsed().as_secs_f64();
    if spark_base2.pairs != spark_base.pairs {
        return Err(BenchError::Usage(
            "fault-free spark runs disagree; cannot baseline".into(),
        ));
    }

    let reader = RecordReader::new(1);
    let (left, _) = reader.read_points(&w.dfs.read_all_lines(exp.left_path())?);
    let (right, _) = reader.read_geoms(&w.dfs.read_all_lines(exp.right_path())?);
    let engine = geom::engine::PreparedEngine;
    let set = PreparedSet::prepare(&right, exp.predicate(), &engine);
    let cfg = MorselConfig::new(threads);
    let t0 = Instant::now();
    let pool_base = set.par_probe(&left, &engine, cfg);
    let pool_base_secs = t0.elapsed().as_secs_f64();

    eprintln!(
        "# baselines: spark {spark_base_secs:.3}s, ispmc {ispmc_base_secs:.3}s, \
         pool {pool_base_secs:.3}s ({} pairs)",
        pool_base.len()
    );

    // --- Live sweep: fault rates x recovery modes ---
    let mut rows: Vec<LiveRow> = Vec::new();
    for &rate in &RATES {
        rows.push(spark_recompute_row(
            &w,
            exp,
            threads,
            rate,
            &spark_base.pairs,
            spark_base_secs,
        ));
        rows.push(impala_failfast_row(
            &w,
            exp,
            threads,
            rate,
            ispmc_base.pairs(),
            ispmc_base_secs,
        ));
        rows.push(pool_retry_row(
            &set,
            &left,
            &engine,
            cfg,
            rate,
            &pool_base,
            pool_base_secs,
        ));
    }

    // --- Checksum fail-over on a replication-3 copy of the right side ---
    let failover = checksum_failover_rows(&w)?;

    // --- The original replay-model ablation, kept next to the live data ---
    let report = scale_spark_report(&spark_base.report, &args.replay);
    let probe = report
        .stages
        .iter()
        .find(|s| s.name.contains("probe"))
        .ok_or_else(|| BenchError::Usage("no probe stage in the spark report".into()))?;
    let spec = ClusterSpec::ec2_paper_cluster();
    let fault_free = simulate(&probe.tasks, &spec, Scheduler::Dynamic).makespan;
    let mut replay_rows = Vec::new();
    for frac in [0.25, 0.5, 0.75] {
        let failure = Failure {
            node: 3,
            at_time: fault_free * frac,
        };
        let recompute = simulate_with_recompute(&probe.tasks, &spec, failure).makespan;
        let restart =
            simulate_with_restart(&probe.tasks, &spec, Scheduler::StaticLocality, failure).makespan;
        replay_rows.push((frac, recompute, restart));
    }

    print_tables(&rows, &failover, fault_free, &replay_rows);
    let path = write_json(
        &args.replay.scale,
        threads,
        spark_base_secs,
        ispmc_base_secs,
        pool_base_secs,
        &rows,
        &failover,
        fault_free,
        &replay_rows,
    )
    .map_err(|e| BenchError::Usage(format!("writing artifact: {e}")))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Spark under chaos: lineage recompute recovers lost partitions live.
fn spark_recompute_row(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    rate: f64,
    base_pairs: &[(i64, i64)],
    base_secs: f64,
) -> LiveRow {
    let before = obs::thread_snapshot();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_spark_chaos(w, exp, threads, ChaosConfig::uniform(SEED, rate))
    }));
    let wall_secs = t0.elapsed().as_secs_f64();
    let delta = obs::thread_snapshot().minus(&before);
    let (completed, bit_identical) = match &outcome {
        Ok(Ok(run)) => (true, run.pairs == base_pairs),
        _ => (false, false),
    };
    LiveRow {
        rate,
        mode: "spark-recompute",
        completed,
        wall_secs,
        overhead: wall_secs / base_secs.max(f64::EPSILON),
        bit_identical,
        faults_injected: delta.faults_injected,
        task_retries: delta.task_retries,
        partitions_recomputed: delta.partitions_recomputed,
        restarts: 0,
    }
}

/// Impala under chaos: any fragment failure aborts; the harness
/// restarts from scratch with fresh fault draws (a real redeploy would
/// not replay the identical faults) until success or budget exhaustion.
fn impala_failfast_row(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    rate: f64,
    base_pairs: &[(i64, i64)],
    base_secs: f64,
) -> LiveRow {
    let before = obs::thread_snapshot();
    let t0 = Instant::now();
    let mut restarts = 0u32;
    let mut completed = false;
    let mut bit_identical = false;
    loop {
        let seed = SEED.wrapping_add(7919u64.wrapping_mul(u64::from(restarts)));
        match run_ispmc_chaos(w, exp, threads, ChaosConfig::uniform(seed, rate)) {
            Ok(run) => {
                completed = true;
                bit_identical = run.pairs() == base_pairs;
                break;
            }
            Err(_) => {
                restarts += 1;
                if restarts >= MAX_RESTARTS {
                    break;
                }
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let delta = obs::thread_snapshot().minus(&before);
    LiveRow {
        rate,
        mode: "impala-fail-fast",
        completed,
        wall_secs,
        overhead: wall_secs / base_secs.max(f64::EPSILON),
        bit_identical,
        faults_injected: delta.faults_injected,
        task_retries: delta.task_retries,
        partitions_recomputed: delta.partitions_recomputed,
        restarts,
    }
}

/// The shared morsel pool under chaos: panicking morsels retried in
/// place, bounded by [`POOL_ATTEMPTS`] total attempts each.
fn pool_retry_row(
    set: &PreparedSet<geom::engine::PreparedEngine>,
    left: &[(i64, geom::Point)],
    engine: &geom::engine::PreparedEngine,
    cfg: MorselConfig,
    rate: f64,
    base_pairs: &[(i64, i64)],
    base_secs: f64,
) -> LiveRow {
    let before = obs::thread_snapshot();
    let chaos = Chaos::new(ChaosConfig::uniform(SEED, rate));
    let t0 = Instant::now();
    let outcome = set.par_probe_faulted(
        left,
        engine,
        cfg,
        &chaos,
        RetryPolicy::attempts(POOL_ATTEMPTS),
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    let delta = obs::thread_snapshot().minus(&before);
    let (completed, bit_identical) = match &outcome {
        Ok((pairs, _)) => (true, pairs == base_pairs),
        Err(_) => (false, false),
    };
    LiveRow {
        rate,
        mode: "pool-retry",
        completed,
        wall_secs,
        overhead: wall_secs / base_secs.max(f64::EPSILON),
        bit_identical,
        faults_injected: delta.faults_injected,
        task_retries: delta.task_retries,
        partitions_recomputed: delta.partitions_recomputed,
        restarts: 0,
    }
}

/// Copies the (small) right side onto a replication-3 file, plants
/// chaos-drawn replica corruption — always leaving each block's last
/// replica clean — and proves checksum fail-over hides every planted
/// fault from the reader.
fn checksum_failover_rows(w: &Workload) -> Result<Vec<FailoverRow>, BenchError> {
    let lines = w.dfs.read_all_lines(Experiment::TaxiNycb.right_path())?;
    let mut out = Vec::new();
    for &rate in &RATES {
        let dfs = minihdfs::MiniDfs::with_replication(bench::DATANODES, 16 * 1024, 3)?;
        dfs.write_lines("/replicated", &lines)?;
        let chaos = Chaos::new(ChaosConfig::uniform(SEED, rate));
        let blocks = dfs.blocks("/replicated")?;
        let mut corrupted = 0usize;
        for (b, blk) in blocks.iter().enumerate() {
            // Never corrupt the last replica: the sweep demonstrates
            // fail-over, not data loss (total loss is proph-tested).
            for r in 0..blk.replicas.len().saturating_sub(1) {
                if chaos.replica_corrupt(b as u64, r as u64) {
                    dfs.corrupt_replica("/replicated", b, r)?;
                    chaos.note_corrupt_replica(b as u64, r as u64);
                    corrupted += 1;
                }
            }
        }
        let before = obs::thread_snapshot();
        let read = dfs.read_all_lines("/replicated");
        let delta = obs::thread_snapshot().minus(&before);
        let read_ok = matches!(&read, Ok(got) if *got == lines);
        out.push(FailoverRow {
            rate,
            replicas_corrupted: corrupted,
            blocks_failed_over: delta.blocks_failed_over,
            read_ok,
        });
    }
    Ok(out)
}

fn print_tables(
    rows: &[LiveRow],
    failover: &[FailoverRow],
    fault_free: f64,
    replay_rows: &[(f64, f64, f64)],
) {
    println!("Live fault injection on taxi-nycb (recovered runs verified bit-identical)");
    println!(
        "{:<8}{:<20}{:>10}{:>12}{:>10}{:>9}{:>9}{:>11}{:>10}",
        "rate", "mode", "wall (s)", "overhead", "ok", "ident", "faults", "recovered", "restarts"
    );
    for r in rows {
        println!(
            "{:<8}{:<20}{:>10.3}{:>11.2}x{:>10}{:>9}{:>9}{:>11}{:>10}",
            format!("{:.2}", r.rate),
            r.mode,
            r.wall_secs,
            r.overhead,
            r.completed,
            r.bit_identical,
            r.faults_injected,
            r.task_retries + r.partitions_recomputed,
            r.restarts
        );
    }
    println!();
    println!("Checksum fail-over (replication 3, last replica always clean)");
    for f in failover {
        println!(
            "  rate {:.2}: {} replicas corrupted, {} block reads failed over, read ok: {}",
            f.rate, f.replicas_corrupted, f.blocks_failed_over, f.read_ok
        );
    }
    println!();
    println!(
        "Replay model on the probe stage (fault-free {fault_free:.0}s on 10 nodes, \
         one node lost mid-run)"
    );
    for &(frac, recompute, restart) in replay_rows {
        println!(
            "  failure at {:>3.0}%: recompute {recompute:.0}s, restart {restart:.0}s \
             ({:.2}x advantage)",
            frac * 100.0,
            restart / recompute
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    scale: &f64,
    threads: usize,
    spark_base_secs: f64,
    ispmc_base_secs: f64,
    pool_base_secs: f64,
    rows: &[LiveRow],
    failover: &[FailoverRow],
    fault_free: f64,
    replay_rows: &[(f64, f64, f64)],
) -> std::io::Result<&'static str> {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fault_tolerance\",");
    let _ = writeln!(json, "  \"experiment\": \"taxi-nycb\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let mut rates = String::new();
    for (i, r) in RATES.iter().enumerate() {
        let _ = write!(rates, "{}{r}", if i == 0 { "" } else { ", " });
    }
    let _ = writeln!(json, "  \"rates\": [{rates}],");
    let _ = writeln!(
        json,
        "  \"note\": \"live chaos injection through the real executors; overhead is wall time \
         over the mode's fault-free baseline; impala restarts use fresh fault draws\","
    );
    let _ = writeln!(
        json,
        "  \"fault_free\": {{\"spark_secs\": {spark_base_secs:.6}, \
         \"ispmc_secs\": {ispmc_base_secs:.6}, \"pool_secs\": {pool_base_secs:.6}}},"
    );
    let _ = writeln!(json, "  \"live\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"rate\": {}, \"mode\": \"{}\", \"completed\": {}, \
             \"wall_secs\": {:.6}, \"overhead\": {:.4}, \"bit_identical\": {}, \
             \"faults_injected\": {}, \"task_retries\": {}, \
             \"partitions_recomputed\": {}, \"restarts\": {}}}{comma}",
            r.rate,
            r.mode,
            r.completed,
            r.wall_secs,
            r.overhead,
            r.bit_identical,
            r.faults_injected,
            r.task_retries,
            r.partitions_recomputed,
            r.restarts
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"checksum_failover\": [");
    for (i, f) in failover.iter().enumerate() {
        let comma = if i + 1 == failover.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"rate\": {}, \"replicas_corrupted\": {}, \"blocks_failed_over\": {}, \
             \"read_ok\": {}}}{comma}",
            f.rate, f.replicas_corrupted, f.blocks_failed_over, f.read_ok
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"replay_model\": {{\"fault_free_secs\": {fault_free:.6}, \"rows\": ["
    );
    for (i, &(frac, recompute, restart)) in replay_rows.iter().enumerate() {
        let comma = if i + 1 == replay_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"failure_frac\": {frac}, \"recompute_secs\": {recompute:.6}, \
             \"restart_secs\": {restart:.6}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]}}");
    let _ = writeln!(json, "}}");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_fault_tolerance.json"
    );
    std::fs::write(path, &json)?;
    Ok(path)
}
