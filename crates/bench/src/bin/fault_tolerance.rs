//! Fault-tolerance ablation (extension): §III notes that "Spark
//! provides fault tolerance through re-computing as RDDs keep track of
//! data processing workflows", where Impala's fixed plan must restart a
//! failed query. This harness kills one node halfway through the
//! taxi-nycb probe stage and compares recovery strategies on the
//! measured task set.
//!
//! Usage: `cargo run --release -p bench --bin fault_tolerance -- [--scale f]`

use bench::{
    build_workload, parse_args, run_spark_warm, scale_spark_report, BenchError, Experiment,
};
use cluster::{
    simulate, simulate_with_recompute, simulate_with_restart, ClusterSpec, Failure, Scheduler,
};

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    eprintln!("# generating workload at scale {} ...", replay.scale);
    let w = build_workload(replay.scale, 42)?;
    let run = run_spark_warm(&w, Experiment::TaxiNycb, threads)?;
    let report = scale_spark_report(&run.report, &replay);

    // Use the probe stage's task set — the bulk of the job.
    let probe = report
        .stages
        .iter()
        .find(|s| s.name.contains("probe"))
        .expect("probe stage exists");
    let spec = ClusterSpec::ec2_paper_cluster();
    let fault_free = simulate(&probe.tasks, &spec, Scheduler::Dynamic).makespan;

    println!(
        "Fault tolerance on the taxi-nycb probe stage ({} tasks, fault-free {:.0}s on 10 nodes)",
        probe.tasks.len(),
        fault_free
    );
    println!(
        "{:<12}{:>22}{:>22}{:>14}",
        "failure at", "Spark recompute (s)", "Impala restart (s)", "advantage"
    );
    for frac in [0.25, 0.5, 0.75] {
        let failure = Failure {
            node: 3,
            at_time: fault_free * frac,
        };
        let recompute = simulate_with_recompute(&probe.tasks, &spec, failure);
        let restart =
            simulate_with_restart(&probe.tasks, &spec, Scheduler::StaticLocality, failure);
        println!(
            "{:<12}{:>22.0}{:>22.0}{:>13.2}x",
            format!("{:.0}%", frac * 100.0),
            recompute.makespan,
            restart.makespan,
            restart.makespan / recompute.makespan
        );
    }
    println!("(recompute re-runs only lost work; restart pays the elapsed time plus a full rerun)");
    Ok(())
}
