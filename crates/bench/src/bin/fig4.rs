//! Fig. 4 — scalability tests of SpatialSpark.
//!
//! Regenerates the paper's Fig. 4: runtime of each of the four joins on
//! 4, 6, 8 and 10 nodes under SpatialSpark. Shape to check: speedups of
//! roughly 2× when going 4→10 nodes (2.5× more nodes), i.e. parallel
//! efficiency around 80% — the fixed per-job and per-stage overheads
//! keep Spark below linear.
//!
//! With `--ablate` the binary instead replays *measured* morsel probe
//! timings (JTS-like prepared refinement, SpatialSpark's path) under
//! all three schedulers per node count and writes
//! `results/BENCH_fig45_ablation.json` — the schedule-mode ablation
//! behind the paper's dynamic-vs-static contrast.
//!
//! Usage: `cargo run --release -p bench --bin fig4 -- [--scale f]
//! [--threads n] [--ablate] [--right-scale f]`

use bench::ablation::{
    ablate_experiment, print_ablation, write_ablation_json, write_obs_stats_json,
};
use bench::{parse_bench_args, run_spark_warm, spark_runtime_at_scale, BenchError, Experiment};
use geom::engine::PreparedEngine;

const NODES: [usize; 4] = [4, 6, 8, 10];

fn main() -> Result<(), BenchError> {
    let args = parse_bench_args()?;
    let (replay, threads) = (args.replay, args.threads);
    let scale = replay.scale;
    eprintln!("# generating workload at scale {scale} ...");
    let w = args.build_workload(42)?;

    if args.ablate {
        println!(
            "Fig 4 ablation: SpatialSpark probe morsels under three schedulers (scale {scale})"
        );
        let mut rows = Vec::new();
        for exp in Experiment::all() {
            eprintln!("# ablating {} ...", exp.label());
            let row = ablate_experiment(&w, exp, &PreparedEngine, threads, &replay)?;
            print_ablation(&row);
            rows.push(row);
        }
        let path = write_ablation_json("fig4", &replay, threads, &rows)
            .map_err(|e| BenchError::Usage(format!("writing ablation JSON: {e}")))?;
        let obs_path = write_obs_stats_json("fig4", &replay, threads, &rows)
            .map_err(|e| BenchError::Usage(format!("writing obs stats JSON: {e}")))?;
        println!("(paper §V: static scheduling shows imbalance on skew; dynamic recovers it)");
        println!("wrote {path}");
        println!("wrote {obs_path}");
        return Ok(());
    }

    println!("Fig 4: Scalability of SpatialSpark, runtime (s) vs # of instances (scale {scale})");
    print!("{:<16}", "experiment");
    for n in NODES {
        print!("{n:>10}");
    }
    println!("{:>14}", "4->10 speedup");
    for exp in Experiment::all() {
        eprintln!("# running {} ...", exp.label());
        bench::report_memory_gate(&w, exp, &replay)?;
        let run = run_spark_warm(&w, exp, threads)?;
        let times: Vec<f64> = NODES
            .iter()
            .map(|&n| spark_runtime_at_scale(&run, &replay, n))
            .collect();
        print!("{:<16}", exp.label());
        for t in &times {
            print!("{t:>10.0}");
        }
        let speedup = times[0] / times[3];
        println!("{:>13.2}x", speedup);
    }
    println!("(paper: speedups 1.97x-2.06x going 4->10 nodes, ~80% parallel efficiency)");
    Ok(())
}
