//! Fig. 5 — scalability tests of ISP-MC.
//!
//! Regenerates the paper's Fig. 5: runtime of each join on 4, 6, 8 and
//! 10 nodes under ISP-MC. Shapes to check: near-linear scaling (the
//! static plan has almost no coordination overhead) *except* the
//! skew-dominated G10M-wwf join, whose curve flattens at high node
//! counts because static scheduling cannot rebalance the expensive
//! ecoregion probes (the paper sees 6357 s → 6257 s going 8→10 nodes).
//!
//! With `--ablate` the binary instead replays *measured* morsel probe
//! timings (GEOS-like naive refinement, ISP-MC's path) under all three
//! schedulers per node count and writes
//! `results/BENCH_fig45_ablation.json` — quantifying how much of the
//! static plan's imbalance locality-aware assignment recovers.
//!
//! Usage: `cargo run --release -p bench --bin fig5 -- [--scale f]
//! [--threads n] [--ablate] [--right-scale f]`

use bench::ablation::{
    ablate_experiment, print_ablation, write_ablation_json, write_obs_stats_json,
};
use bench::{ispmc_runtime_at_scale, parse_bench_args, run_ispmc_warm, BenchError, Experiment};
use geom::engine::NaiveEngine;

const NODES: [usize; 4] = [4, 6, 8, 10];

fn main() -> Result<(), BenchError> {
    let args = parse_bench_args()?;
    let (replay, threads) = (args.replay, args.threads);
    let scale = replay.scale;
    eprintln!("# generating workload at scale {scale} ...");
    let w = args.build_workload(42)?;

    if args.ablate {
        println!("Fig 5 ablation: ISP-MC probe morsels under three schedulers (scale {scale})");
        let mut rows = Vec::new();
        for exp in Experiment::all() {
            eprintln!("# ablating {} ...", exp.label());
            let row = ablate_experiment(&w, exp, &NaiveEngine, threads, &replay)?;
            print_ablation(&row);
            rows.push(row);
        }
        let path = write_ablation_json("fig5", &replay, threads, &rows)
            .map_err(|e| BenchError::Usage(format!("writing ablation JSON: {e}")))?;
        let obs_path = write_obs_stats_json("fig5", &replay, threads, &rows)
            .map_err(|e| BenchError::Usage(format!("writing obs stats JSON: {e}")))?;
        println!("(paper §V: \"some Impala instances take much longer ... than others\")");
        println!("wrote {path}");
        println!("wrote {obs_path}");
        return Ok(());
    }

    println!("Fig 5: Scalability of ISP-MC, runtime (s) vs # of instances (scale {scale})");
    print!("{:<16}", "experiment");
    for n in NODES {
        print!("{n:>10}");
    }
    println!("{:>14}{:>12}", "4->10 speedup", "8->10");
    for exp in Experiment::all() {
        eprintln!("# running {} ...", exp.label());
        bench::report_memory_gate(&w, exp, &replay)?;
        let run = run_ispmc_warm(&w, exp, threads)?;
        let times: Vec<f64> = NODES
            .iter()
            .map(|&n| ispmc_runtime_at_scale(&run, &replay, n))
            .collect();
        print!("{:<16}", exp.label());
        for t in &times {
            print!("{t:>10.0}");
        }
        println!(
            "{:>13.2}x{:>11.2}x",
            times[0] / times[3],
            times[2] / times[3]
        );
    }
    println!("(paper: near-linear for all but G10M-wwf, which flattens 8->10 nodes)");
    Ok(())
}
