//! Fig. 5 — scalability tests of ISP-MC.
//!
//! Regenerates the paper's Fig. 5: runtime of each join on 4, 6, 8 and
//! 10 nodes under ISP-MC. Shapes to check: near-linear scaling (the
//! static plan has almost no coordination overhead) *except* the
//! skew-dominated G10M-wwf join, whose curve flattens at high node
//! counts because static scheduling cannot rebalance the expensive
//! ecoregion probes (the paper sees 6357 s → 6257 s going 8→10 nodes).
//!
//! Usage: `cargo run --release -p bench --bin fig5 -- [--scale f] [--threads n]`

use bench::{
    build_workload, ispmc_runtime_at_scale, parse_args, run_ispmc_warm, BenchError, Experiment,
};

const NODES: [usize; 4] = [4, 6, 8, 10];

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    let scale = replay.scale;
    eprintln!("# generating workload at scale {scale} ...");
    let w = build_workload(scale, 42)?;

    println!("Fig 5: Scalability of ISP-MC, runtime (s) vs # of instances (scale {scale})");
    print!("{:<16}", "experiment");
    for n in NODES {
        print!("{n:>10}");
    }
    println!("{:>14}{:>12}", "4->10 speedup", "8->10");
    for exp in Experiment::all() {
        eprintln!("# running {} ...", exp.label());
        bench::report_memory_gate(&w, exp, &replay)?;
        let run = run_ispmc_warm(&w, exp, threads)?;
        let times: Vec<f64> = NODES
            .iter()
            .map(|&n| ispmc_runtime_at_scale(&run, &replay, n))
            .collect();
        print!("{:<16}", exp.label());
        for t in &times {
            print!("{t:>10.0}");
        }
        println!(
            "{:>13.2}x{:>11.2}x",
            times[0] / times[3],
            times[2] / times[3]
        );
    }
    println!("(paper: near-linear for all but G10M-wwf, which flattens 8->10 nodes)");
    Ok(())
}
