//! §V.B — standalone JTS vs GEOS refinement comparison.
//!
//! The paper explains SpatialSpark's win with a standalone experiment:
//! on 10 K-point samples (`taxi10k`, `gbif10k`), JTS's Within is 3.3×
//! faster than GEOS on taxi10k-nycb and 3.9× faster on gbif10k-wwf,
//! because "GEOS frequently creates and destroys small objects". This
//! binary reruns that comparison: the candidate pairs are fixed by one
//! shared envelope-filtering pass, then each engine's *refinement* — the
//! phase the paper isolates — is timed over the identical candidate
//! stream. Engines: `FlatEngine` = JTS-like (flat arrays, zero per-call
//! allocation), `NaiveEngine` = GEOS-like (boxed coordinate sequences
//! and edge graphs built and torn down per call), plus this
//! reproduction's `PreparedEngine` (banded edge index, beyond both
//! libraries) as an extra column.
//!
//! Usage: `cargo run --release -p bench --bin jts_vs_geos`

use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, RefinementEngine, SpatialPredicate};
use geom::{Geometry, HasEnvelope, Point};
use rtree::RTree;
use std::time::Instant;

const SAMPLE: usize = 10_000;
const REPS: usize = 5;

/// Candidate pairs after envelope filtering: (point, right-geometry id).
fn candidates(left: &[Point], right: &[Geometry]) -> Vec<(Point, u32)> {
    let entries: Vec<(geom::Envelope, u32)> = right
        .iter()
        .enumerate()
        .map(|(i, g)| (g.envelope(), i as u32))
        .collect();
    let tree = RTree::bulk_load_entries(entries);
    let mut out = Vec::new();
    for &p in left {
        tree.for_each_within_distance(p, 0.0, |&ri| out.push((p, ri)));
    }
    out
}

fn time_refinement<E: RefinementEngine>(
    cands: &[(Point, u32)],
    right: &[Geometry],
    engine: &E,
) -> (f64, usize) {
    // Preparation happens once, outside the timer — the paper measures
    // the Within *operation*, not library setup.
    let prepared: Vec<E::Prepared> = right.iter().map(|g| engine.prepare(g)).collect();
    let mut matches = 0usize;
    let t0 = Instant::now();
    for _ in 0..REPS {
        matches = 0;
        for &(p, ri) in cands {
            if SpatialPredicate::Within.eval(engine, p, &prepared[ri as usize]) {
                matches += 1;
            }
        }
    }
    (t0.elapsed().as_secs_f64() / REPS as f64, matches)
}

fn run_case(label: &str, left: Vec<Point>, right: Vec<Geometry>) {
    let cands = candidates(&left, &right);
    let (jts, m1) = time_refinement(&cands, &right, &FlatEngine);
    let (geos, m2) = time_refinement(&cands, &right, &NaiveEngine);
    let (prep, m3) = time_refinement(&cands, &right, &PreparedEngine);
    assert_eq!(m1, m2, "engines disagree on {label}");
    assert_eq!(m1, m3, "prepared engine disagrees on {label}");
    println!(
        "{:<16}{:>12.4}{:>13.4}{:>9.1}x{:>13.4}{:>12}{:>10}",
        label,
        jts,
        geos,
        geos / jts,
        prep,
        cands.len(),
        m1
    );
}

fn main() {
    println!("Standalone Within refinement: JTS-like vs GEOS-like engines ({REPS} reps)");
    println!(
        "{:<16}{:>12}{:>13}{:>10}{:>13}{:>12}{:>10}",
        "experiment",
        "jts-like(s)",
        "geos-like(s)",
        "ratio",
        "prepared(s)",
        "candidates",
        "matches"
    );
    run_case(
        "taxi10k-nycb",
        datagen::taxi::points(SAMPLE, 42),
        datagen::nycb::geometries(datagen::full_size::NYCB, 42),
    );
    run_case(
        "gbif10k-wwf",
        datagen::gbif::points(SAMPLE, 42),
        datagen::wwf::geometries(datagen::full_size::WWF, 42),
    );
    println!("(paper: JTS 3.3x faster on taxi10k-nycb, 3.9x faster on gbif10k-wwf;");
    println!(" the prepared column is this reproduction's extension, not in the paper)");
}
