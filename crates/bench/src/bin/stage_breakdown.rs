//! Diagnostic: per-stage measured work for one experiment on both
//! systems. Not a paper artifact — used to understand where time goes
//! when tuning the reproduction.
//!
//! Usage: `cargo run --release -p bench --bin stage_breakdown -- [--scale f]`

use bench::{build_workload, parse_args, run_ispmc, run_spark, BenchError, Experiment};

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    let scale = replay.scale;
    let w = build_workload(scale, 42)?;
    for exp in [Experiment::TaxiLion500, Experiment::TaxiNycb] {
        println!("== {} ==", exp.label());
        let _warmup = run_spark(&w, exp, threads)?;
        let spark = run_spark(&w, exp, threads)?;
        println!("-- SpatialSpark stages --");
        for s in &spark.report.stages {
            println!(
                "  {:<32} tasks={:<6} work={:.3}s bcast={}B",
                s.name,
                s.tasks.len(),
                s.total_work(),
                s.broadcast_bytes
            );
        }
        let ispmc = run_ispmc(&w, exp, threads)?;
        let m = &ispmc.result.metrics;
        println!("-- ISP-MC --");
        println!(
            "  scan: tasks={} work={:.3}s",
            m.scan_tasks.len(),
            m.scan_tasks.iter().map(|t| t.cost).sum::<f64>()
        );
        println!(
            "  build: {:.3}s  broadcast={}B",
            m.build_secs, m.broadcast_bytes
        );
        println!(
            "  probe: batches={} work={:.3}s barrier-sum={:.3}s",
            m.num_batches(),
            m.probe_batches.iter().map(|b| b.total()).sum::<f64>(),
            m.probe_batches
                .iter()
                .map(|b| b.barrier_time())
                .sum::<f64>()
        );
        println!(
            "  pairs spark={} ispmc={}",
            spark.pair_count(),
            m.result_rows
        );
    }
    Ok(())
}
