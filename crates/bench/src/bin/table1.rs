//! Table 1 — runtimes (in seconds) on a single node.
//!
//! Regenerates the paper's Table 1: the four spatial joins executed by
//! SpatialSpark, ISP-MC and the ISP-MC standalone program on one
//! 8-vCPU node. Absolute values are this substrate's, not EC2's; the
//! shapes to check are (a) SpatialSpark beats ISP-MC everywhere, (b)
//! the gap is largest for the refinement-dominated taxi-lion-500 and
//! G10M-wwf joins, (c) standalone is a single-digit-percent cheaper
//! than ISP-MC.
//!
//! Usage: `cargo run --release -p bench --bin table1 -- [--scale f] [--threads n]`

use bench::{
    build_workload, ispmc_single_node_at_scale, ispmc_standalone_at_scale, parse_args,
    run_ispmc_warm, run_spark_warm, spark_single_node_at_scale, BenchError, Experiment,
};

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    let scale = replay.scale;
    eprintln!("# generating workload at scale {scale} ...");
    let w = build_workload(scale, 42)?;

    println!("Table 1: Runtimes (in seconds) on a single node (scale {scale})");
    println!(
        "{:<16}{:>14}{:>12}{:>20}",
        "", "SpatialSpark", "ISP-MC", "Standalone ISP-MC"
    );
    for exp in Experiment::all() {
        eprintln!("# running {} ...", exp.label());
        let spark = run_spark_warm(&w, exp, threads)?;
        let ispmc = run_ispmc_warm(&w, exp, threads)?;
        assert_eq!(
            spatialjoin::normalize_pairs(spark.pairs.clone()),
            spatialjoin::normalize_pairs(ispmc.result.pairs.clone()),
            "systems disagree on {}",
            exp.label()
        );
        let s = spark_single_node_at_scale(&spark, &replay);
        let i = ispmc_single_node_at_scale(&ispmc, &replay);
        let st = ispmc_standalone_at_scale(&ispmc, &replay);
        println!("{:<16}{:>14.0}{:>12.0}{:>20.0}", exp.label(), s, i, st);
        eprintln!(
            "#   pairs={} infra-overhead={:.1}%  spark/ispmc={:.2}x",
            spark.pair_count(),
            (i - st) / i * 100.0,
            i / s
        );
    }
    println!("(paper:      taxi-nycb 682/588/507, taxi-lion-100 696/1061/983,");
    println!("             taxi-lion-500 825/5720/4922, G10M-wwf 2445/12736/11634)");
    Ok(())
}
