//! Table 2 — runtimes (in seconds) using 10 EC2 nodes.
//!
//! Regenerates the paper's Table 2: the same four joins replayed on the
//! simulated 10-node cluster. Shape to check: SpatialSpark is several
//! times faster than ISP-MC on every join (the paper reports
//! 4.7×–10.5×), with the largest gaps on the refinement-heavy joins.
//!
//! Usage: `cargo run --release -p bench --bin table2 -- [--scale f] [--threads n]`

use bench::{
    build_workload, ispmc_runtime_at_scale, parse_args, run_ispmc_warm, run_spark_warm,
    spark_runtime_at_scale, BenchError, Experiment,
};

fn main() -> Result<(), BenchError> {
    let (replay, threads) = parse_args()?;
    let scale = replay.scale;
    eprintln!("# generating workload at scale {scale} ...");
    let w = build_workload(scale, 42)?;

    println!("Table 2: Runtimes (in seconds) using 10 EC2 nodes (scale {scale})");
    println!(
        "{:<16}{:>14}{:>12}{:>12}",
        "", "SpatialSpark", "ISP-MC", "ratio"
    );
    for exp in Experiment::all() {
        eprintln!("# running {} ...", exp.label());
        let spark = run_spark_warm(&w, exp, threads)?;
        let ispmc = run_ispmc_warm(&w, exp, threads)?;
        let s = spark_runtime_at_scale(&spark, &replay, 10);
        let i = ispmc_runtime_at_scale(&ispmc, &replay, 10);
        println!("{:<16}{:>14.0}{:>12.0}{:>11.1}x", exp.label(), s, i, i / s);
    }
    println!("(paper:      taxi-nycb 110/758, taxi-lion-100 65/307,");
    println!("             taxi-lion-500 249/1785, G10M-wwf 735/7728)");
    Ok(())
}
