//! # bench — harness utilities for regenerating the paper's results
//!
//! The binaries in `src/bin/` regenerate every table and figure:
//!
//! | binary        | artifact                                        |
//! |---------------|-------------------------------------------------|
//! | `table1`      | Table 1 — single-node runtimes                  |
//! | `table2`      | Table 2 — 10-node runtimes                      |
//! | `fig4`        | Fig. 4 — SpatialSpark scalability (4–10 nodes)  |
//! | `fig5`        | Fig. 5 — ISP-MC scalability (4–10 nodes)        |
//! | `jts_vs_geos` | §V.B — standalone JTS vs GEOS refinement        |
//!
//! ## Scaling methodology
//!
//! The paper's point datasets (170 M taxi records, 10 M GBIF records)
//! are scaled down by `--scale` (default 1/100) so a run fits one
//! machine. To keep the simulated cluster replay comparable to the
//! paper two calibrations are applied, both documented in DESIGN.md:
//!
//! 1. the DFS block size shrinks with the scale factor, so the *number*
//!    of partitions/tasks stays in the paper's range;
//! 2. before replay, measured left-side task costs are multiplied by
//!    `1/scale` (each task processed `scale`× fewer records than its
//!    full-size counterpart); right-side (build/broadcast) costs are
//!    left untouched because the polygon/polyline sides are generated
//!    at full cardinality.

pub mod ablation;
pub mod timing;

use cluster::TaskSpec;
use geom::engine::SpatialPredicate;
use impalite::{ImpaladConf, QueryMetrics};
use minihdfs::MiniDfs;
use sparklet::{JobReport, SparkConf, StageMetrics};
use spatialjoin::{IspMc, IspMcRun, SpatialSpark, SpatialSparkRun};

/// Paths of the generated datasets inside the workload DFS.
pub mod paths {
    pub const TAXI: &str = "/data/taxi";
    pub const NYCB: &str = "/data/nycb";
    pub const LION: &str = "/data/lion";
    pub const GBIF: &str = "/data/gbif";
    pub const WWF: &str = "/data/wwf";
}

/// Harness failure: dataset generation, a system run, or CLI usage.
///
/// The binaries return this from `main` instead of panicking, so a
/// missing path or a bad flag prints one diagnostic line and exits
/// non-zero rather than unwinding with a backtrace.
#[derive(Debug)]
pub enum BenchError {
    /// DFS or dataset-generation failure.
    Dfs(minihdfs::DfsError),
    /// A system-under-test run failed.
    Join(spatialjoin::SpatialJoinError),
    /// Bad command-line usage.
    Usage(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Dfs(e) => write!(f, "bench: dfs: {e}"),
            BenchError::Join(e) => write!(f, "bench: join: {e}"),
            BenchError::Usage(msg) => write!(f, "bench: usage: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<minihdfs::DfsError> for BenchError {
    fn from(e: minihdfs::DfsError) -> BenchError {
        BenchError::Dfs(e)
    }
}

impl From<spatialjoin::SpatialJoinError> for BenchError {
    fn from(e: spatialjoin::SpatialJoinError) -> BenchError {
        BenchError::Join(e)
    }
}

/// A generated benchmark workload.
pub struct Workload {
    pub dfs: MiniDfs,
    /// Fraction of the paper's point cardinalities generated.
    pub scale: f64,
}

/// Number of simulated datanodes backing every workload (matches the
/// paper's 10-node cluster so locality hints are meaningful).
pub const DATANODES: usize = 10;

/// Generates all five datasets at `scale` into a fresh DFS.
///
/// Left (point) sides are scaled; right sides are full cardinality.
/// Block size shrinks proportionally so partition counts match the
/// paper's deployment.
///
/// # Errors
/// Propagates DFS configuration and write failures.
pub fn build_workload(scale: f64, seed: u64) -> Result<Workload, BenchError> {
    let block_size = ((minihdfs::DEFAULT_BLOCK_SIZE as f64 * scale) as usize).max(16 * 1024);
    let dfs = MiniDfs::new(DATANODES, block_size)?;
    let s = datagen::Scale(scale);

    let taxi = datagen::taxi::geometries(s.apply(datagen::full_size::TAXI), seed);
    datagen::write_dataset(&dfs, paths::TAXI, &taxi)?;
    drop(taxi);
    let gbif = datagen::gbif::geometries(s.apply(datagen::full_size::G10M), seed);
    datagen::write_dataset(&dfs, paths::GBIF, &gbif)?;
    drop(gbif);

    let nycb = datagen::nycb::geometries(datagen::full_size::NYCB, seed);
    datagen::write_dataset(&dfs, paths::NYCB, &nycb)?;
    drop(nycb);
    let lion = datagen::lion::geometries(datagen::full_size::LION, seed);
    datagen::write_dataset(&dfs, paths::LION, &lion)?;
    drop(lion);
    let wwf = datagen::wwf::geometries(datagen::full_size::WWF, seed);
    datagen::write_dataset(&dfs, paths::WWF, &wwf)?;
    drop(wwf);

    Ok(Workload { dfs, scale })
}

/// Builds a workload with reduced right-side cardinalities too — used
/// by tests and quick runs where generating 14 K detailed ecoregions
/// would dwarf the join itself.
///
/// # Errors
/// Propagates DFS configuration and write failures.
pub fn build_small_workload(
    scale: f64,
    right_scale: f64,
    seed: u64,
) -> Result<Workload, BenchError> {
    let block_size = ((minihdfs::DEFAULT_BLOCK_SIZE as f64 * scale) as usize).max(4 * 1024);
    let dfs = MiniDfs::new(DATANODES, block_size)?;
    let s = datagen::Scale(scale);
    let r = datagen::Scale(right_scale);

    let taxi = datagen::taxi::geometries(s.apply(datagen::full_size::TAXI), seed);
    datagen::write_dataset(&dfs, paths::TAXI, &taxi)?;
    let gbif = datagen::gbif::geometries(s.apply(datagen::full_size::G10M), seed);
    datagen::write_dataset(&dfs, paths::GBIF, &gbif)?;
    let nycb = datagen::nycb::geometries(r.apply(datagen::full_size::NYCB), seed);
    datagen::write_dataset(&dfs, paths::NYCB, &nycb)?;
    let lion = datagen::lion::geometries(r.apply(datagen::full_size::LION), seed);
    datagen::write_dataset(&dfs, paths::LION, &lion)?;
    let wwf = datagen::wwf::geometries(r.apply(datagen::full_size::WWF), seed);
    datagen::write_dataset(&dfs, paths::WWF, &wwf)?;

    Ok(Workload { dfs, scale })
}

/// The four experiments of §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    TaxiNycb,
    TaxiLion100,
    TaxiLion500,
    G10mWwf,
}

impl Experiment {
    /// All four, in the paper's table order.
    pub fn all() -> [Experiment; 4] {
        [
            Experiment::TaxiNycb,
            Experiment::TaxiLion100,
            Experiment::TaxiLion500,
            Experiment::G10mWwf,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Experiment::TaxiNycb => "taxi-nycb",
            Experiment::TaxiLion100 => "taxi-lion-100",
            Experiment::TaxiLion500 => "taxi-lion-500",
            Experiment::G10mWwf => "G10M-wwf",
        }
    }

    /// Left (point) dataset path.
    pub fn left_path(&self) -> &'static str {
        match self {
            Experiment::G10mWwf => paths::GBIF,
            _ => paths::TAXI,
        }
    }

    /// Right dataset path.
    pub fn right_path(&self) -> &'static str {
        match self {
            Experiment::TaxiNycb => paths::NYCB,
            Experiment::TaxiLion100 | Experiment::TaxiLion500 => paths::LION,
            Experiment::G10mWwf => paths::WWF,
        }
    }

    /// Table names for the SQL (ISP-MC) path.
    pub fn table_names(&self) -> (&'static str, &'static str) {
        match self {
            Experiment::TaxiNycb => ("taxi", "nycb"),
            Experiment::TaxiLion100 | Experiment::TaxiLion500 => ("taxi", "lion"),
            Experiment::G10mWwf => ("gbif", "wwf"),
        }
    }

    /// The join predicate (distances are feet, the LION native unit).
    pub fn predicate(&self) -> SpatialPredicate {
        match self {
            Experiment::TaxiNycb | Experiment::G10mWwf => SpatialPredicate::Within,
            Experiment::TaxiLion100 => SpatialPredicate::NearestD(100.0),
            Experiment::TaxiLion500 => SpatialPredicate::NearestD(500.0),
        }
    }
}

/// Runs an experiment through SpatialSpark after one warm-up run (the
/// first touch of a dataset pays page-fault and allocator-growth costs
/// that are not part of the system under study).
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_spark_warm(
    w: &Workload,
    exp: Experiment,
    threads: usize,
) -> Result<SpatialSparkRun, BenchError> {
    let _ = run_spark(w, exp, threads)?;
    run_spark(w, exp, threads)
}

/// Runs an experiment through ISP-MC after one warm-up run.
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_ispmc_warm(
    w: &Workload,
    exp: Experiment,
    threads: usize,
) -> Result<IspMcRun, BenchError> {
    let _ = run_ispmc(w, exp, threads)?;
    run_ispmc(w, exp, threads)
}

/// Runs an experiment through SpatialSpark.
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_spark(
    w: &Workload,
    exp: Experiment,
    threads: usize,
) -> Result<SpatialSparkRun, BenchError> {
    let conf = SparkConf {
        app_name: format!("spatialspark:{}", exp.label()),
        threads,
        ..SparkConf::default()
    };
    let sys = SpatialSpark::new(conf, w.dfs.clone());
    Ok(sys.broadcast_spatial_join(exp.left_path(), exp.right_path(), exp.predicate())?)
}

/// Runs an experiment through ISP-MC.
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_ispmc(w: &Workload, exp: Experiment, threads: usize) -> Result<IspMcRun, BenchError> {
    let conf = ImpaladConf {
        threads,
        ..ImpaladConf::default()
    };
    let (lname, rname) = exp.table_names();
    let sys = IspMc::new(
        conf,
        w.dfs.clone(),
        (lname, exp.left_path()),
        (rname, exp.right_path()),
    );
    Ok(sys.spatial_join(lname, rname, exp.predicate())?)
}

/// Runs an experiment through SpatialSpark with fault injection wired
/// into every stage: injected executor deaths are recovered live by
/// lineage recompute on the surviving workers.
///
/// # Errors
/// Propagates run failures; unrecoverable chaos (a partition failing
/// every recompute round) panics by design and should be caught by the
/// caller when sweeping aggressive fault rates.
pub fn run_spark_chaos(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    chaos: cluster::ChaosConfig,
) -> Result<SpatialSparkRun, BenchError> {
    let conf = SparkConf {
        app_name: format!("spatialspark-chaos:{}", exp.label()),
        threads,
        chaos,
        ..SparkConf::default()
    };
    let sys = SpatialSpark::new(conf, w.dfs.clone());
    Ok(sys.broadcast_spatial_join(exp.left_path(), exp.right_path(), exp.predicate())?)
}

/// Runs an experiment through ISP-MC with fault injection: any
/// fragment failure aborts the query with an `Err` (fail-fast, no
/// partial results) — the caller decides whether to restart.
///
/// # Errors
/// Propagates run failures, including injected fragment failures.
pub fn run_ispmc_chaos(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    chaos: cluster::ChaosConfig,
) -> Result<IspMcRun, BenchError> {
    let conf = ImpaladConf {
        threads,
        chaos,
        ..ImpaladConf::default()
    };
    let (lname, rname) = exp.table_names();
    let sys = IspMc::new(
        conf,
        w.dfs.clone(),
        (lname, exp.left_path()),
        (rname, exp.right_path()),
    );
    Ok(sys.spatial_join(lname, rname, exp.predicate())?)
}

/// How measured runs are replayed at paper scale.
///
/// `scale` is the fraction of the paper's point cardinality that was
/// generated; `calibration` is a single global CPU factor aligning this
/// substrate's per-record cost (modern Rust on modern hardware) with
/// the paper's 2014 testbed (JVM Spark + GEOS-backed Impala on
/// g2.2xlarge vCPUs). It is calibrated once against the SpatialSpark
/// taxi-nycb single-node cell of Table 1 and then held fixed for every
/// other cell, figure and system — so every other number is a
/// prediction, not a fit.
#[derive(Debug, Clone, Copy)]
pub struct Replay {
    pub scale: f64,
    pub calibration: f64,
}

impl Replay {
    /// Default calibration (see module docs / EXPERIMENTS.md).
    pub const DEFAULT_CALIBRATION: f64 = 70.0;

    pub fn new(scale: f64) -> Replay {
        Replay {
            scale,
            calibration: Self::DEFAULT_CALIBRATION,
        }
    }

    /// The factor applied to measured left-side task costs.
    pub fn cost_factor(&self) -> f64 {
        self.calibration / self.scale
    }

    /// Right-side (build) costs are full-size already; only the CPU
    /// calibration applies.
    pub fn right_side_factor(&self) -> f64 {
        self.calibration
    }
}

/// Multiplies a task list's costs by `factor`.
fn scale_tasks(tasks: &[TaskSpec], factor: f64) -> Vec<TaskSpec> {
    tasks
        .iter()
        .map(|t| TaskSpec {
            cost: t.cost * factor,
            locality: t.locality,
        })
        .collect()
}

/// Scales a SpatialSpark job report to full dataset size: left-side
/// stages (parse, probe, shuffle volumes) get the full cost factor;
/// the driver-side right-table build (already full cardinality) gets
/// only the CPU calibration; broadcast bytes are full-size as is.
pub fn scale_spark_report(report: &JobReport, replay: &Replay) -> JobReport {
    let stages = report
        .stages
        .iter()
        .map(|s| {
            let left_side = !s.name.starts_with("driver:") && !s.name.starts_with("broadcast:");
            let factor = if left_side {
                replay.cost_factor()
            } else {
                replay.right_side_factor()
            };
            StageMetrics {
                name: s.name.clone(),
                tasks: scale_tasks(&s.tasks, factor),
                broadcast_bytes: s.broadcast_bytes,
                shuffle_bytes: if left_side {
                    (s.shuffle_bytes as f64 / replay.scale) as u64
                } else {
                    s.shuffle_bytes
                },
            }
        })
        .collect();
    JobReport { stages }
}

/// Scales ISP-MC query metrics to full dataset size: left-side scan and
/// probe chunks are multiplied; the per-instance R-tree build and the
/// right-table broadcast are not.
pub fn scale_ispmc_metrics(metrics: &QueryMetrics, replay: &Replay) -> QueryMetrics {
    let factor = replay.cost_factor();
    QueryMetrics {
        scan_tasks: scale_tasks(&metrics.scan_tasks, factor),
        build_secs: metrics.build_secs * replay.right_side_factor(),
        broadcast_bytes: metrics.broadcast_bytes,
        probe_batches: metrics
            .probe_batches
            .iter()
            .map(|b| impalite::exec::ProbeBatch {
                locality: b.locality,
                chunk_costs: b.chunk_costs.iter().map(|c| c * factor).collect(),
            })
            .collect(),
        chunks_per_batch: metrics.chunks_per_batch,
        result_rows: metrics.result_rows,
    }
}

/// Simulated SpatialSpark runtime at full scale on `nodes` EC2 nodes
/// (Table 2, Fig. 4).
pub fn spark_runtime_at_scale(run: &SpatialSparkRun, replay: &Replay, nodes: usize) -> f64 {
    let report = scale_spark_report(&run.report, replay);
    report.simulate_runtime(
        &cluster::ClusterSpec::ec2_with_nodes(nodes),
        &cluster::NetworkModel::ec2_spark(),
        cluster::Scheduler::Dynamic,
    )
}

/// Simulated SpatialSpark runtime at full scale on the paper's single
/// in-house 16-core machine (Table 1 — the EC2 cluster could not run
/// below 4 nodes for memory reasons, so single-node numbers are from
/// that machine).
pub fn spark_single_node_at_scale(run: &SpatialSparkRun, replay: &Replay) -> f64 {
    let report = scale_spark_report(&run.report, replay);
    report.simulate_runtime(
        &cluster::ClusterSpec::single_node_highend(),
        &cluster::NetworkModel::ec2_spark(),
        cluster::Scheduler::Dynamic,
    )
}

/// Simulated ISP-MC runtime at full scale on `nodes` EC2 nodes.
pub fn ispmc_runtime_at_scale(run: &IspMcRun, replay: &Replay, nodes: usize) -> f64 {
    let metrics = scale_ispmc_metrics(&run.result.metrics, replay);
    metrics.simulate_runtime(&ImpaladConf::default(), nodes)
}

/// Simulated ISP-MC runtime at full scale on the single 16-core machine
/// (Table 1).
pub fn ispmc_single_node_at_scale(run: &IspMcRun, replay: &Replay) -> f64 {
    let metrics = scale_ispmc_metrics(&run.result.metrics, replay);
    metrics.simulate_runtime_on(
        &ImpaladConf::default(),
        &cluster::ClusterSpec::single_node_highend(),
    )
}

/// Simulated ISP-MC-standalone runtime at full scale (single 16-core
/// machine).
pub fn ispmc_standalone_at_scale(run: &IspMcRun, replay: &Replay) -> f64 {
    let metrics = scale_ispmc_metrics(&run.result.metrics, replay);
    metrics.simulate_standalone_on(&cluster::ClusterSpec::single_node_highend())
}

/// Scales Hadoop job metrics to full dataset size: both task waves and
/// the intermediate spill scale with the left side (the partition job
/// moves the whole input through the shuffle).
pub fn scale_hadoop_metrics(
    metrics: &hadooplet::JobMetrics,
    replay: &Replay,
) -> hadooplet::JobMetrics {
    hadooplet::JobMetrics {
        map_tasks: scale_tasks(&metrics.map_tasks, replay.cost_factor()),
        reduce_tasks: scale_tasks(&metrics.reduce_tasks, replay.cost_factor()),
        intermediate_bytes: (metrics.intermediate_bytes as f64 / replay.scale) as u64,
    }
}

/// Runs an experiment through a Hadoop-style baseline and returns the
/// run plus its simulated full-scale runtime on `nodes` nodes.
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_hadoop_baseline(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    strategy_is_spatialhadoop: bool,
    replay: &Replay,
    nodes: usize,
) -> Result<(hadooplet::HadoopJoinRun, f64), BenchError> {
    let conf = hadooplet::HadoopConf {
        threads,
        ..hadooplet::HadoopConf::default()
    };
    let mr = hadooplet::MapReduce::new(conf.clone(), w.dfs.clone());
    let run = if strategy_is_spatialhadoop {
        hadooplet::spatialhadoop_join(&mr, exp.left_path(), exp.right_path(), exp.predicate(), 256)
    } else {
        hadooplet::hadoopgis_join(&mr, exp.left_path(), exp.right_path(), exp.predicate(), 256)
    }?;
    let mut t = scale_hadoop_metrics(&run.metrics, replay).simulate_runtime(&conf, nodes);
    if let Some(pre) = &run.preprocessing {
        t += scale_hadoop_metrics(pre, replay).simulate_runtime(&conf, nodes);
    }
    Ok((run, t))
}

/// Like [`run_hadoop_baseline`] but excluding any one-time
/// partitioning job from the reported runtime.
///
/// # Errors
/// Propagates run failures (usually a missing dataset path).
pub fn run_hadoop_baseline_join_only(
    w: &Workload,
    exp: Experiment,
    threads: usize,
    strategy_is_spatialhadoop: bool,
    replay: &Replay,
    nodes: usize,
) -> Result<(hadooplet::HadoopJoinRun, f64), BenchError> {
    let conf = hadooplet::HadoopConf {
        threads,
        ..hadooplet::HadoopConf::default()
    };
    let mr = hadooplet::MapReduce::new(conf.clone(), w.dfs.clone());
    let run = if strategy_is_spatialhadoop {
        hadooplet::spatialhadoop_join(&mr, exp.left_path(), exp.right_path(), exp.predicate(), 256)
    } else {
        hadooplet::hadoopgis_join(&mr, exp.left_path(), exp.right_path(), exp.predicate(), 256)
    }?;
    let t = scale_hadoop_metrics(&run.metrics, replay).simulate_runtime(&conf, nodes);
    Ok((run, t))
}

/// Estimates the full-scale in-memory footprint of an experiment:
/// both sides resident (raw text plus ~2× object overhead for the
/// JVM/engine structures) plus working space. This is what limited the
/// paper to ≥4 EC2 nodes ("due to the memory limitation of the EC2
/// instances (15 GB per node)").
pub fn estimate_memory_footprint(
    w: &Workload,
    exp: Experiment,
    replay: &Replay,
) -> Result<u64, BenchError> {
    let left = w.dfs.stat(exp.left_path())?.total_bytes as f64 / replay.scale;
    let right = w.dfs.stat(exp.right_path())?.total_bytes as f64;
    Ok(((left + right) * 3.0) as u64)
}

/// Prints which node counts of a sweep are infeasible for memory, as
/// the paper's setup section reports.
///
/// # Errors
/// Propagates DFS stat failures.
pub fn report_memory_gate(
    w: &Workload,
    exp: Experiment,
    replay: &Replay,
) -> Result<(), BenchError> {
    let bytes = estimate_memory_footprint(w, exp, replay)?;
    for nodes in 1..=3usize {
        let spec = cluster::ClusterSpec::ec2_with_nodes(nodes);
        if !spec.fits_in_memory(bytes) {
            eprintln!(
                "#   {}: {} node(s) infeasible — needs ~{:.1} GB in memory, {} x 15 GB available",
                exp.label(),
                nodes,
                bytes as f64 / (1u64 << 30) as f64,
                nodes
            );
        }
    }
    Ok(())
}

/// Parsed CLI arguments for the figure/table binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    pub replay: Replay,
    pub threads: usize,
    /// Run the schedule-mode ablation instead of the plain figure
    /// (`fig4`/`fig5` only).
    pub ablate: bool,
    /// Right-side cardinality fraction (`--right-scale`, default 1.0).
    /// Below 1.0 the workload is built with
    /// [`build_small_workload`] — meant for CI-speed ablation runs.
    pub right_scale: f64,
}

impl BenchArgs {
    /// Builds the workload this argument set describes: the full
    /// right-side cardinalities unless `--right-scale` shrank them.
    ///
    /// # Errors
    /// Propagates DFS configuration and write failures.
    pub fn build_workload(&self, seed: u64) -> Result<Workload, BenchError> {
        if self.right_scale < 1.0 {
            build_small_workload(self.replay.scale, self.right_scale, seed)
        } else {
            build_workload(self.replay.scale, seed)
        }
    }
}

/// Parses `--scale <f>`, `--threads <n>`, `--calibration <f>`,
/// `--ablate` and `--right-scale <f>` CLI arguments with defaults.
///
/// # Errors
/// Returns [`BenchError::Usage`] for unknown flags or unparsable values.
pub fn parse_bench_args() -> Result<BenchArgs, BenchError> {
    let mut parsed = BenchArgs {
        replay: Replay::new(0.01),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        ablate: false,
        right_scale: 1.0,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                parsed.replay.scale = args[i + 1]
                    .parse()
                    .map_err(|_| BenchError::Usage("--scale takes a float".into()))?;
                i += 2;
            }
            "--calibration" if i + 1 < args.len() => {
                parsed.replay.calibration = args[i + 1]
                    .parse()
                    .map_err(|_| BenchError::Usage("--calibration takes a float".into()))?;
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                parsed.threads = args[i + 1]
                    .parse()
                    .map_err(|_| BenchError::Usage("--threads takes an integer".into()))?;
                i += 2;
            }
            "--right-scale" if i + 1 < args.len() => {
                parsed.right_scale = args[i + 1]
                    .parse()
                    .map_err(|_| BenchError::Usage("--right-scale takes a float".into()))?;
                i += 2;
            }
            "--ablate" => {
                parsed.ablate = true;
                i += 1;
            }
            other => {
                return Err(BenchError::Usage(format!(
                    "unknown argument {other}; use --scale <f> --threads <n> --calibration <f> \
                     [--ablate] [--right-scale <f>]"
                )));
            }
        }
    }
    Ok(parsed)
}

/// [`parse_bench_args`] restricted to the original
/// `--scale/--threads/--calibration` trio, for binaries without an
/// ablation mode.
///
/// # Errors
/// Returns [`BenchError::Usage`] for unknown flags or unparsable values.
pub fn parse_args() -> Result<(Replay, usize), BenchError> {
    let parsed = parse_bench_args()?;
    if parsed.ablate || parsed.right_scale != 1.0 {
        return Err(BenchError::Usage(
            "--ablate/--right-scale are only supported by fig4 and fig5".into(),
        ));
    }
    Ok((parsed.replay, parsed.threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_metadata_is_consistent() {
        for exp in Experiment::all() {
            assert!(!exp.label().is_empty());
            assert!(exp.left_path().starts_with("/data/"));
            assert!(exp.right_path().starts_with("/data/"));
        }
        assert_eq!(
            Experiment::TaxiLion500.predicate(),
            SpatialPredicate::NearestD(500.0)
        );
    }

    #[test]
    fn small_workload_builds_and_joins() {
        let w = build_small_workload(0.0001, 0.01, 7).expect("workload builds");
        for p in [
            paths::TAXI,
            paths::NYCB,
            paths::LION,
            paths::GBIF,
            paths::WWF,
        ] {
            assert!(w.dfs.exists(p), "{p} missing");
        }
        let spark = run_spark(&w, Experiment::TaxiNycb, 2).expect("spark runs");
        let ispmc = run_ispmc(&w, Experiment::TaxiNycb, 2).expect("ispmc runs");
        // Cross-system agreement on the same data.
        assert_eq!(
            spatialjoin::normalize_pairs(spark.pairs.clone()),
            spatialjoin::normalize_pairs(ispmc.result.pairs.clone())
        );
    }

    #[test]
    fn scaling_applies_per_stage_factors() {
        let w = build_small_workload(0.0001, 0.01, 8).expect("workload builds");
        let run = run_spark(&w, Experiment::TaxiNycb, 2).expect("spark runs");
        let replay = Replay {
            scale: 0.1,
            calibration: 2.0,
        };
        let scaled = scale_spark_report(&run.report, &replay);
        for (orig, sc) in run.report.stages.iter().zip(&scaled.stages) {
            let factor = if orig.name.starts_with("driver:") || orig.name.starts_with("broadcast:")
            {
                replay.right_side_factor()
            } else {
                replay.cost_factor()
            };
            for (a, b) in orig.tasks.iter().zip(&sc.tasks) {
                assert!((b.cost - a.cost * factor).abs() < 1e-12);
            }
        }
    }
}
