//! In-tree wall-clock timing harness — the `[[bench]]` targets run on
//! this instead of an external benchmark framework, so `cargo bench`
//! works offline.
//!
//! The measurement loop is the standard calibrate-then-sample design:
//! each benchmark first doubles its iteration count until one batch
//! takes at least [`CALIBRATION_FLOOR`], scales that count to the
//! [`TARGET_SAMPLE`] batch duration, then times `sample_size` batches
//! and reports the minimum, median and mean per-iteration time. The
//! minimum is the headline number: wall-clock noise is strictly
//! additive, so the fastest batch is the best estimate of the true
//! cost.
//!
//! Benchmarks accept a single positional CLI argument as a substring
//! filter (`cargo bench --bench indexing -- grid`); flag arguments the
//! harness does not know (e.g. the `--bench` cargo passes) are
//! ignored.

use std::time::{Duration, Instant};

/// One batch must take at least this long before calibration trusts it.
const CALIBRATION_FLOOR: Duration = Duration::from_millis(5);
/// Target duration of a single measured batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Batches measured per benchmark unless overridden by `sample_size`.
const DEFAULT_SAMPLES: usize = 7;

/// Top-level driver owning the CLI filter; create one in `main` and
/// pass it to every bench function.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness from the process arguments: the first
    /// non-flag argument becomes a substring filter on benchmark
    /// names.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        let name = name.into();
        println!("\n{name}");
        Group {
            harness: self,
            name,
            samples: DEFAULT_SAMPLES,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix, mirroring the
/// group-oriented layout the bench files were written in.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Overrides the number of measured batches for this group — used
    /// by the slow end-to-end joins.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Measures one closure. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] exactly once per invocation.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if !self.harness.matches(&full) {
            return;
        }
        let stats = drive(self.samples, &mut f);
        println!("  {id:<28} {stats}");
    }

    /// [`Group::bench_function`] with an explicit input reference,
    /// mirroring the parameterised-benchmark shape.
    pub fn bench_with_input<I, F>(&mut self, id: impl std::fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing is incremental, so this is a no-op
    /// kept for call-site symmetry).
    pub fn finish(self) {}
}

/// Identifier helper kept API-compatible with the original bench
/// files: `BenchId::new("str", n)` renders as `str/n`.
pub struct BenchId(String);

impl BenchId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchId {
        BenchId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchId {
        BenchId(param.to_string())
    }
}

impl std::fmt::Display for BenchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so `{id:<28}` column alignment works.
        f.pad(&self.0)
    }
}

/// Runs one timed batch per call to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, black-boxing each result so the
    /// optimiser cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-benchmark result over all measured batches.
struct Stats {
    iters: u64,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:>10}  median {:>10}  mean {:>10}  ({} iters/batch)",
            fmt_ns(self.min_ns),
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            self.iters,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Calibrates the per-batch iteration count, then measures `samples`
/// batches of `f`.
fn drive<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Stats {
    // Calibration: double until a batch crosses the floor.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= CALIBRATION_FLOOR {
            break b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    let iters = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter_ns).round() as u64).max(1);

    let mut per_iter: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    Stats {
        iters,
        min_ns: per_iter[0],
        median_ns: per_iter[per_iter.len() / 2],
        mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_renders_like_paths() {
        assert_eq!(BenchId::new("str", 10).to_string(), "str/10");
        assert_eq!(BenchId::from_parameter("grid").to_string(), "grid");
    }

    #[test]
    fn drive_produces_ordered_stats() {
        let mut work = |b: &mut Bencher| {
            b.iter(|| (0..100u64).sum::<u64>());
        };
        let stats = drive(3, &mut work);
        assert!(stats.iters >= 1);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }

    #[test]
    fn filter_matches_substrings() {
        let all = Harness { filter: None };
        assert!(all.matches("group/anything"));
        let some = Harness {
            filter: Some("grid".to_string()),
        };
        assert!(some.matches("index-query/grid"));
        assert!(!some.matches("index-query/str"));
    }
}
