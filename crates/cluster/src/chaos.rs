//! Deterministic fault injection for the live executors.
//!
//! The paper's §III contrast between Spark's lineage recompute and
//! Impala's fail-fast fragment plan is only meaningful if the real
//! execution paths can actually experience faults. This module is the
//! single source of those faults: a [`Chaos`] handle, seeded through
//! `datagen::rng` so every run is replayable, decides purely as a
//! function of `(seed, site, index, attempt)` whether a fault fires.
//! Decisions are independent of thread interleaving — the same seed
//! injects the same faults at any thread count, which is what lets the
//! property tests demand bit-identical recovered output.
//!
//! Four fault kinds are modelled, mirroring the failure modes a
//! Hadoop/Spark/Impala deployment sees:
//!
//! * **worker panic mid-morsel** — the task closure panics *after*
//!   appending its output, so recovery must roll back a complete
//!   segment (the worst case for the order-preserving stitch);
//! * **corrupted DFS block replica** — decided per `(block, replica)`
//!   so `minihdfs` checksum fail-over can be driven deterministically;
//! * **transient read error** — fails an early read attempt, succeeds
//!   on retry;
//! * **straggler delay** — a bounded sleep before the work, slowing a
//!   task without failing it.
//!
//! Every injected fault is recorded in an event log (guarded by the
//! `events` lock declared in `crates/tidy/lock_order.toml`) and bumped
//! onto the `obs::faults_injected` counter, so benches can report
//! exactly what a run survived.

use std::sync::Mutex;
use std::time::Duration;

use datagen::rng::StdRng;

/// Where in the execution stack a fault decision is being made. The
/// discriminant feeds the hash, so the same index at different sites
/// draws independent faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// A task in `cluster::pool::run_tasks_faulted` (sparklet stages).
    Task,
    /// A morsel in `cluster::pool::run_morsels_faulted` (probe loops).
    Morsel,
    /// A DFS block read (transient errors) or `(block, replica)`
    /// corruption decision.
    BlockRead,
    /// An impalite plan fragment.
    Fragment,
}

impl ChaosSite {
    fn salt(self) -> u64 {
        match self {
            ChaosSite::Task => 0x7461_736b,
            ChaosSite::Morsel => 0x6d6f_7273,
            ChaosSite::BlockRead => 0x626c_6f63,
            ChaosSite::Fragment => 0x6672_6167,
        }
    }
}

/// What kind of fault an event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    WorkerPanic,
    CorruptReplica,
    TransientRead,
    StragglerDelay,
}

/// One injected fault, for post-run reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    pub site: ChaosSite,
    pub kind: FaultKind,
    /// Task / morsel / block / fragment index at the site.
    pub index: u64,
    /// Zero-based attempt the fault hit.
    pub attempt: u32,
}

/// Fault rates and the seed that makes them replayable. All rates are
/// probabilities in `[0, 1]` evaluated independently per attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the per-decision hash; same seed ⇒ same faults.
    pub seed: u64,
    /// Probability a task/morsel/fragment attempt panics.
    pub panic_rate: f64,
    /// Probability a `(block, replica)` pair is corrupted on disk.
    pub corrupt_rate: f64,
    /// Probability a block-read attempt fails transiently.
    pub transient_read_rate: f64,
    /// Probability an attempt is delayed by `straggler_delay`.
    pub straggler_rate: f64,
    /// How long a straggler sleeps.
    pub straggler_delay: Duration,
}

impl ChaosConfig {
    /// No faults at all — the identity configuration.
    pub fn disabled() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            panic_rate: 0.0,
            corrupt_rate: 0.0,
            transient_read_rate: 0.0,
            straggler_rate: 0.0,
            straggler_delay: Duration::ZERO,
        }
    }

    /// Every fault site firing at `rate`, with a token straggler delay.
    pub fn uniform(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_rate: rate,
            corrupt_rate: rate,
            transient_read_rate: rate,
            straggler_rate: rate,
            straggler_delay: Duration::from_micros(200),
        }
    }

    /// True when no site can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.panic_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.transient_read_rate <= 0.0
            && self.straggler_rate <= 0.0
    }
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig::disabled()
    }
}

/// A shareable fault injector. Cheap to construct; decisions are pure
/// hashes of the configuration seed, so a `Chaos` can be consulted from
/// any worker thread without coordination. Only the event log takes a
/// lock, and only when a fault actually fires.
#[derive(Debug)]
pub struct Chaos {
    cfg: ChaosConfig,
    events: Mutex<Vec<ChaosEvent>>,
}

impl Chaos {
    pub fn new(cfg: ChaosConfig) -> Chaos {
        Chaos {
            cfg,
            events: Mutex::new(Vec::new()),
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> Chaos {
        Chaos::new(ChaosConfig::disabled())
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    pub fn is_disabled(&self) -> bool {
        self.cfg.is_disabled()
    }

    /// Snapshot of every fault injected so far.
    pub fn events(&self) -> Vec<ChaosEvent> {
        match self.events.lock() {
            Ok(g) => g.as_slice().into(),
            Err(poisoned) => poisoned.into_inner().as_slice().into(),
        }
    }

    /// Number of faults injected so far.
    pub fn fault_count(&self) -> usize {
        match self.events.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    fn record(&self, event: ChaosEvent) {
        obs::faults_injected(1);
        match self.events.lock() {
            Ok(mut g) => g.push(event),
            Err(poisoned) => poisoned.into_inner().push(event),
        }
    }

    /// The deterministic uniform draw behind every decision.
    fn roll(&self, site: ChaosSite, kind_salt: u64, index: u64, attempt: u32) -> f64 {
        let mixed = self.cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ site.salt().wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ kind_salt.wrapping_mul(0x94d0_49bb_1331_11eb)
            ^ index.wrapping_mul(0xd6e8_feb8_6659_fd93)
            ^ u64::from(attempt).wrapping_mul(0xff51_afd7_ed55_8ccd);
        StdRng::seed_from_u64(mixed).next_f64()
    }

    /// Pure query: would a panic fire at this site/index/attempt?
    /// No event is recorded — use [`Chaos::inject`] for that.
    pub fn panic_fires(&self, site: ChaosSite, index: u64, attempt: u32) -> bool {
        self.cfg.panic_rate > 0.0 && self.roll(site, 1, index, attempt) < self.cfg.panic_rate
    }

    /// Pure query: does this block-read attempt fail transiently?
    pub fn read_fault_fires(&self, index: u64, attempt: u32) -> bool {
        self.cfg.transient_read_rate > 0.0
            && self.roll(ChaosSite::BlockRead, 2, index, attempt) < self.cfg.transient_read_rate
    }

    /// Pure query: is this `(block, replica)` pair corrupted?
    pub fn replica_corrupt(&self, block: u64, replica: u64) -> bool {
        self.cfg.corrupt_rate > 0.0
            && self.roll(ChaosSite::BlockRead, 3, block ^ (replica << 48), 0)
                < self.cfg.corrupt_rate
    }

    /// Records a transient read fault at `index`/`attempt`; the caller
    /// has already decided (via [`Chaos::read_fault_fires`]) to fail
    /// the read.
    pub fn note_read_fault(&self, index: u64, attempt: u32) {
        self.record(ChaosEvent {
            site: ChaosSite::BlockRead,
            kind: FaultKind::TransientRead,
            index,
            attempt,
        });
    }

    /// Records that a corrupted replica was planted for `block`.
    pub fn note_corrupt_replica(&self, block: u64, replica: u64) {
        self.record(ChaosEvent {
            site: ChaosSite::BlockRead,
            kind: FaultKind::CorruptReplica,
            index: block ^ (replica << 48),
            attempt: 0,
        });
    }

    /// The injection hook the executors wrap around task closures.
    /// Applies a straggler delay (if drawn) and then, if the panic draw
    /// fires, records the event and panics — simulating a worker dying
    /// at this site. Call it *after* the task's output is produced so a
    /// recovered run proves partial output is rolled back.
    ///
    /// # Panics
    /// Deliberately, when the seeded panic draw fires.
    pub fn inject(&self, site: ChaosSite, index: u64, attempt: u32) {
        if self.cfg.straggler_rate > 0.0
            && self.roll(site, 4, index, attempt) < self.cfg.straggler_rate
        {
            self.record(ChaosEvent {
                site,
                kind: FaultKind::StragglerDelay,
                index,
                attempt,
            });
            if !self.cfg.straggler_delay.is_zero() {
                std::thread::sleep(self.cfg.straggler_delay);
            }
        }
        if self.panic_fires(site, index, attempt) {
            self.record(ChaosEvent {
                site,
                kind: FaultKind::WorkerPanic,
                index,
                attempt,
            });
            std::panic::panic_any(format!(
                "chaos: injected worker panic at {site:?}[{index}] attempt {attempt}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_chaos_never_fires() {
        let c = Chaos::disabled();
        for i in 0..200 {
            assert!(!c.panic_fires(ChaosSite::Task, i, 0));
            assert!(!c.read_fault_fires(i, 0));
            assert!(!c.replica_corrupt(i, 0));
            c.inject(ChaosSite::Morsel, i, 0); // must not panic
        }
        assert_eq!(c.fault_count(), 0);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = Chaos::new(ChaosConfig::uniform(42, 0.3));
        let b = Chaos::new(ChaosConfig::uniform(42, 0.3));
        let c = Chaos::new(ChaosConfig::uniform(43, 0.3));
        let draws = |ch: &Chaos| -> Vec<bool> {
            (0..256)
                .map(|i| ch.panic_fires(ChaosSite::Morsel, i, 0))
                .collect()
        };
        assert_eq!(draws(&a), draws(&b), "same seed, same faults");
        assert_ne!(draws(&a), draws(&c), "different seed, different faults");
        // Attempts draw independently: a fault at attempt 0 does not
        // imply one at attempt 1 (rate 0.3 ⇒ some index recovers).
        let recovers = (0..256).any(|i| {
            a.panic_fires(ChaosSite::Morsel, i, 0) && !a.panic_fires(ChaosSite::Morsel, i, 1)
        });
        assert!(recovers, "expected at least one index to recover on retry");
    }

    #[test]
    fn rate_roughly_respected() {
        let c = Chaos::new(ChaosConfig::uniform(7, 0.25));
        let fired = (0..4000)
            .filter(|&i| c.panic_fires(ChaosSite::Task, i, 0))
            .count();
        let frac = fired as f64 / 4000.0;
        assert!((0.15..0.35).contains(&frac), "rate off: {frac}");
    }

    #[test]
    fn injected_panic_is_recorded_and_replayable() {
        let cfg = ChaosConfig {
            panic_rate: 1.0,
            ..ChaosConfig::uniform(9, 0.0)
        };
        let c = Chaos::new(cfg);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.inject(ChaosSite::Fragment, 5, 0);
        }));
        assert!(caught.is_err());
        let events = c.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::WorkerPanic);
        assert_eq!(events[0].site, ChaosSite::Fragment);
        assert_eq!(events[0].index, 5);
    }

    #[test]
    fn sites_draw_independently() {
        let c = Chaos::new(ChaosConfig::uniform(11, 0.5));
        let task: Vec<bool> = (0..128)
            .map(|i| c.panic_fires(ChaosSite::Task, i, 0))
            .collect();
        let morsel: Vec<bool> = (0..128)
            .map(|i| c.panic_fires(ChaosSite::Morsel, i, 0))
            .collect();
        assert_ne!(task, morsel);
    }
}
