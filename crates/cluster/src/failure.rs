//! Node-failure injection for the replay simulator.
//!
//! §III of the paper notes that "Spark provides fault tolerance through
//! re-computing as RDDs keep track of data processing workflows", while
//! Impala's fixed plan has no mid-query recovery — a lost instance
//! fails the query. This module lets the replay quantify that
//! difference: kill one node at a chosen time and either *recompute*
//! the lost work on the survivors (Spark) or *restart* the whole query
//! on the surviving cluster (Impala).

use crate::sim::{simulate, Scheduler, SimReport, TaskSpec};
use crate::topology::ClusterSpec;

/// A single node failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failure {
    /// Node that dies.
    pub node: usize,
    /// Simulated seconds after job start.
    pub at_time: f64,
}

/// Outcome of a failure-injected replay.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total makespan including recovery.
    pub makespan: f64,
    /// Makespan of the same job with no failure.
    pub fault_free_makespan: f64,
    /// Tasks whose results were lost and had to re-run (recompute mode)
    /// or the full task count (restart mode).
    pub tasks_rerun: usize,
}

impl FailureReport {
    /// Slow-down factor caused by the failure.
    pub fn overhead(&self) -> f64 {
        if self.fault_free_makespan == 0.0 {
            1.0
        } else {
            self.makespan / self.fault_free_makespan
        }
    }
}

/// Spark-style recovery: work that the dead node had produced is
/// recomputed on the survivors; everything else keeps its progress.
///
/// The model: replay the dynamic schedule, classify each task by where
/// and when it ran, then re-run (lost ∪ unfinished) tasks on the
/// surviving cluster starting at the failure time.
pub fn simulate_with_recompute(
    tasks: &[TaskSpec],
    spec: &ClusterSpec,
    failure: Failure,
) -> FailureReport {
    let fault_free = simulate(tasks, spec, Scheduler::Dynamic);
    if failure.at_time >= fault_free.makespan || spec.num_nodes <= 1 {
        // Nothing lost: the job finished first, or there is nothing to
        // fail over to (treated as job loss = restart semantics).
        let makespan = if spec.num_nodes <= 1 {
            failure.at_time + fault_free.makespan
        } else {
            fault_free.makespan
        };
        return FailureReport {
            makespan,
            fault_free_makespan: fault_free.makespan,
            tasks_rerun: if spec.num_nodes <= 1 { tasks.len() } else { 0 },
        };
    }

    // Replay list scheduling, recording (node, start, end) per task.
    let cores = spec.total_cores();
    let mut core_free = vec![0.0f64; cores];
    let mut rerun: Vec<TaskSpec> = Vec::new();
    for t in tasks {
        // Earliest-free core (ties by index) — same policy as `simulate`.
        let mut best = 0usize;
        for c in 1..cores {
            if core_free[c] < core_free[best] {
                best = c;
            }
        }
        let node = best / spec.cores_per_node;
        let start = core_free[best];
        let end = start + t.cost;
        core_free[best] = end;
        let lost_output = node == failure.node && end <= failure.at_time;
        let interrupted = node == failure.node && start < failure.at_time && end > failure.at_time;
        let never_ran = start >= failure.at_time && node == failure.node;
        if lost_output || interrupted || never_ran {
            rerun.push(*t);
        } else if start >= failure.at_time || end > failure.at_time {
            // Scheduled on a survivor but not finished at failure time:
            // it still has to run, count it in the remaining work.
            rerun.push(*t);
        }
    }

    // Survivors re-run the outstanding work from the failure instant.
    let survivor_spec = ClusterSpec {
        num_nodes: spec.num_nodes - 1,
        ..*spec
    };
    let recovery = simulate(&rerun, &survivor_spec, Scheduler::Dynamic);
    FailureReport {
        makespan: failure.at_time + recovery.makespan,
        fault_free_makespan: fault_free.makespan,
        tasks_rerun: rerun.len(),
    }
}

/// Impala-style behaviour: the query dies with the node and restarts
/// from scratch on the surviving cluster.
pub fn simulate_with_restart(
    tasks: &[TaskSpec],
    spec: &ClusterSpec,
    scheduler: Scheduler,
    failure: Failure,
) -> FailureReport {
    let fault_free = simulate(tasks, spec, scheduler);
    if failure.at_time >= fault_free.makespan {
        return FailureReport {
            makespan: fault_free.makespan,
            fault_free_makespan: fault_free.makespan,
            tasks_rerun: 0,
        };
    }
    let survivor_spec = ClusterSpec {
        num_nodes: (spec.num_nodes - 1).max(1),
        ..*spec
    };
    let rerun = simulate(tasks, &survivor_spec, scheduler);
    FailureReport {
        makespan: failure.at_time + rerun.makespan,
        fault_free_makespan: fault_free.makespan,
        tasks_rerun: tasks.len(),
    }
}

/// Convenience: the fault-free report for comparison.
pub fn fault_free(tasks: &[TaskSpec], spec: &ClusterSpec, scheduler: Scheduler) -> SimReport {
    simulate(tasks, spec, scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec {
            num_nodes: 4,
            cores_per_node: 2,
            mem_per_node: 1 << 30,
        }
    }

    fn uniform(n: usize) -> Vec<TaskSpec> {
        vec![TaskSpec::of_cost(1.0); n]
    }

    #[test]
    fn failure_after_completion_is_free() {
        let tasks = uniform(16); // 16 tasks on 8 cores = 2 s
        let r = simulate_with_recompute(
            &tasks,
            &spec(),
            Failure {
                node: 0,
                at_time: 10.0,
            },
        );
        assert_eq!(r.makespan, r.fault_free_makespan);
        assert_eq!(r.tasks_rerun, 0);
        let r2 = simulate_with_restart(
            &tasks,
            &spec(),
            Scheduler::Dynamic,
            Failure {
                node: 0,
                at_time: 10.0,
            },
        );
        assert_eq!(r2.makespan, r2.fault_free_makespan);
    }

    #[test]
    fn recompute_beats_restart_mid_job() {
        let tasks = uniform(160); // 20 s fault-free
        let failure = Failure {
            node: 1,
            at_time: 15.0,
        };
        let recompute = simulate_with_recompute(&tasks, &spec(), failure);
        let restart = simulate_with_restart(&tasks, &spec(), Scheduler::Dynamic, failure);
        assert!(recompute.makespan > recompute.fault_free_makespan);
        assert!(
            recompute.makespan < restart.makespan,
            "recompute {} must beat restart {}",
            recompute.makespan,
            restart.makespan
        );
        assert!(recompute.tasks_rerun < restart.tasks_rerun);
        assert!(recompute.overhead() > 1.0);
    }

    #[test]
    fn recompute_makespan_is_invariant_to_failure_time_on_uniform_work() {
        // With full recomputation of the dead node's outputs, the
        // survivors' outstanding work at failure time T is
        // `total − survivor_rate × T`, so the finish time
        // `T + outstanding / survivor_rate` is the same for every T
        // before completion — a neat property the model should honour.
        let tasks = uniform(160);
        let early = simulate_with_recompute(
            &tasks,
            &spec(),
            Failure {
                node: 0,
                at_time: 1.0,
            },
        );
        let late = simulate_with_recompute(
            &tasks,
            &spec(),
            Failure {
                node: 0,
                at_time: 18.0,
            },
        );
        assert!((early.makespan - late.makespan).abs() < 0.5);
        // But a late failure has far less left to re-run.
        assert!(late.tasks_rerun < early.tasks_rerun);
        assert!(early.makespan > early.fault_free_makespan);
    }

    #[test]
    fn single_node_failure_means_restart() {
        let single = ClusterSpec {
            num_nodes: 1,
            cores_per_node: 4,
            mem_per_node: 1 << 30,
        };
        let tasks = uniform(8);
        let r = simulate_with_recompute(
            &tasks,
            &single,
            Failure {
                node: 0,
                at_time: 1.0,
            },
        );
        assert!(r.makespan > r.fault_free_makespan);
        assert_eq!(r.tasks_rerun, 8);
    }
}
