//! # cluster — the simulated EC2 cluster
//!
//! The paper evaluates on 10 Amazon EC2 `g2.2xlarge` instances (8 vCPUs,
//! 15 GB each). This crate replaces that hardware with a two-part
//! substrate, as documented in DESIGN.md:
//!
//! 1. **Real execution** ([`pool`]): join work runs for real on a local
//!    thread pool — real geometry, real indexes, real result pairs — and
//!    every task's wall-clock cost is measured.
//! 2. **Replay simulation** ([`sim`]): the measured task costs are
//!    replayed through a discrete-event simulator against a
//!    [`ClusterSpec`] topology, a [`NetworkModel`] for broadcast/shuffle
//!    costs, and a [`Scheduler`] policy — dynamic work-queue scheduling
//!    (Spark) or static pre-assignment (Impala / OpenMP-static).
//!
//! This preserves exactly what the paper measures: relative runtimes,
//! scalability curves (Figs. 4–5) and the load-imbalance effects of
//! static scheduling on skewed spatial data (§V.B–C).

pub mod chaos;
pub mod failure;
pub mod network;
pub mod pool;
pub mod sim;
pub mod topology;

pub use chaos::{Chaos, ChaosConfig, ChaosEvent, ChaosSite, FaultKind};
pub use failure::{simulate_with_recompute, simulate_with_restart, Failure, FailureReport};
pub use network::NetworkModel;
pub use pool::{
    run_morsels, run_morsels_faulted, run_morsels_hinted, run_morsels_hinted_observed,
    run_morsels_observed, run_tasks, run_tasks_faulted, run_tasks_observed, FaultedMorsels,
    FaultedTasks, RetryPolicy, ScheduleMode, TaskFailure, TaskTiming,
};
pub use sim::{scan_range_assignment, simulate, Scheduler, SimReport, TaskSpec};
pub use topology::ClusterSpec;
