//! Network and coordination cost model.
//!
//! Calibrated to commodity EC2 networking of the paper's era (~1 Gbit/s
//! effective point-to-point, sub-millisecond in-rack latency) plus the
//! software overheads the paper singles out:
//!
//! * Spark "selects a new leader and reconstructs an actor system to
//!   exchange the metadata of partitions for every job stage that
//!   involves shuffling", with cost growing in the number of partitions
//!   (§III) — modelled by [`NetworkModel::stage_coordination_cost`].
//! * Spark has "a per-run overhead to pack Jar files and send them to
//!   work instances" (§VI) — modelled by
//!   [`NetworkModel::job_startup_cost`].

/// Parameters of the simulated interconnect and coordination layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Point-to-point bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed cost of setting up one distributed stage (actor system
    /// reconstruction, leader election).
    pub stage_setup: f64,
    /// Additional coordination cost per partition per stage (metadata
    /// exchange).
    pub per_partition_meta: f64,
    /// Fixed per-job startup cost on top of a per-node shipping cost
    /// (jar packing and distribution for Spark; zero for Impala where
    /// binaries are pre-installed).
    pub job_startup_fixed: f64,
    /// Per-node component of job startup.
    pub job_startup_per_node: f64,
}

impl NetworkModel {
    /// EC2-era gigabit network with Spark-like coordination overheads.
    pub fn ec2_spark() -> NetworkModel {
        NetworkModel {
            latency: 0.5e-3,
            bandwidth: 110.0e6, // ~1 Gbit/s effective
            stage_setup: 0.15,
            per_partition_meta: 2.0e-3,
            job_startup_fixed: 2.0,
            job_startup_per_node: 0.4,
        }
    }

    /// EC2-era gigabit network with Impala-like coordination: the plan
    /// is made once at the frontend, "no changes on the plan are made
    /// after the plan starts to execute", so stages are cheap; binaries
    /// are pre-installed so job startup is negligible.
    pub fn ec2_impala() -> NetworkModel {
        NetworkModel {
            latency: 0.5e-3,
            bandwidth: 110.0e6,
            stage_setup: 0.02,
            per_partition_meta: 0.2e-3,
            job_startup_fixed: 0.1,
            job_startup_per_node: 0.0,
        }
    }

    /// A zero-cost network for standalone (single-process) execution.
    pub fn local() -> NetworkModel {
        NetworkModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            stage_setup: 0.0,
            per_partition_meta: 0.0,
            job_startup_fixed: 0.0,
            job_startup_per_node: 0.0,
        }
    }

    /// Time to move `bytes` point-to-point.
    pub fn transfer_cost(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time to broadcast `bytes` from one node to `num_nodes - 1` peers.
    ///
    /// Modelled as a pipelined chain (how Spark's torrent broadcast and
    /// Impala's exchange behave at this scale): one full transfer plus a
    /// per-hop latency per extra node.
    pub fn broadcast_cost(&self, bytes: u64, num_nodes: usize) -> f64 {
        if num_nodes <= 1 || bytes == 0 {
            return 0.0;
        }
        self.transfer_cost(bytes) + (num_nodes as f64 - 2.0).max(0.0) * self.latency
    }

    /// Time for an all-to-all shuffle of `total_bytes` across
    /// `num_nodes`, each node sending and receiving its share in
    /// parallel.
    pub fn shuffle_cost(&self, total_bytes: u64, num_nodes: usize) -> f64 {
        if num_nodes <= 1 || total_bytes == 0 {
            return 0.0;
        }
        let per_node = total_bytes as f64 / num_nodes as f64;
        // Each node exchanges (n-1)/n of its share with peers.
        let cross = per_node * (num_nodes as f64 - 1.0) / num_nodes as f64;
        self.latency * (num_nodes as f64 - 1.0) + cross / self.bandwidth
    }

    /// Coordination cost to launch one stage of `num_partitions` tasks.
    pub fn stage_coordination_cost(&self, num_partitions: usize) -> f64 {
        self.stage_setup + self.per_partition_meta * num_partitions as f64
    }

    /// One-time job startup cost on a cluster of `num_nodes`.
    pub fn job_startup_cost(&self, num_nodes: usize) -> f64 {
        self.job_startup_fixed + self.job_startup_per_node * num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_bytes() {
        let n = NetworkModel::ec2_spark();
        let small = n.transfer_cost(1_000);
        let big = n.transfer_cost(1_000_000_000);
        assert!(big > small);
        assert!(big > 8.0, "1 GB over ~1 Gbit/s takes several seconds");
        assert_eq!(n.transfer_cost(0), 0.0);
    }

    #[test]
    fn broadcast_to_single_node_is_free() {
        let n = NetworkModel::ec2_spark();
        assert_eq!(n.broadcast_cost(1 << 20, 1), 0.0);
        assert!(n.broadcast_cost(1 << 20, 10) >= n.transfer_cost(1 << 20));
    }

    #[test]
    fn shuffle_improves_with_more_nodes() {
        let n = NetworkModel::ec2_spark();
        let four = n.shuffle_cost(1 << 30, 4);
        let ten = n.shuffle_cost(1 << 30, 10);
        assert!(ten < four, "per-node share shrinks with cluster size");
        assert_eq!(n.shuffle_cost(1 << 30, 1), 0.0);
    }

    #[test]
    fn spark_coordination_grows_with_partitions() {
        let n = NetworkModel::ec2_spark();
        assert!(n.stage_coordination_cost(1000) > n.stage_coordination_cost(10));
        let i = NetworkModel::ec2_impala();
        assert!(
            i.stage_coordination_cost(1000) < n.stage_coordination_cost(1000),
            "Impala's static planning has lower per-stage overheads"
        );
    }

    #[test]
    fn local_model_is_free() {
        let l = NetworkModel::local();
        assert_eq!(l.transfer_cost(1 << 30), 0.0);
        assert_eq!(l.broadcast_cost(1 << 30, 8), 0.0);
        assert_eq!(l.job_startup_cost(8), 0.0);
        assert_eq!(l.stage_coordination_cost(100), 0.0);
    }

    #[test]
    fn spark_jar_shipping_grows_with_nodes() {
        let n = NetworkModel::ec2_spark();
        assert!(n.job_startup_cost(10) > n.job_startup_cost(4));
        assert_eq!(NetworkModel::ec2_impala().job_startup_cost(10), 0.1);
    }
}
