//! Real parallel execution with per-task timing.
//!
//! This is where the join work actually happens. Items are processed on
//! `threads` OS threads under either dynamic (work-queue) or static
//! (pre-chunked) scheduling — mirroring the Spark-vs-OpenMP-static
//! contrast the paper analyses — and each item's wall-clock cost is
//! recorded so the [`crate::sim`] replay can scale the run to any
//! cluster size.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How items are handed to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Shared counter; each worker grabs the next unprocessed item.
    Dynamic,
    /// Contiguous chunks assigned up front (OpenMP `schedule(static)`).
    Static,
    /// Static assignment by a per-item locality hint (Impala's
    /// scan-range assignment, stood in for by the grid/STR partition of
    /// the data): item `i` is pre-assigned to worker `hint[i] % threads`.
    /// Items without a hint — or runs without any hints at all, such as
    /// [`run_tasks`] and plain [`run_morsels`] — fall back to static
    /// chunking. Hints are supplied via [`run_morsels_hinted`].
    StaticLocality,
}

/// Worker pre-assigned to item `i` of `n` under static chunking — the
/// exact inverse of the `[w*n/threads, (w+1)*n/threads)` chunk bounds
/// the static arms iterate, so hint fallback and plain static mode
/// agree on every item.
#[inline]
fn chunk_worker(i: usize, n: usize, threads: usize) -> usize {
    ((i + 1) * threads).div_ceil(n.max(1)).saturating_sub(1)
}

/// Worker pre-assigned to item `i` under [`ScheduleMode::StaticLocality`]:
/// the hinted worker when a hint exists, the static chunk otherwise.
#[inline]
fn hinted_worker(i: usize, n: usize, threads: usize, hints: &[usize]) -> usize {
    match hints.get(i) {
        Some(&h) => h % threads,
        None => chunk_worker(i, n, threads),
    }
}

/// Measured timing of one item.
#[derive(Debug, Clone, Copy)]
pub struct TaskTiming {
    /// Item index in the input order.
    pub index: usize,
    /// Worker thread that ran the item.
    pub worker: usize,
    /// Wall-clock seconds the item took.
    pub secs: f64,
}

/// The obs dispatch label for a schedule mode. Items are charged to the
/// *requested* mode even where the implementation degenerates (locality
/// without hints, the single-thread inline path), so counters are
/// identical across thread counts.
fn dispatch_mode(mode: ScheduleMode) -> obs::DispatchMode {
    match mode {
        ScheduleMode::Dynamic => obs::DispatchMode::Dynamic,
        ScheduleMode::Static => obs::DispatchMode::Static,
        ScheduleMode::StaticLocality => obs::DispatchMode::StaticLocality,
    }
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Runs `f` over `items` on `threads` threads, returning the results in
/// input order together with per-item timings.
///
/// The closure runs on multiple threads, hence `Sync`; results are
/// collected per worker and stitched back in order. Worker-side obs
/// counters are folded into the calling thread's cells; use
/// [`run_tasks_observed`] to receive them explicitly instead.
pub fn run_tasks<T, R, F>(
    items: Vec<T>,
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, timings, exec) = run_tasks_observed(items, threads, mode, f);
    obs::add_thread(&exec.worker_counters);
    (results, timings)
}

/// [`run_tasks`] returning an [`obs::ExecStats`]: the scoped workers'
/// counters (zero on the inline single-thread path, where counts land in
/// the calling thread's cells) plus per-worker busy/wait accounting.
pub fn run_tasks_observed<T, R, F>(
    items: Vec<T>,
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let dmode = dispatch_mode(mode);
    if n == 0 {
        return (Vec::new(), Vec::new(), obs::ExecStats::default());
    }
    // Single-threaded fast path keeps the measurement overhead obvious.
    if threads == 1 {
        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(n);
        let mut busy_ns: u64 = 0;
        for (index, item) in items.iter().enumerate() {
            let t0 = Instant::now();
            results.push(f(item));
            let elapsed = t0.elapsed();
            busy_ns = busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
            obs::morsel(dmode);
            timings.push(TaskTiming {
                index,
                worker: 0,
                secs: elapsed.as_secs_f64(),
            });
        }
        let exec = obs::ExecStats {
            worker_counters: obs::Counters::default(),
            workers: vec![obs::WorkerStats {
                worker: 0,
                items: n as u64,
                busy_ns,
                wait_ns: 0,
            }],
        };
        return (results, timings, exec);
    }

    let counter = AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    let mut per_worker: Vec<Vec<(usize, R, f64)>> = Vec::with_capacity(threads);
    let mut exec = obs::ExecStats::default();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let wall0 = Instant::now();
                let mut busy_ns: u64 = 0;
                let mut local: Vec<(usize, R, f64)> = Vec::with_capacity(n / threads + 1);
                match mode {
                    ScheduleMode::Dynamic => loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let r = f_ref(&items_ref[i]);
                        let elapsed = t0.elapsed();
                        busy_ns =
                            busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                        obs::morsel(dmode);
                        local.push((i, r, elapsed.as_secs_f64()));
                    },
                    // run_tasks carries no per-item hints, so locality
                    // degenerates to its static-chunking fallback.
                    ScheduleMode::Static | ScheduleMode::StaticLocality => {
                        let start = (w * n) / threads;
                        let end = ((w + 1) * n) / threads;
                        for (off, item) in items_ref[start..end].iter().enumerate() {
                            let t0 = Instant::now();
                            let r = f_ref(item);
                            let elapsed = t0.elapsed();
                            busy_ns = busy_ns
                                .saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                            obs::morsel(dmode);
                            local.push((start + off, r, elapsed.as_secs_f64()));
                        }
                    }
                }
                let wall_ns = elapsed_ns(wall0);
                let stats = obs::WorkerStats {
                    worker: w,
                    items: local.len() as u64,
                    busy_ns,
                    wait_ns: wall_ns.saturating_sub(busy_ns),
                };
                // Fresh scoped threads start with zeroed cells, so the
                // drain is exactly what this worker accumulated.
                (local, stats, obs::take_thread())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((local, stats, counters)) => {
                    per_worker.push(local);
                    exec.workers.push(stats);
                    exec.worker_counters = exec.worker_counters.plus(&counters);
                }
                // A worker panicking is a bug in the caller's closure;
                // surface it on the driver thread with the same message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Stitch results back into input order. Workers process disjoint
    // index sets covering 0..n, so sorting the tagged results restores
    // the original order without an Option-per-slot intermediate.
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for (w, local) in per_worker.into_iter().enumerate() {
        for (index, r, secs) in local {
            indexed.push((index, r));
            timings.push(TaskTiming {
                index,
                worker: w,
                secs,
            });
        }
    }
    timings.sort_by_key(|t| t.index);
    indexed.sort_by_key(|&(index, _)| index);
    let results = indexed.into_iter().map(|(_, r)| r).collect();
    (results, timings, exec)
}

/// Runs `f` over fixed-size morsels (slices of some larger input) on
/// `threads` threads, concatenating the per-morsel output segments back
/// in input order.
///
/// Unlike [`run_tasks`], the closure appends an arbitrary number of
/// results per morsel into a thread-local buffer; the driver records
/// each segment's length and stitches the buffers so the concatenated
/// output is byte-identical to running the morsels serially. Timings
/// are per morsel, indexed by morsel position.
pub fn run_morsels<T, R, F>(
    morsels: &[&[T]],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    run_morsels_hinted(morsels, &[], threads, mode, f)
}

/// [`run_morsels`] returning an [`obs::ExecStats`] (see
/// [`run_tasks_observed`] for the collection contract).
pub fn run_morsels_observed<T, R, F>(
    morsels: &[&[T]],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    run_morsels_hinted_observed(morsels, &[], threads, mode, f)
}

/// [`run_morsels`] with per-morsel locality hints.
///
/// `hints[i]` is morsel `i`'s preferred-worker key (a partition or
/// block id — any `usize`; it is taken modulo `threads`). Hints only
/// decide *who* runs a morsel under [`ScheduleMode::StaticLocality`];
/// output order and content are identical to every other mode. A
/// `hints` slice shorter than `morsels` (including empty) falls back to
/// static chunking for the uncovered tail.
pub fn run_morsels_hinted<T, R, F>(
    morsels: &[&[T]],
    hints: &[usize],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    let (out, timings, exec) = run_morsels_hinted_observed(morsels, hints, threads, mode, f);
    obs::add_thread(&exec.worker_counters);
    (out, timings)
}

/// [`run_morsels_hinted`] returning an [`obs::ExecStats`] (see
/// [`run_tasks_observed`] for the collection contract).
pub fn run_morsels_hinted_observed<T, R, F>(
    morsels: &[&[T]],
    hints: &[usize],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    let threads = threads.max(1);
    let n = morsels.len();
    let dmode = dispatch_mode(mode);
    if n == 0 {
        return (Vec::new(), Vec::new(), obs::ExecStats::default());
    }
    if threads == 1 {
        let mut out = Vec::new();
        let mut timings = Vec::with_capacity(n);
        let mut busy_ns: u64 = 0;
        for (index, m) in morsels.iter().enumerate() {
            let t0 = Instant::now();
            f(m, &mut out);
            let elapsed = t0.elapsed();
            busy_ns = busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
            obs::morsel(dmode);
            timings.push(TaskTiming {
                index,
                worker: 0,
                secs: elapsed.as_secs_f64(),
            });
        }
        let exec = obs::ExecStats {
            worker_counters: obs::Counters::default(),
            workers: vec![obs::WorkerStats {
                worker: 0,
                items: n as u64,
                busy_ns,
                wait_ns: 0,
            }],
        };
        return (out, timings, exec);
    }

    let counter = AtomicUsize::new(0);
    let f_ref = &f;
    // Each worker returns its output buffer plus, per morsel it ran,
    // `(morsel index, segment length, secs)`.
    type Segs = Vec<(usize, usize, f64)>;
    let mut per_worker: Vec<(Vec<R>, Segs)> = Vec::with_capacity(threads);
    let mut exec = obs::ExecStats::default();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let wall0 = Instant::now();
                let mut busy_ns: u64 = 0;
                let mut buf: Vec<R> = Vec::new();
                let mut segs: Segs = Vec::with_capacity(n / threads + 1);
                let mut run = |i: usize, m: &[T]| {
                    let before = buf.len();
                    let t0 = Instant::now();
                    f_ref(m, &mut buf);
                    let elapsed = t0.elapsed();
                    busy_ns =
                        busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                    obs::morsel(dmode);
                    segs.push((i, buf.len() - before, elapsed.as_secs_f64()));
                };
                match mode {
                    ScheduleMode::Dynamic => loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        run(i, morsels[i]);
                    },
                    ScheduleMode::Static => {
                        let start = (w * n) / threads;
                        let end = ((w + 1) * n) / threads;
                        for i in start..end {
                            run(i, morsels[i]);
                        }
                    }
                    // Pre-assigned by hint; indices stay strictly
                    // increasing per worker, which the stitch below
                    // relies on.
                    ScheduleMode::StaticLocality => {
                        for i in 0..n {
                            if hinted_worker(i, n, threads, hints) == w {
                                run(i, morsels[i]);
                            }
                        }
                    }
                }
                drop(run);
                let wall_ns = elapsed_ns(wall0);
                let stats = obs::WorkerStats {
                    worker: w,
                    items: segs.len() as u64,
                    busy_ns,
                    wait_ns: wall_ns.saturating_sub(busy_ns),
                };
                (buf, segs, stats, obs::take_thread())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((buf, segs, stats, counters)) => {
                    per_worker.push((buf, segs));
                    exec.workers.push(stats);
                    exec.worker_counters = exec.worker_counters.plus(&counters);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Stitch: a worker's morsel indices are strictly increasing under
    // both modes, so each buffer is already ordered internally; a merge
    // over `(morsel index → worker, segment length)` drains every
    // buffer front-to-back without cloning any element.
    let mut order: Vec<(usize, usize, usize)> = Vec::with_capacity(n); // (index, worker, len)
    let mut timings = Vec::with_capacity(n);
    for (w, (_, segs)) in per_worker.iter().enumerate() {
        for &(index, len, secs) in segs {
            order.push((index, w, len));
            timings.push(TaskTiming {
                index,
                worker: w,
                secs,
            });
        }
    }
    order.sort_unstable_by_key(|&(index, _, _)| index);
    timings.sort_by_key(|t| t.index);
    let total: usize = order.iter().map(|&(_, _, len)| len).sum();
    let mut iters: Vec<std::vec::IntoIter<R>> = per_worker
        .into_iter()
        .map(|(buf, _)| buf.into_iter())
        .collect();
    let mut out = Vec::with_capacity(total);
    for (_, w, len) in order {
        out.extend(iters[w].by_ref().take(len));
    }
    (out, timings, exec)
}

// ---------------------------------------------------------------------
// fault-tolerant execution: catch_unwind capture + bounded re-dispatch
// ---------------------------------------------------------------------

/// How many times a panicking item is re-dispatched before it is
/// reported as failed, and how long to back off between attempts.
///
/// `max_attempts` counts *total* attempts, so `RetryPolicy::none()`
/// (one attempt, no retry) reproduces fail-fast semantics and
/// `attempts(3)` allows two re-dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per item, including the first. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Sleep between attempts (a stand-in for task re-launch latency).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// One attempt, no backoff: a panic fails the item immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// `n` total attempts with no backoff.
    pub fn attempts(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.max(1),
            backoff: Duration::ZERO,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// One item that still had a panic in flight after every permitted
/// attempt. The panic payload is flattened to its message so failures
/// stay `Send + Clone` and printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Item index in the input order.
    pub index: usize,
    /// Attempts consumed (equals the policy's `max_attempts`).
    pub attempts: u32,
    /// The panic message of the final attempt.
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str().into()
    } else {
        "task panicked".into()
    }
}

/// Outcome of [`run_tasks_faulted`]: results in input order with
/// `None` holes where an item exhausted its attempts.
#[derive(Debug)]
pub struct FaultedTasks<R> {
    /// Per-item results in input order; `None` marks a failed item.
    pub results: Vec<Option<R>>,
    /// Items that exhausted every attempt, in index order.
    pub failures: Vec<TaskFailure>,
    /// Timings of successful items (covering all attempts, including
    /// failed ones that were retried).
    pub timings: Vec<TaskTiming>,
    /// Worker counters and busy/wait accounting.
    pub exec: obs::ExecStats,
}

impl<R> FaultedTasks<R> {
    /// True when every item completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwraps into plain results when nothing failed.
    pub fn into_results(self) -> Result<Vec<R>, Vec<TaskFailure>> {
        if self.failures.is_empty() {
            Ok(self.results.into_iter().flatten().collect())
        } else {
            Err(self.failures)
        }
    }
}

/// Outcome of [`run_morsels_faulted`]: the stitched output of every
/// *successful* morsel (failed morsels contribute nothing — their
/// partial output is rolled back, never leaked).
#[derive(Debug)]
pub struct FaultedMorsels<R> {
    /// Concatenated output of successful morsels, in input order.
    pub out: Vec<R>,
    /// Morsels that exhausted every attempt, in index order.
    pub failures: Vec<TaskFailure>,
    /// Timings of successful morsels.
    pub timings: Vec<TaskTiming>,
    /// Worker counters and busy/wait accounting.
    pub exec: obs::ExecStats,
}

impl<R> FaultedMorsels<R> {
    /// True when every morsel completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one item to completion or exhaustion under `policy`, capturing
/// panics with `catch_unwind`. Returns the result and the attempts
/// consumed. The closure receives the zero-based attempt number so a
/// deterministic injector can fail early attempts and pass later ones.
fn attempt_loop<R>(
    policy: RetryPolicy,
    mut body: impl FnMut(u32) -> R,
) -> (Result<R, String>, u32) {
    let max = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(|| body(attempt))) {
            Ok(r) => return (Ok(r), attempt + 1),
            Err(payload) => {
                attempt += 1;
                if attempt >= max {
                    return (Err(panic_message(payload.as_ref())), attempt);
                }
                obs::task_retry();
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff);
                }
            }
        }
    }
}

/// [`run_tasks`] with panic capture and bounded re-dispatch.
///
/// Each item runs under `catch_unwind`; a panicking attempt is retried
/// in place (bounded by `policy`) and an item that exhausts its
/// attempts becomes a `None` hole plus a [`TaskFailure`] — the driver
/// never unwinds. On an all-success run the results are bit-identical
/// to [`run_tasks`] at any thread count. The closure additionally
/// receives `(index, attempt)` so fault injectors can key decisions.
pub fn run_tasks_faulted<T, R, F>(
    items: &[T],
    threads: usize,
    mode: ScheduleMode,
    policy: RetryPolicy,
    f: F,
) -> FaultedTasks<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, u32, &T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let dmode = dispatch_mode(mode);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<TaskFailure> = Vec::new();
    let mut timings: Vec<TaskTiming> = Vec::with_capacity(n);
    let mut exec = obs::ExecStats::default();
    if n == 0 {
        return FaultedTasks {
            results,
            failures,
            timings,
            exec,
        };
    }

    // Per-item work shared by the inline and threaded paths.
    type Ran<R> = (usize, Result<R, (u32, String)>, f64);
    let run_one = |i: usize| -> Ran<R> {
        let t0 = Instant::now();
        let (outcome, attempts) = attempt_loop(policy, |attempt| f(i, attempt, &items[i]));
        obs::morsel(dmode);
        let secs = t0.elapsed().as_secs_f64();
        match outcome {
            Ok(r) => (i, Ok(r), secs),
            Err(message) => (i, Err((attempts, message)), secs),
        }
    };

    let mut place = |ran: Ran<R>, worker: usize| {
        let (index, outcome, secs) = ran;
        match outcome {
            Ok(r) => {
                results[index] = Some(r);
                timings.push(TaskTiming {
                    index,
                    worker,
                    secs,
                });
            }
            Err((attempts, message)) => failures.push(TaskFailure {
                index,
                attempts,
                message,
            }),
        }
    };

    if threads == 1 {
        let mut busy_ns: u64 = 0;
        for i in 0..n {
            let t0 = Instant::now();
            let ran = run_one(i);
            busy_ns = busy_ns.saturating_add(elapsed_ns(t0));
            place(ran, 0);
        }
        exec.workers.push(obs::WorkerStats {
            worker: 0,
            items: n as u64,
            busy_ns,
            wait_ns: 0,
        });
    } else {
        let counter = AtomicUsize::new(0);
        let run_ref = &run_one;
        let mut per_worker: Vec<Vec<Ran<R>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let counter = &counter;
                handles.push(scope.spawn(move || {
                    let wall0 = Instant::now();
                    let mut busy_ns: u64 = 0;
                    let mut local: Vec<Ran<R>> = Vec::with_capacity(n / threads + 1);
                    match mode {
                        ScheduleMode::Dynamic => loop {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t0 = Instant::now();
                            local.push(run_ref(i));
                            busy_ns = busy_ns.saturating_add(elapsed_ns(t0));
                        },
                        ScheduleMode::Static | ScheduleMode::StaticLocality => {
                            let start = (w * n) / threads;
                            let end = ((w + 1) * n) / threads;
                            for i in start..end {
                                let t0 = Instant::now();
                                local.push(run_ref(i));
                                busy_ns = busy_ns.saturating_add(elapsed_ns(t0));
                            }
                        }
                    }
                    let wall_ns = elapsed_ns(wall0);
                    let stats = obs::WorkerStats {
                        worker: w,
                        items: local.len() as u64,
                        busy_ns,
                        wait_ns: wall_ns.saturating_sub(busy_ns),
                    };
                    (local, stats, obs::take_thread())
                }));
            }
            for h in handles {
                match h.join() {
                    Ok((local, stats, counters)) => {
                        per_worker.push(local);
                        exec.workers.push(stats);
                        exec.worker_counters = exec.worker_counters.plus(&counters);
                    }
                    // Workers cannot unwind out of attempt_loop; a join
                    // error means the runtime itself failed.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        for (w, local) in per_worker.into_iter().enumerate() {
            for ran in local {
                place(ran, w);
            }
        }
    }
    drop(place);
    timings.sort_by_key(|t| t.index);
    failures.sort_by_key(|fl| fl.index);
    FaultedTasks {
        results,
        failures,
        timings,
        exec,
    }
}

/// [`run_morsels_hinted`] with panic capture and bounded re-dispatch.
///
/// A panicking attempt has its partial output rolled back (the buffer
/// is truncated to the pre-morsel length) before the morsel is retried
/// or reported failed, so failed attempts never leak rows and an
/// all-success run is bit-identical to the plain path at any thread
/// count. The closure receives `(index, attempt, morsel, out)`.
pub fn run_morsels_faulted<T, R, F>(
    morsels: &[&[T]],
    hints: &[usize],
    threads: usize,
    mode: ScheduleMode,
    policy: RetryPolicy,
    f: F,
) -> FaultedMorsels<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, u32, &[T], &mut Vec<R>) + Sync,
{
    let threads = threads.max(1);
    let n = morsels.len();
    let dmode = dispatch_mode(mode);
    if n == 0 {
        return FaultedMorsels {
            out: Vec::new(),
            failures: Vec::new(),
            timings: Vec::new(),
            exec: obs::ExecStats::default(),
        };
    }

    let f_ref = &f;
    // Per worker: output buffer, successful `(index, len, secs)`
    // segments, and failures.
    type Segs = Vec<(usize, usize, f64)>;
    type WorkerOut<R> = (Vec<R>, Segs, Vec<TaskFailure>);
    let worker_loop = |w: usize, pick: &dyn Fn(usize) -> bool, next: Option<&AtomicUsize>| {
        let mut buf: Vec<R> = Vec::new();
        let mut segs: Segs = Vec::with_capacity(n / threads + 1);
        let mut failures: Vec<TaskFailure> = Vec::new();
        let mut busy_ns: u64 = 0;
        let wall0 = Instant::now();
        let mut run = |i: usize| {
            let before = buf.len();
            let t0 = Instant::now();
            let (outcome, attempts) = attempt_loop(policy, |attempt| {
                // Roll back the previous attempt's partial output
                // before re-running, preserving the stitch contract.
                buf.truncate(before);
                f_ref(i, attempt, morsels[i], &mut buf);
            });
            let elapsed = t0.elapsed();
            busy_ns = busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
            obs::morsel(dmode);
            match outcome {
                Ok(()) => segs.push((i, buf.len() - before, elapsed.as_secs_f64())),
                Err(message) => {
                    buf.truncate(before);
                    failures.push(TaskFailure {
                        index: i,
                        attempts,
                        message,
                    });
                }
            }
        };
        match next {
            Some(counter) => loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                run(i);
            },
            None => {
                for i in 0..n {
                    if pick(i) {
                        run(i);
                    }
                }
            }
        }
        drop(run);
        let wall_ns = elapsed_ns(wall0);
        let stats = obs::WorkerStats {
            worker: w,
            items: segs.len() as u64 + failures.len() as u64,
            busy_ns,
            wait_ns: wall_ns.saturating_sub(busy_ns),
        };
        ((buf, segs, failures), stats)
    };

    let mut per_worker: Vec<WorkerOut<R>> = Vec::with_capacity(threads);
    let mut exec = obs::ExecStats::default();
    if threads == 1 {
        let (wout, stats) = worker_loop(0, &|_| true, None);
        per_worker.push(wout);
        exec.workers.push(stats);
    } else {
        let counter = AtomicUsize::new(0);
        let worker_ref = &worker_loop;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let counter = &counter;
                handles.push(scope.spawn(move || {
                    let (wout, stats) = match mode {
                        ScheduleMode::Dynamic => worker_ref(w, &|_| true, Some(counter)),
                        ScheduleMode::Static => worker_ref(
                            w,
                            &move |i| {
                                let start = (w * n) / threads;
                                let end = ((w + 1) * n) / threads;
                                i >= start && i < end
                            },
                            None,
                        ),
                        ScheduleMode::StaticLocality => {
                            worker_ref(w, &move |i| hinted_worker(i, n, threads, hints) == w, None)
                        }
                    };
                    (wout, stats, obs::take_thread())
                }));
            }
            for h in handles {
                match h.join() {
                    Ok((wout, stats, counters)) => {
                        per_worker.push(wout);
                        exec.workers.push(stats);
                        exec.worker_counters = exec.worker_counters.plus(&counters);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }

    // Stitch successful segments exactly like the plain path; failed
    // morsels recorded nothing, so they simply leave a gap.
    let mut order: Vec<(usize, usize, usize)> = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    let mut failures: Vec<TaskFailure> = Vec::new();
    for (w, (_, segs, fails)) in per_worker.iter().enumerate() {
        for &(index, len, secs) in segs {
            order.push((index, w, len));
            timings.push(TaskTiming {
                index,
                worker: w,
                secs,
            });
        }
        failures.extend(fails.iter().cloned());
    }
    order.sort_unstable_by_key(|&(index, _, _)| index);
    timings.sort_by_key(|t| t.index);
    failures.sort_by_key(|fl| fl.index);
    let total: usize = order.iter().map(|&(_, _, len)| len).sum();
    let mut iters: Vec<std::vec::IntoIter<R>> = per_worker
        .into_iter()
        .map(|(buf, _, _)| buf.into_iter())
        .collect();
    let mut out = Vec::with_capacity(total);
    for (_, w, len) in order {
        out.extend(iters[w].by_ref().take(len));
    }
    FaultedMorsels {
        out,
        failures,
        timings,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
            let (results, timings) = run_tasks(items.clone(), 4, mode, |&x| x * 2);
            assert_eq!(results, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(timings.len(), 1000);
            assert!(timings.iter().all(|t| t.secs >= 0.0));
            // Timings are in index order after stitching.
            assert!(timings.windows(2).all(|w| w[0].index < w[1].index));
        }
    }

    #[test]
    fn static_mode_assigns_contiguous_chunks() {
        let items: Vec<usize> = (0..100).collect();
        let (_, timings) = run_tasks(items, 4, ScheduleMode::Static, |&x| x);
        // Worker of item i must be i*4/100.
        for t in &timings {
            assert_eq!(t.worker, (t.index * 4) / 100);
        }
    }

    #[test]
    fn dynamic_mode_uses_multiple_workers() {
        let items: Vec<u64> = (0..400).collect();
        let (_, timings) = run_tasks(items, 4, ScheduleMode::Dynamic, |&x| {
            // Enough work per item that no single worker grabs everything.
            (0..2000).fold(x, |a, b| a.wrapping_add(b))
        });
        let workers: std::collections::HashSet<usize> = timings.iter().map(|t| t.worker).collect();
        assert!(workers.len() > 1, "expected >1 worker, got {workers:?}");
    }

    #[test]
    fn empty_and_single_item() {
        let (r, t) = run_tasks(Vec::<u8>::new(), 4, ScheduleMode::Dynamic, |&x| x);
        assert!(r.is_empty() && t.is_empty());
        let (r, t) = run_tasks(vec![7u8], 8, ScheduleMode::Static, |&x| x + 1);
        assert_eq!(r, vec![8]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn one_thread_runs_inline() {
        let (r, t) = run_tasks(vec![1, 2, 3], 1, ScheduleMode::Dynamic, |&x| x * 10);
        assert_eq!(r, vec![10, 20, 30]);
        assert!(t.iter().all(|x| x.worker == 0));
    }

    fn chunked(items: &[u64], size: usize) -> Vec<&[u64]> {
        items.chunks(size).collect()
    }

    #[test]
    fn morsels_concatenate_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().flat_map(|&x| [x * 2, x * 2 + 1]).collect();
        for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
            for threads in [1, 3, 8] {
                for size in [1, 7, 128] {
                    let morsels = chunked(&items, size);
                    let (out, timings) = run_morsels(&morsels, threads, mode, |m, buf| {
                        for &x in m {
                            buf.push(x * 2);
                            buf.push(x * 2 + 1);
                        }
                    });
                    assert_eq!(out, serial, "mode={mode:?} threads={threads} size={size}");
                    assert_eq!(timings.len(), morsels.len());
                    assert!(timings.windows(2).all(|w| w[0].index < w[1].index));
                }
            }
        }
    }

    #[test]
    fn morsels_with_uneven_output_counts() {
        // Each morsel emits a different number of results (including 0).
        let items: Vec<u64> = (0..101).collect();
        let morsels = chunked(&items, 13);
        let (out, _) = run_morsels(&morsels, 4, ScheduleMode::Dynamic, |m, buf| {
            for &x in m {
                for _ in 0..(x % 3) {
                    buf.push(x);
                }
            }
        });
        let serial: Vec<u64> = items
            .iter()
            .flat_map(|&x| std::iter::repeat(x).take((x % 3) as usize))
            .collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn morsels_empty_input() {
        let (out, t) = run_morsels::<u8, u8, _>(&[], 4, ScheduleMode::Static, |_, _| {});
        assert!(out.is_empty() && t.is_empty());
    }

    #[test]
    fn locality_hints_pin_morsels_to_workers() {
        let items: Vec<u64> = (0..120).collect();
        let morsels = chunked(&items, 1);
        // Hint pattern: morsel i prefers worker (i % 3) of 4.
        let hints: Vec<usize> = (0..morsels.len()).map(|i| i % 3).collect();
        let (out, timings) = run_morsels_hinted(
            &morsels,
            &hints,
            4,
            ScheduleMode::StaticLocality,
            |m, buf| buf.extend_from_slice(m),
        );
        assert_eq!(out, items, "locality must not change output order");
        for t in &timings {
            assert_eq!(t.worker, hints[t.index] % 4, "morsel {} misplaced", t.index);
        }
    }

    #[test]
    fn locality_without_hints_falls_back_to_static_chunks() {
        let items: Vec<u64> = (0..103).collect();
        let morsels = chunked(&items, 1);
        let n = morsels.len();
        let (out, timings) = run_morsels(&morsels, 4, ScheduleMode::StaticLocality, |m, buf| {
            buf.extend_from_slice(m)
        });
        assert_eq!(out, items);
        // Fallback worker must match the static chunk that owns index i.
        for t in &timings {
            let w = t.worker;
            assert!(
                t.index >= (w * n) / 4 && t.index < ((w + 1) * n) / 4,
                "index {} outside worker {w}'s static chunk",
                t.index
            );
        }
    }

    #[test]
    fn partial_hints_cover_prefix_rest_chunked() {
        let items: Vec<u64> = (0..60).collect();
        let morsels = chunked(&items, 2);
        let hints = vec![1usize; 10]; // only the first 10 morsels hinted
        let (out, timings) = run_morsels_hinted(
            &morsels,
            &hints,
            3,
            ScheduleMode::StaticLocality,
            |m, buf| buf.extend_from_slice(m),
        );
        assert_eq!(out, items);
        for t in timings.iter().filter(|t| t.index < 10) {
            assert_eq!(t.worker, 1);
        }
    }

    #[test]
    fn locality_output_identical_across_modes() {
        let items: Vec<u64> = (0..500).collect();
        let morsels = chunked(&items, 7);
        let hints: Vec<usize> = (0..morsels.len()).map(|i| (i * 13) % 5).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 2, 5, 8] {
            let (out, _) = run_morsels_hinted(
                &morsels,
                &hints,
                threads,
                ScheduleMode::StaticLocality,
                |m, buf| buf.extend(m.iter().map(|&x| x * 3)),
            );
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    /// Runs `f` with panic output suppressed — expected injected panics
    /// would otherwise spam the test log through the default hook.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn faulted_tasks_without_faults_match_plain() {
        let items: Vec<u64> = (0..300).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for mode in [
            ScheduleMode::Dynamic,
            ScheduleMode::Static,
            ScheduleMode::StaticLocality,
        ] {
            for threads in [1, 2, 7] {
                let run =
                    run_tasks_faulted(&items, threads, mode, RetryPolicy::none(), |_, _, &x| x * 3);
                assert!(run.all_ok());
                assert_eq!(run.into_results().ok(), Some(expected.clone()));
            }
        }
    }

    #[test]
    fn faulted_tasks_retry_recovers_and_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for threads in [1, 4] {
            let run = quiet_panics(|| {
                run_tasks_faulted(
                    &items,
                    threads,
                    ScheduleMode::Dynamic,
                    RetryPolicy::attempts(2),
                    |i, attempt, &x| {
                        // Every third item dies on its first attempt.
                        assert!(attempt < 2);
                        if i % 3 == 0 && attempt == 0 {
                            std::panic::panic_any(format!("injected at {i}"));
                        }
                        x + 1
                    },
                )
            });
            assert!(run.all_ok(), "threads={threads}");
            assert_eq!(run.into_results().ok(), Some(expected.clone()));
        }
    }

    #[test]
    fn faulted_tasks_exhausted_attempts_reported() {
        let items: Vec<u64> = (0..50).collect();
        let run = quiet_panics(|| {
            run_tasks_faulted(
                &items,
                4,
                ScheduleMode::Static,
                RetryPolicy::attempts(3),
                |i, _, &x| {
                    if i == 17 {
                        std::panic::panic_any("always dies".to_string());
                    }
                    x
                },
            )
        });
        assert!(!run.all_ok());
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].index, 17);
        assert_eq!(run.failures[0].attempts, 3);
        assert_eq!(run.failures[0].message, "always dies");
        assert!(run.results[17].is_none());
        assert!(run
            .results
            .iter()
            .enumerate()
            .all(|(i, r)| { i == 17 || r == &Some(i as u64) }));
    }

    #[test]
    fn faulted_morsels_roll_back_partial_output() {
        let items: Vec<u64> = (0..400).collect();
        let morsels = chunked(&items, 16);
        let serial: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        for threads in [1, 2, 7] {
            let run = quiet_panics(|| {
                run_morsels_faulted(
                    &morsels,
                    &[],
                    threads,
                    ScheduleMode::Dynamic,
                    RetryPolicy::attempts(2),
                    |i, attempt, m, buf| {
                        for &x in m {
                            buf.push(x * 2);
                        }
                        // Panic *after* appending output: recovery must
                        // discard the partial segment before retrying.
                        if i % 4 == 1 && attempt == 0 {
                            std::panic::panic_any(format!("mid-morsel {i}"));
                        }
                    },
                )
            });
            assert!(run.all_ok(), "threads={threads}");
            assert_eq!(run.out, serial, "threads={threads}");
        }
    }

    #[test]
    fn faulted_morsels_failed_morsel_leaks_nothing() {
        let items: Vec<u64> = (0..100).collect();
        let morsels = chunked(&items, 10);
        let run = quiet_panics(|| {
            run_morsels_faulted(
                &morsels,
                &[],
                3,
                ScheduleMode::Static,
                RetryPolicy::none(),
                |i, _, m, buf| {
                    buf.extend_from_slice(m);
                    if i == 5 {
                        std::panic::panic_any("fragment lost".to_string());
                    }
                },
            )
        });
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].index, 5);
        // Output is every morsel except the failed one, still in order.
        let expected: Vec<u64> = items
            .iter()
            .copied()
            .filter(|&x| !(50..60).contains(&x))
            .collect();
        assert_eq!(run.out, expected);
    }

    #[test]
    fn morsels_static_assigns_contiguous_chunks() {
        let items: Vec<u64> = (0..100).collect();
        let morsels = chunked(&items, 1);
        let (_, timings) = run_morsels(&morsels, 4, ScheduleMode::Static, |m, buf| {
            buf.extend_from_slice(m);
        });
        for t in &timings {
            assert_eq!(t.worker, (t.index * 4) / 100);
        }
    }
}
