//! Real parallel execution with per-task timing.
//!
//! This is where the join work actually happens. Items are processed on
//! `threads` OS threads under either dynamic (work-queue) or static
//! (pre-chunked) scheduling — mirroring the Spark-vs-OpenMP-static
//! contrast the paper analyses — and each item's wall-clock cost is
//! recorded so the [`crate::sim`] replay can scale the run to any
//! cluster size.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// How items are handed to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Shared counter; each worker grabs the next unprocessed item.
    Dynamic,
    /// Contiguous chunks assigned up front (OpenMP `schedule(static)`).
    Static,
    /// Static assignment by a per-item locality hint (Impala's
    /// scan-range assignment, stood in for by the grid/STR partition of
    /// the data): item `i` is pre-assigned to worker `hint[i] % threads`.
    /// Items without a hint — or runs without any hints at all, such as
    /// [`run_tasks`] and plain [`run_morsels`] — fall back to static
    /// chunking. Hints are supplied via [`run_morsels_hinted`].
    StaticLocality,
}

/// Worker pre-assigned to item `i` of `n` under static chunking — the
/// exact inverse of the `[w*n/threads, (w+1)*n/threads)` chunk bounds
/// the static arms iterate, so hint fallback and plain static mode
/// agree on every item.
#[inline]
fn chunk_worker(i: usize, n: usize, threads: usize) -> usize {
    ((i + 1) * threads).div_ceil(n.max(1)).saturating_sub(1)
}

/// Worker pre-assigned to item `i` under [`ScheduleMode::StaticLocality`]:
/// the hinted worker when a hint exists, the static chunk otherwise.
#[inline]
fn hinted_worker(i: usize, n: usize, threads: usize, hints: &[usize]) -> usize {
    match hints.get(i) {
        Some(&h) => h % threads,
        None => chunk_worker(i, n, threads),
    }
}

/// Measured timing of one item.
#[derive(Debug, Clone, Copy)]
pub struct TaskTiming {
    /// Item index in the input order.
    pub index: usize,
    /// Worker thread that ran the item.
    pub worker: usize,
    /// Wall-clock seconds the item took.
    pub secs: f64,
}

/// The obs dispatch label for a schedule mode. Items are charged to the
/// *requested* mode even where the implementation degenerates (locality
/// without hints, the single-thread inline path), so counters are
/// identical across thread counts.
fn dispatch_mode(mode: ScheduleMode) -> obs::DispatchMode {
    match mode {
        ScheduleMode::Dynamic => obs::DispatchMode::Dynamic,
        ScheduleMode::Static => obs::DispatchMode::Static,
        ScheduleMode::StaticLocality => obs::DispatchMode::StaticLocality,
    }
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Runs `f` over `items` on `threads` threads, returning the results in
/// input order together with per-item timings.
///
/// The closure runs on multiple threads, hence `Sync`; results are
/// collected per worker and stitched back in order. Worker-side obs
/// counters are folded into the calling thread's cells; use
/// [`run_tasks_observed`] to receive them explicitly instead.
pub fn run_tasks<T, R, F>(
    items: Vec<T>,
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, timings, exec) = run_tasks_observed(items, threads, mode, f);
    obs::add_thread(&exec.worker_counters);
    (results, timings)
}

/// [`run_tasks`] returning an [`obs::ExecStats`]: the scoped workers'
/// counters (zero on the inline single-thread path, where counts land in
/// the calling thread's cells) plus per-worker busy/wait accounting.
pub fn run_tasks_observed<T, R, F>(
    items: Vec<T>,
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let dmode = dispatch_mode(mode);
    if n == 0 {
        return (Vec::new(), Vec::new(), obs::ExecStats::default());
    }
    // Single-threaded fast path keeps the measurement overhead obvious.
    if threads == 1 {
        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(n);
        let mut busy_ns: u64 = 0;
        for (index, item) in items.iter().enumerate() {
            let t0 = Instant::now();
            results.push(f(item));
            let elapsed = t0.elapsed();
            busy_ns = busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
            obs::morsel(dmode);
            timings.push(TaskTiming {
                index,
                worker: 0,
                secs: elapsed.as_secs_f64(),
            });
        }
        let exec = obs::ExecStats {
            worker_counters: obs::Counters::default(),
            workers: vec![obs::WorkerStats {
                worker: 0,
                items: n as u64,
                busy_ns,
                wait_ns: 0,
            }],
        };
        return (results, timings, exec);
    }

    let counter = AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    let mut per_worker: Vec<Vec<(usize, R, f64)>> = Vec::with_capacity(threads);
    let mut exec = obs::ExecStats::default();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let wall0 = Instant::now();
                let mut busy_ns: u64 = 0;
                let mut local: Vec<(usize, R, f64)> = Vec::with_capacity(n / threads + 1);
                match mode {
                    ScheduleMode::Dynamic => loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let r = f_ref(&items_ref[i]);
                        let elapsed = t0.elapsed();
                        busy_ns =
                            busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                        obs::morsel(dmode);
                        local.push((i, r, elapsed.as_secs_f64()));
                    },
                    // run_tasks carries no per-item hints, so locality
                    // degenerates to its static-chunking fallback.
                    ScheduleMode::Static | ScheduleMode::StaticLocality => {
                        let start = (w * n) / threads;
                        let end = ((w + 1) * n) / threads;
                        for (off, item) in items_ref[start..end].iter().enumerate() {
                            let t0 = Instant::now();
                            let r = f_ref(item);
                            let elapsed = t0.elapsed();
                            busy_ns = busy_ns
                                .saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                            obs::morsel(dmode);
                            local.push((start + off, r, elapsed.as_secs_f64()));
                        }
                    }
                }
                let wall_ns = elapsed_ns(wall0);
                let stats = obs::WorkerStats {
                    worker: w,
                    items: local.len() as u64,
                    busy_ns,
                    wait_ns: wall_ns.saturating_sub(busy_ns),
                };
                // Fresh scoped threads start with zeroed cells, so the
                // drain is exactly what this worker accumulated.
                (local, stats, obs::take_thread())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((local, stats, counters)) => {
                    per_worker.push(local);
                    exec.workers.push(stats);
                    exec.worker_counters = exec.worker_counters.plus(&counters);
                }
                // A worker panicking is a bug in the caller's closure;
                // surface it on the driver thread with the same message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Stitch results back into input order. Workers process disjoint
    // index sets covering 0..n, so sorting the tagged results restores
    // the original order without an Option-per-slot intermediate.
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for (w, local) in per_worker.into_iter().enumerate() {
        for (index, r, secs) in local {
            indexed.push((index, r));
            timings.push(TaskTiming {
                index,
                worker: w,
                secs,
            });
        }
    }
    timings.sort_by_key(|t| t.index);
    indexed.sort_by_key(|&(index, _)| index);
    let results = indexed.into_iter().map(|(_, r)| r).collect();
    (results, timings, exec)
}

/// Runs `f` over fixed-size morsels (slices of some larger input) on
/// `threads` threads, concatenating the per-morsel output segments back
/// in input order.
///
/// Unlike [`run_tasks`], the closure appends an arbitrary number of
/// results per morsel into a thread-local buffer; the driver records
/// each segment's length and stitches the buffers so the concatenated
/// output is byte-identical to running the morsels serially. Timings
/// are per morsel, indexed by morsel position.
pub fn run_morsels<T, R, F>(
    morsels: &[&[T]],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    run_morsels_hinted(morsels, &[], threads, mode, f)
}

/// [`run_morsels`] returning an [`obs::ExecStats`] (see
/// [`run_tasks_observed`] for the collection contract).
pub fn run_morsels_observed<T, R, F>(
    morsels: &[&[T]],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    run_morsels_hinted_observed(morsels, &[], threads, mode, f)
}

/// [`run_morsels`] with per-morsel locality hints.
///
/// `hints[i]` is morsel `i`'s preferred-worker key (a partition or
/// block id — any `usize`; it is taken modulo `threads`). Hints only
/// decide *who* runs a morsel under [`ScheduleMode::StaticLocality`];
/// output order and content are identical to every other mode. A
/// `hints` slice shorter than `morsels` (including empty) falls back to
/// static chunking for the uncovered tail.
pub fn run_morsels_hinted<T, R, F>(
    morsels: &[&[T]],
    hints: &[usize],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    let (out, timings, exec) = run_morsels_hinted_observed(morsels, hints, threads, mode, f);
    obs::add_thread(&exec.worker_counters);
    (out, timings)
}

/// [`run_morsels_hinted`] returning an [`obs::ExecStats`] (see
/// [`run_tasks_observed`] for the collection contract).
pub fn run_morsels_hinted_observed<T, R, F>(
    morsels: &[&[T]],
    hints: &[usize],
    threads: usize,
    mode: ScheduleMode,
    f: F,
) -> (Vec<R>, Vec<TaskTiming>, obs::ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    let threads = threads.max(1);
    let n = morsels.len();
    let dmode = dispatch_mode(mode);
    if n == 0 {
        return (Vec::new(), Vec::new(), obs::ExecStats::default());
    }
    if threads == 1 {
        let mut out = Vec::new();
        let mut timings = Vec::with_capacity(n);
        let mut busy_ns: u64 = 0;
        for (index, m) in morsels.iter().enumerate() {
            let t0 = Instant::now();
            f(m, &mut out);
            let elapsed = t0.elapsed();
            busy_ns = busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
            obs::morsel(dmode);
            timings.push(TaskTiming {
                index,
                worker: 0,
                secs: elapsed.as_secs_f64(),
            });
        }
        let exec = obs::ExecStats {
            worker_counters: obs::Counters::default(),
            workers: vec![obs::WorkerStats {
                worker: 0,
                items: n as u64,
                busy_ns,
                wait_ns: 0,
            }],
        };
        return (out, timings, exec);
    }

    let counter = AtomicUsize::new(0);
    let f_ref = &f;
    // Each worker returns its output buffer plus, per morsel it ran,
    // `(morsel index, segment length, secs)`.
    type Segs = Vec<(usize, usize, f64)>;
    let mut per_worker: Vec<(Vec<R>, Segs)> = Vec::with_capacity(threads);
    let mut exec = obs::ExecStats::default();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let wall0 = Instant::now();
                let mut busy_ns: u64 = 0;
                let mut buf: Vec<R> = Vec::new();
                let mut segs: Segs = Vec::with_capacity(n / threads + 1);
                let mut run = |i: usize, m: &[T]| {
                    let before = buf.len();
                    let t0 = Instant::now();
                    f_ref(m, &mut buf);
                    let elapsed = t0.elapsed();
                    busy_ns =
                        busy_ns.saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                    obs::morsel(dmode);
                    segs.push((i, buf.len() - before, elapsed.as_secs_f64()));
                };
                match mode {
                    ScheduleMode::Dynamic => loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        run(i, morsels[i]);
                    },
                    ScheduleMode::Static => {
                        let start = (w * n) / threads;
                        let end = ((w + 1) * n) / threads;
                        for i in start..end {
                            run(i, morsels[i]);
                        }
                    }
                    // Pre-assigned by hint; indices stay strictly
                    // increasing per worker, which the stitch below
                    // relies on.
                    ScheduleMode::StaticLocality => {
                        for i in 0..n {
                            if hinted_worker(i, n, threads, hints) == w {
                                run(i, morsels[i]);
                            }
                        }
                    }
                }
                drop(run);
                let wall_ns = elapsed_ns(wall0);
                let stats = obs::WorkerStats {
                    worker: w,
                    items: segs.len() as u64,
                    busy_ns,
                    wait_ns: wall_ns.saturating_sub(busy_ns),
                };
                (buf, segs, stats, obs::take_thread())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((buf, segs, stats, counters)) => {
                    per_worker.push((buf, segs));
                    exec.workers.push(stats);
                    exec.worker_counters = exec.worker_counters.plus(&counters);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Stitch: a worker's morsel indices are strictly increasing under
    // both modes, so each buffer is already ordered internally; a merge
    // over `(morsel index → worker, segment length)` drains every
    // buffer front-to-back without cloning any element.
    let mut order: Vec<(usize, usize, usize)> = Vec::with_capacity(n); // (index, worker, len)
    let mut timings = Vec::with_capacity(n);
    for (w, (_, segs)) in per_worker.iter().enumerate() {
        for &(index, len, secs) in segs {
            order.push((index, w, len));
            timings.push(TaskTiming {
                index,
                worker: w,
                secs,
            });
        }
    }
    order.sort_unstable_by_key(|&(index, _, _)| index);
    timings.sort_by_key(|t| t.index);
    let total: usize = order.iter().map(|&(_, _, len)| len).sum();
    let mut iters: Vec<std::vec::IntoIter<R>> = per_worker
        .into_iter()
        .map(|(buf, _)| buf.into_iter())
        .collect();
    let mut out = Vec::with_capacity(total);
    for (_, w, len) in order {
        out.extend(iters[w].by_ref().take(len));
    }
    (out, timings, exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
            let (results, timings) = run_tasks(items.clone(), 4, mode, |&x| x * 2);
            assert_eq!(results, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(timings.len(), 1000);
            assert!(timings.iter().all(|t| t.secs >= 0.0));
            // Timings are in index order after stitching.
            assert!(timings.windows(2).all(|w| w[0].index < w[1].index));
        }
    }

    #[test]
    fn static_mode_assigns_contiguous_chunks() {
        let items: Vec<usize> = (0..100).collect();
        let (_, timings) = run_tasks(items, 4, ScheduleMode::Static, |&x| x);
        // Worker of item i must be i*4/100.
        for t in &timings {
            assert_eq!(t.worker, (t.index * 4) / 100);
        }
    }

    #[test]
    fn dynamic_mode_uses_multiple_workers() {
        let items: Vec<u64> = (0..400).collect();
        let (_, timings) = run_tasks(items, 4, ScheduleMode::Dynamic, |&x| {
            // Enough work per item that no single worker grabs everything.
            (0..2000).fold(x, |a, b| a.wrapping_add(b))
        });
        let workers: std::collections::HashSet<usize> = timings.iter().map(|t| t.worker).collect();
        assert!(workers.len() > 1, "expected >1 worker, got {workers:?}");
    }

    #[test]
    fn empty_and_single_item() {
        let (r, t) = run_tasks(Vec::<u8>::new(), 4, ScheduleMode::Dynamic, |&x| x);
        assert!(r.is_empty() && t.is_empty());
        let (r, t) = run_tasks(vec![7u8], 8, ScheduleMode::Static, |&x| x + 1);
        assert_eq!(r, vec![8]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn one_thread_runs_inline() {
        let (r, t) = run_tasks(vec![1, 2, 3], 1, ScheduleMode::Dynamic, |&x| x * 10);
        assert_eq!(r, vec![10, 20, 30]);
        assert!(t.iter().all(|x| x.worker == 0));
    }

    fn chunked(items: &[u64], size: usize) -> Vec<&[u64]> {
        items.chunks(size).collect()
    }

    #[test]
    fn morsels_concatenate_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().flat_map(|&x| [x * 2, x * 2 + 1]).collect();
        for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
            for threads in [1, 3, 8] {
                for size in [1, 7, 128] {
                    let morsels = chunked(&items, size);
                    let (out, timings) = run_morsels(&morsels, threads, mode, |m, buf| {
                        for &x in m {
                            buf.push(x * 2);
                            buf.push(x * 2 + 1);
                        }
                    });
                    assert_eq!(out, serial, "mode={mode:?} threads={threads} size={size}");
                    assert_eq!(timings.len(), morsels.len());
                    assert!(timings.windows(2).all(|w| w[0].index < w[1].index));
                }
            }
        }
    }

    #[test]
    fn morsels_with_uneven_output_counts() {
        // Each morsel emits a different number of results (including 0).
        let items: Vec<u64> = (0..101).collect();
        let morsels = chunked(&items, 13);
        let (out, _) = run_morsels(&morsels, 4, ScheduleMode::Dynamic, |m, buf| {
            for &x in m {
                for _ in 0..(x % 3) {
                    buf.push(x);
                }
            }
        });
        let serial: Vec<u64> = items
            .iter()
            .flat_map(|&x| std::iter::repeat(x).take((x % 3) as usize))
            .collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn morsels_empty_input() {
        let (out, t) = run_morsels::<u8, u8, _>(&[], 4, ScheduleMode::Static, |_, _| {});
        assert!(out.is_empty() && t.is_empty());
    }

    #[test]
    fn locality_hints_pin_morsels_to_workers() {
        let items: Vec<u64> = (0..120).collect();
        let morsels = chunked(&items, 1);
        // Hint pattern: morsel i prefers worker (i % 3) of 4.
        let hints: Vec<usize> = (0..morsels.len()).map(|i| i % 3).collect();
        let (out, timings) = run_morsels_hinted(
            &morsels,
            &hints,
            4,
            ScheduleMode::StaticLocality,
            |m, buf| buf.extend_from_slice(m),
        );
        assert_eq!(out, items, "locality must not change output order");
        for t in &timings {
            assert_eq!(t.worker, hints[t.index] % 4, "morsel {} misplaced", t.index);
        }
    }

    #[test]
    fn locality_without_hints_falls_back_to_static_chunks() {
        let items: Vec<u64> = (0..103).collect();
        let morsels = chunked(&items, 1);
        let n = morsels.len();
        let (out, timings) = run_morsels(&morsels, 4, ScheduleMode::StaticLocality, |m, buf| {
            buf.extend_from_slice(m)
        });
        assert_eq!(out, items);
        // Fallback worker must match the static chunk that owns index i.
        for t in &timings {
            let w = t.worker;
            assert!(
                t.index >= (w * n) / 4 && t.index < ((w + 1) * n) / 4,
                "index {} outside worker {w}'s static chunk",
                t.index
            );
        }
    }

    #[test]
    fn partial_hints_cover_prefix_rest_chunked() {
        let items: Vec<u64> = (0..60).collect();
        let morsels = chunked(&items, 2);
        let hints = vec![1usize; 10]; // only the first 10 morsels hinted
        let (out, timings) = run_morsels_hinted(
            &morsels,
            &hints,
            3,
            ScheduleMode::StaticLocality,
            |m, buf| buf.extend_from_slice(m),
        );
        assert_eq!(out, items);
        for t in timings.iter().filter(|t| t.index < 10) {
            assert_eq!(t.worker, 1);
        }
    }

    #[test]
    fn locality_output_identical_across_modes() {
        let items: Vec<u64> = (0..500).collect();
        let morsels = chunked(&items, 7);
        let hints: Vec<usize> = (0..morsels.len()).map(|i| (i * 13) % 5).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 2, 5, 8] {
            let (out, _) = run_morsels_hinted(
                &morsels,
                &hints,
                threads,
                ScheduleMode::StaticLocality,
                |m, buf| buf.extend(m.iter().map(|&x| x * 3)),
            );
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn morsels_static_assigns_contiguous_chunks() {
        let items: Vec<u64> = (0..100).collect();
        let morsels = chunked(&items, 1);
        let (_, timings) = run_morsels(&morsels, 4, ScheduleMode::Static, |m, buf| {
            buf.extend_from_slice(m);
        });
        for t in &timings {
            assert_eq!(t.worker, (t.index * 4) / 100);
        }
    }
}
