//! Discrete-event replay of a task set on a simulated cluster.
//!
//! Tasks carry *measured* CPU costs (from [`crate::pool`]); the
//! simulator replays them under a scheduling policy and reports the
//! makespan and per-node utilisation. This is how the workspace turns
//! one local run into the paper's 4/6/8/10-node scalability curves.

use crate::topology::ClusterSpec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// CPU seconds the task takes on one core (measured, not guessed).
    pub cost: f64,
    /// Preferred node (HDFS block locality), if any.
    pub locality: Option<usize>,
}

impl TaskSpec {
    /// A task with no locality preference.
    pub fn of_cost(cost: f64) -> TaskSpec {
        TaskSpec {
            cost,
            locality: None,
        }
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Spark-style dynamic scheduling: one global FIFO queue; any free
    /// core anywhere pulls the next task. Naturally load-balancing.
    Dynamic,
    /// Impala/OpenMP-style static scheduling: tasks are pre-assigned in
    /// contiguous chunks to nodes, and within a node in contiguous
    /// chunks to cores, before execution starts. No work ever moves,
    /// so skewed task costs translate directly into imbalance.
    StaticChunked,
    /// Static assignment by data locality: each task runs on the node
    /// holding its block (Impala's scan-range assignment); round-robin
    /// for tasks without a locality hint. Within a node, cores are
    /// filled with static chunking.
    StaticLocality,
}

/// Result of a simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock seconds until the last task finishes.
    pub makespan: f64,
    /// Busy seconds per node (sum over its cores).
    pub node_busy: Vec<f64>,
    /// Number of tasks each node executed.
    pub node_tasks: Vec<usize>,
    /// Total CPU seconds across all tasks.
    pub total_work: f64,
    /// `total_work / (makespan × total_cores)` — 1.0 is perfect.
    pub utilisation: f64,
}

impl SimReport {
    /// Ratio of the busiest node's work to the average — 1.0 is
    /// perfectly balanced. The paper observes "some Impala instances
    /// take much longer to complete the spatial joins than others".
    pub fn imbalance(&self) -> f64 {
        let max = self.node_busy.iter().cloned().fold(0.0, f64::max);
        let avg = self.node_busy.iter().sum::<f64>() / self.node_busy.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

/// Replays `tasks` on `spec` under `scheduler`.
pub fn simulate(tasks: &[TaskSpec], spec: &ClusterSpec, scheduler: Scheduler) -> SimReport {
    // A zero-node or zero-core spec can run nothing: report the
    // degenerate shape instead of underflowing the static chunking
    // arithmetic (mirrors `simulate_dynamic`'s empty-heap `break`).
    if spec.num_nodes == 0 || spec.cores_per_node == 0 {
        return finish_report(
            tasks,
            spec,
            0.0,
            vec![0.0; spec.num_nodes],
            vec![0; spec.num_nodes],
        );
    }
    match scheduler {
        Scheduler::Dynamic => simulate_dynamic(tasks, spec),
        Scheduler::StaticChunked => {
            let assignment = chunked_assignment(tasks.len(), spec.num_nodes);
            simulate_static(tasks, spec, &assignment)
        }
        Scheduler::StaticLocality => {
            let assignment: Vec<usize> = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| t.locality.unwrap_or(i % spec.num_nodes) % spec.num_nodes)
                .collect();
            simulate_static(tasks, spec, &assignment)
        }
    }
}

/// Impala-style scan-range assignment: maps each task's partition /
/// block tag to a node, placing whole partitions (largest first) on
/// the node with the fewest assigned tasks — the simple-scheduler's
/// balance-bytes-per-node rule. Tasks sharing a tag always land on the
/// same node (that is the locality), but *which* node a partition gets
/// is chosen for load balance, unlike a bare `tag % num_nodes`.
///
/// Feed the result into [`TaskSpec::locality`] before a
/// [`Scheduler::StaticLocality`] replay. Returns an empty vec for a
/// zero-node spec.
pub fn scan_range_assignment(tags: &[usize], num_nodes: usize) -> Vec<usize> {
    if num_nodes == 0 {
        return Vec::new();
    }
    // Count tasks per distinct tag, keeping first-seen order stable.
    let mut order: Vec<usize> = Vec::new();
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &t in tags {
        if *counts.entry(t).and_modify(|c| *c += 1).or_insert(1) == 1 {
            order.push(t);
        }
    }
    // Largest partitions first; ties by first-seen order (stable and
    // deterministic across runs).
    let mut ranked: Vec<usize> = order.clone();
    ranked.sort_by_key(|t| std::cmp::Reverse(counts[t]));
    let mut node_load = vec![0usize; num_nodes];
    let mut node_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for tag in ranked {
        let node = (0..num_nodes)
            .min_by_key(|&n| (node_load[n], n))
            .unwrap_or(0);
        node_load[node] += counts[&tag];
        node_of.insert(tag, node);
    }
    tags.iter().map(|t| node_of[t]).collect()
}

/// `tasks[i] → node assignment[i]`, contiguous chunks (OpenMP static).
/// With no nodes there is no assignment at all (the caller reports a
/// degenerate run rather than dividing by zero here).
fn chunked_assignment(num_tasks: usize, num_nodes: usize) -> Vec<usize> {
    if num_nodes == 0 {
        return Vec::new();
    }
    (0..num_tasks)
        .map(|i| (i * num_nodes) / num_tasks.max(1))
        .map(|n| n.min(num_nodes - 1))
        .collect()
}

fn simulate_dynamic(tasks: &[TaskSpec], spec: &ClusterSpec) -> SimReport {
    let cores = spec.total_cores();
    // Min-heap of (free_time, core_id).
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> =
        (0..cores).map(|c| Reverse((OrdF64(0.0), c))).collect();
    let mut node_busy = vec![0.0; spec.num_nodes];
    let mut node_tasks = vec![0usize; spec.num_nodes];
    let mut makespan = 0.0f64;
    for t in tasks {
        // A zero-core cluster spec can run nothing; report what we have.
        let Some(Reverse((OrdF64(free_at), core))) = heap.pop() else {
            break;
        };
        let done = free_at + t.cost;
        let node = core / spec.cores_per_node;
        node_busy[node] += t.cost;
        node_tasks[node] += 1;
        makespan = makespan.max(done);
        heap.push(Reverse((OrdF64(done), core)));
    }
    finish_report(tasks, spec, makespan, node_busy, node_tasks)
}

fn simulate_static(tasks: &[TaskSpec], spec: &ClusterSpec, assignment: &[usize]) -> SimReport {
    // Group task ids per node preserving order, then chunk statically
    // over the node's cores.
    let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); spec.num_nodes];
    for (i, &node) in assignment.iter().enumerate() {
        per_node[node].push(i);
    }
    let mut node_busy = vec![0.0; spec.num_nodes];
    let mut node_tasks = vec![0usize; spec.num_nodes];
    let mut makespan = 0.0f64;
    for (node, ids) in per_node.iter().enumerate() {
        node_tasks[node] = ids.len();
        let cores = spec.cores_per_node;
        let mut core_time = vec![0.0f64; cores];
        for (k, &tid) in ids.iter().enumerate() {
            // Static chunking: contiguous runs of tasks per core. The
            // saturating clamp keeps a (guarded-against) zero-core spec
            // from underflowing rather than panicking.
            let core = ((k * cores) / ids.len().max(1)).min(cores.saturating_sub(1));
            core_time[core] += tasks[tid].cost;
        }
        node_busy[node] = core_time.iter().sum();
        let node_makespan = core_time.iter().cloned().fold(0.0, f64::max);
        makespan = makespan.max(node_makespan);
    }
    finish_report(tasks, spec, makespan, node_busy, node_tasks)
}

fn finish_report(
    tasks: &[TaskSpec],
    spec: &ClusterSpec,
    makespan: f64,
    node_busy: Vec<f64>,
    node_tasks: Vec<usize>,
) -> SimReport {
    let total_work: f64 = tasks.iter().map(|t| t.cost).sum();
    let denom = makespan * spec.total_cores() as f64;
    SimReport {
        makespan,
        node_busy,
        node_tasks,
        total_work,
        utilisation: if denom > 0.0 { total_work / denom } else { 1.0 },
    }
}

/// `f64` wrapper with a total order for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, cost: f64) -> Vec<TaskSpec> {
        vec![TaskSpec::of_cost(cost); n]
    }

    fn two_node_two_core() -> ClusterSpec {
        ClusterSpec {
            num_nodes: 2,
            cores_per_node: 2,
            mem_per_node: 1 << 30,
        }
    }

    #[test]
    fn uniform_tasks_perfectly_parallel() {
        let spec = two_node_two_core();
        let tasks = uniform(8, 1.0);
        for sched in [
            Scheduler::Dynamic,
            Scheduler::StaticChunked,
            Scheduler::StaticLocality,
        ] {
            let r = simulate(&tasks, &spec, sched);
            assert!(
                (r.makespan - 2.0).abs() < 1e-9,
                "{sched:?}: 8 × 1 s on 4 cores = 2 s, got {}",
                r.makespan
            );
            assert!((r.utilisation - 1.0).abs() < 1e-9);
            assert!((r.imbalance() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn skew_hurts_static_more_than_dynamic() {
        let spec = two_node_two_core();
        // One giant task block at the front, like a dense spatial
        // partition: static chunking piles the expensive ones on node 0.
        let mut tasks = Vec::new();
        for i in 0..40 {
            tasks.push(TaskSpec::of_cost(if i < 10 { 4.0 } else { 0.1 }));
        }
        let dynamic = simulate(&tasks, &spec, Scheduler::Dynamic);
        let static_ = simulate(&tasks, &spec, Scheduler::StaticChunked);
        assert!(
            static_.makespan > dynamic.makespan * 1.4,
            "static {} vs dynamic {}",
            static_.makespan,
            dynamic.makespan
        );
        assert!(static_.imbalance() > dynamic.imbalance());
    }

    #[test]
    fn dynamic_scales_with_node_count() {
        let tasks = uniform(800, 0.5);
        let four = simulate(&tasks, &ClusterSpec::ec2_with_nodes(4), Scheduler::Dynamic);
        let ten = simulate(&tasks, &ClusterSpec::ec2_with_nodes(10), Scheduler::Dynamic);
        let speedup = four.makespan / ten.makespan;
        assert!(speedup > 2.0 && speedup <= 2.6, "speedup {speedup}");
    }

    #[test]
    fn locality_assignment_honoured() {
        let spec = two_node_two_core();
        let tasks = vec![
            TaskSpec {
                cost: 1.0,
                locality: Some(1),
            };
            4
        ];
        let r = simulate(&tasks, &spec, Scheduler::StaticLocality);
        assert_eq!(r.node_tasks, vec![0, 4]);
        assert_eq!(r.node_busy[0], 0.0);
        // All the work on one node halves effective parallelism.
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_task_list() {
        let spec = two_node_two_core();
        let r = simulate(&[], &spec, Scheduler::Dynamic);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.total_work, 0.0);
        let r2 = simulate(&[], &spec, Scheduler::StaticChunked);
        assert_eq!(r2.makespan, 0.0);
    }

    #[test]
    fn single_task_runs_on_one_core() {
        let spec = ClusterSpec::ec2_paper_cluster();
        let r = simulate(&[TaskSpec::of_cost(3.0)], &spec, Scheduler::Dynamic);
        assert!((r.makespan - 3.0).abs() < 1e-12);
        assert!((r.utilisation - 3.0 / (3.0 * 80.0)).abs() < 1e-9);
    }

    #[test]
    fn scan_range_assignment_balances_and_pins_partitions() {
        // Tags 0..4 with wildly different sizes: 8, 4, 2, 1 tasks.
        let mut tags = Vec::new();
        for (tag, n) in [(0usize, 8usize), (1, 4), (2, 2), (3, 1)] {
            tags.extend(std::iter::repeat(tag).take(n));
        }
        let assign = scan_range_assignment(&tags, 2);
        assert_eq!(assign.len(), tags.len());
        // Same tag -> same node (the locality invariant).
        for (i, &t) in tags.iter().enumerate() {
            let first = tags.iter().position(|&u| u == t).unwrap();
            assert_eq!(assign[i], assign[first]);
        }
        // Greedy largest-first: node loads are 8 vs 7, not 12 vs 3.
        let load0 = assign.iter().filter(|&&n| n == 0).count();
        let load1 = assign.iter().filter(|&&n| n == 1).count();
        assert_eq!(load0.max(load1), 8, "loads {load0}/{load1}");
        // Degenerate inputs.
        assert!(scan_range_assignment(&tags, 0).is_empty());
        assert!(scan_range_assignment(&[], 4).is_empty());
    }

    #[test]
    fn zero_node_and_zero_core_specs_do_not_panic() {
        let tasks = uniform(16, 1.0);
        let no_nodes = ClusterSpec {
            num_nodes: 0,
            cores_per_node: 8,
            mem_per_node: 1 << 30,
        };
        let no_cores = ClusterSpec {
            num_nodes: 4,
            cores_per_node: 0,
            mem_per_node: 1 << 30,
        };
        for spec in [no_nodes, no_cores] {
            for sched in [
                Scheduler::Dynamic,
                Scheduler::StaticChunked,
                Scheduler::StaticLocality,
            ] {
                let r = simulate(&tasks, &spec, sched);
                assert_eq!(r.makespan, 0.0, "{sched:?} on {spec:?}");
                assert_eq!(r.node_busy.len(), spec.num_nodes);
                assert_eq!(r.node_tasks.iter().sum::<usize>(), 0);
                assert!((r.utilisation - 1.0).abs() < 1e-12);
                assert!(r.imbalance().is_finite());
            }
        }
        assert!(chunked_assignment(5, 0).is_empty());
    }

    #[test]
    fn chunked_assignment_is_contiguous_and_balanced() {
        let a = chunked_assignment(10, 3);
        assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let b = chunked_assignment(2, 4);
        assert!(b.iter().all(|&n| n < 4));
    }
}
