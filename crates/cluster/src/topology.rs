//! Cluster topology description.

/// The shape of the (simulated) cluster.
///
/// Defaults mirror the paper's testbed: 10 EC2 `g2.2xlarge` instances
/// with 8 vCPUs and 15 GB of memory each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub num_nodes: usize,
    /// CPU cores per node.
    pub cores_per_node: usize,
    /// Memory per node in bytes. Used to validate that a workload fits —
    /// the paper could not run on fewer than 4 nodes "due to the memory
    /// limitation of the EC2 instances (15 GB per node)".
    pub mem_per_node: u64,
}

impl ClusterSpec {
    /// The paper's 10-node EC2 cluster.
    pub fn ec2_paper_cluster() -> ClusterSpec {
        ClusterSpec {
            num_nodes: 10,
            cores_per_node: 8,
            mem_per_node: 15 * (1 << 30),
        }
    }

    /// Same node type, different node count (for the Fig. 4/5 sweeps).
    pub fn ec2_with_nodes(num_nodes: usize) -> ClusterSpec {
        ClusterSpec {
            num_nodes,
            ..Self::ec2_paper_cluster()
        }
    }

    /// The paper's in-house single-node machine (16 cores, 128 GB).
    pub fn single_node_highend() -> ClusterSpec {
        ClusterSpec {
            num_nodes: 1,
            cores_per_node: 16,
            mem_per_node: 128 * (1 << 30),
        }
    }

    /// Total core count across the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_nodes * self.cores_per_node
    }

    /// Total memory across the cluster.
    pub fn total_memory(&self) -> u64 {
        self.mem_per_node * self.num_nodes as u64
    }

    /// True when a workload of `bytes` in-memory footprint fits the
    /// aggregate memory (with a 2× working-space allowance, matching the
    /// rule of thumb the paper's minimum-node experiments imply).
    pub fn fits_in_memory(&self, bytes: u64) -> bool {
        bytes.saturating_mul(2) <= self.total_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::ec2_paper_cluster();
        assert_eq!(c.num_nodes, 10);
        assert_eq!(c.total_cores(), 80);
        assert_eq!(c.mem_per_node, 15 * (1 << 30));
    }

    #[test]
    fn node_sweep_keeps_node_type() {
        let c = ClusterSpec::ec2_with_nodes(4);
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.cores_per_node, 8);
    }

    #[test]
    fn memory_fit_rule() {
        let c = ClusterSpec::ec2_with_nodes(4); // 60 GB total
        assert!(c.fits_in_memory(20 * (1 << 30)));
        assert!(!c.fits_in_memory(40 * (1 << 30)));
    }
}
