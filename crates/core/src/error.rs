//! Error type for the join layer.

use std::fmt;

/// Errors surfaced while running a spatial join system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpatialJoinError {
    /// Storage failure.
    Dfs(String),
    /// Query engine failure (ISP-MC path).
    Impala(String),
    /// Geometry failure that was not recoverable by dropping a record.
    Geom(String),
}

impl fmt::Display for SpatialJoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialJoinError::Dfs(m) => write!(f, "storage error: {m}"),
            SpatialJoinError::Impala(m) => write!(f, "query engine error: {m}"),
            SpatialJoinError::Geom(m) => write!(f, "geometry error: {m}"),
        }
    }
}

impl std::error::Error for SpatialJoinError {}

impl From<minihdfs::DfsError> for SpatialJoinError {
    fn from(e: minihdfs::DfsError) -> Self {
        SpatialJoinError::Dfs(e.to_string())
    }
}

impl From<impalite::ImpalaError> for SpatialJoinError {
    fn from(e: impalite::ImpalaError) -> Self {
        SpatialJoinError::Impala(e.to_string())
    }
}

impl From<geom::GeomError> for SpatialJoinError {
    fn from(e: geom::GeomError) -> Self {
        SpatialJoinError::Geom(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SpatialJoinError = minihdfs::DfsError::NotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        let e2: SpatialJoinError = impalite::ImpalaError::UnknownTable("t".into()).into();
        assert!(matches!(e2, SpatialJoinError::Impala(_)));
        let e3: SpatialJoinError = geom::GeomError::Invalid("bad".into()).into();
        assert!(matches!(e3, SpatialJoinError::Geom(_)));
    }
}
