//! ISP-MC: the spatial join through the impalite SQL engine.
//!
//! Where SpatialSpark is "API-driven", ISP-MC "takes spatially extended
//! SQL statements" (§VI). This wrapper registers the two sides as
//! catalog tables, renders the paper's Fig. 1 SQL for the requested
//! predicate, and hands it to the impalite backend — which runs the
//! broadcast R-tree build, statically-chunked row-batch probing and
//! GEOS-like naive refinement.

use geom::engine::SpatialPredicate;
use impalite::{Catalog, Impalad, ImpaladConf, QueryResult, TableDef};
use minihdfs::MiniDfs;

use crate::error::SpatialJoinError;
use crate::JoinPair;

/// The ISP-MC system.
pub struct IspMc {
    impalad: Impalad,
}

/// One completed ISP-MC join.
pub struct IspMcRun {
    /// The engine-level result (pairs, metrics, plan).
    pub result: QueryResult,
    conf: ImpaladConf,
    /// The SQL statement that ran.
    pub sql: String,
}

impl IspMcRun {
    /// Matched pairs.
    pub fn pairs(&self) -> &[JoinPair] {
        &self.result.pairs
    }

    /// Number of result pairs.
    pub fn pair_count(&self) -> usize {
        self.result.pairs.len()
    }

    /// Simulated runtime on `num_nodes` under Impala's static
    /// scheduling (the ISP-MC columns of Tables 1 and 2).
    pub fn simulated_runtime(&self, num_nodes: usize) -> f64 {
        self.result.metrics.simulate_runtime(&self.conf, num_nodes)
    }

    /// Simulated runtime of the standalone single-node program (the
    /// last column of Table 1).
    pub fn standalone_runtime(&self) -> f64 {
        self.result.metrics.simulate_standalone(&self.conf)
    }

    /// Total measured CPU seconds.
    pub fn total_work(&self) -> f64 {
        self.result.metrics.total_work()
    }

    /// The run's measured fragments as an [`obs::RunStats`] tree
    /// (scan/build/probe children with their seconds and byte counts).
    pub fn run_stats(&self) -> obs::RunStats {
        self.result.metrics.to_run_stats()
    }
}

impl IspMc {
    /// Creates the system with `left`/`right` registered as `(name,
    /// path)` tables.
    pub fn new(conf: ImpaladConf, dfs: MiniDfs, left: (&str, &str), right: (&str, &str)) -> IspMc {
        let mut catalog = Catalog::new();
        catalog.register(TableDef::id_geom(left.0, left.1));
        catalog.register(TableDef::id_geom(right.0, right.1));
        IspMc {
            impalad: Impalad::new(conf, dfs, catalog),
        }
    }

    /// Renders the Fig. 1 SQL for a predicate over tables `l` and `r`.
    pub fn render_sql(left: &str, right: &str, predicate: SpatialPredicate) -> String {
        match predicate {
            SpatialPredicate::Within => format!(
                "SELECT {left}.id, {right}.id FROM {left} SPATIAL JOIN {right} \
                 WHERE ST_WITHIN ({left}.geom, {right}.geom)"
            ),
            SpatialPredicate::NearestD(d) => format!(
                "SELECT {left}.id, {right}.id FROM {left} SPATIAL JOIN {right} \
                 WHERE ST_NearestD ({left}.geom, {right}.geom, {d})"
            ),
            SpatialPredicate::Nearest(d) => format!(
                "SELECT {left}.id, {right}.id FROM {left} SPATIAL JOIN {right} \
                 WHERE ST_NEAREST ({left}.geom, {right}.geom, {d})"
            ),
        }
    }

    /// Runs the join for `predicate` between the two registered tables.
    ///
    /// # Errors
    /// Propagates SQL/planning/storage errors from the engine.
    pub fn spatial_join(
        &self,
        left: &str,
        right: &str,
        predicate: SpatialPredicate,
    ) -> Result<IspMcRun, SpatialJoinError> {
        let sql = Self::render_sql(left, right, predicate);
        let result = self.impalad.execute(&sql)?;
        Ok(IspMcRun {
            result,
            conf: self.impalad.conf().clone(),
            sql,
        })
    }

    /// Runs an arbitrary SQL statement through the engine.
    ///
    /// # Errors
    /// Propagates SQL/planning/storage errors from the engine.
    pub fn execute_sql(&self, sql: &str) -> Result<IspMcRun, SpatialJoinError> {
        let result = self.impalad.execute(sql)?;
        Ok(IspMcRun {
            result,
            conf: self.impalad.conf().clone(),
            sql: sql.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> MiniDfs {
        let dfs = MiniDfs::new(4, 512).unwrap();
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(format!(
                    "{}\tPOINT ({} {})",
                    i * 10 + j,
                    i as f64 + 0.5,
                    j as f64 + 0.5
                ));
            }
        }
        dfs.write_lines("/pnt", &pts).unwrap();
        dfs.write_lines(
            "/poly",
            [
                "0\tPOLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))",
                "1\tPOLYGON ((5 0, 10 0, 10 5, 5 5, 5 0))",
                "2\tPOLYGON ((0 5, 5 5, 5 10, 0 10, 0 5))",
                "3\tPOLYGON ((5 5, 10 5, 10 10, 5 10, 5 5))",
            ],
        )
        .unwrap();
        dfs
    }

    #[test]
    fn sql_rendering_matches_fig1() {
        let sql = IspMc::render_sql("pnt", "poly", SpatialPredicate::Within);
        assert!(sql.contains("SPATIAL JOIN"));
        assert!(sql.contains("ST_WITHIN (pnt.geom, poly.geom)"));
        let sql2 = IspMc::render_sql("pnt", "lion", SpatialPredicate::NearestD(5000.0));
        assert!(sql2.contains("ST_NearestD (pnt.geom, lion.geom, 5000)"));
    }

    #[test]
    fn join_end_to_end_matches_expected_count() {
        let sys = IspMc::new(
            ImpaladConf::default(),
            fixture(),
            ("pnt", "/pnt"),
            ("poly", "/poly"),
        );
        let run = sys
            .spatial_join("pnt", "poly", SpatialPredicate::Within)
            .unwrap();
        assert_eq!(run.pair_count(), 100);
        assert!(run.standalone_runtime() <= run.simulated_runtime(1));
        assert!(run.sql.contains("ST_WITHIN"));
        let stats = run.run_stats();
        assert_eq!(stats.name, "ispmc");
        assert!(stats.total_counters().row_batches >= 1);
    }

    #[test]
    fn execute_sql_direct() {
        let sys = IspMc::new(
            ImpaladConf::default(),
            fixture(),
            ("pnt", "/pnt"),
            ("poly", "/poly"),
        );
        let run = sys
            .execute_sql(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom);",
            )
            .unwrap();
        assert_eq!(run.pair_count(), 100);
        assert!(sys.execute_sql("SELECT broken").is_err());
    }
}
