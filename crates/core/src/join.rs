//! Engine-generic filter-refine join algorithms.
//!
//! The paper (§II) decomposes a spatial join into *spatial filtering*
//! (pairing objects by MBB approximation, usually through an index) and
//! *spatial refinement* (evaluating the exact predicate on each
//! candidate pair). Everything here is generic over the
//! [`RefinementEngine`], so the same algorithm runs with JTS-like or
//! GEOS-like refinement — the comparison at the heart of §V.B.

use geom::engine::{RefinementEngine, SpatialPredicate};
use geom::{Envelope, HasEnvelope, Point};
use rtree::{QuadTreePartitioner, RTree};

use crate::{GeomRecord, JoinPair, PointRecord};

/// Builds the broadcastable R-tree over the right side: geometries are
/// prepared once by the engine and indexed by their envelope expanded
/// by the predicate's filter radius (the `expandBy(radius)` of the
/// paper's Fig. 2).
pub fn build_right_index<E: RefinementEngine>(
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
) -> RTree<(i64, E::Prepared)> {
    let radius = predicate.filter_radius();
    let entries: Vec<(Envelope, (i64, E::Prepared))> = right
        .iter()
        .map(|(id, g)| (g.envelope().expanded_by(radius), (*id, engine.prepare(g))))
        .collect();
    RTree::bulk_load_entries(entries)
}

/// Probes the index with one point, appending matches to `out`.
///
/// Entry envelopes were already expanded by the filter radius at build
/// time, so the query itself uses radius zero (expanding again would
/// double the candidate set). For [`SpatialPredicate::Nearest`] the
/// arg-min over candidates is applied here: at most one pair is emitted
/// per point (ties broken by the smaller right id).
#[inline]
pub fn probe<E: RefinementEngine>(
    tree: &RTree<(i64, E::Prepared)>,
    predicate: SpatialPredicate,
    engine: &E,
    left_id: i64,
    p: Point,
    out: &mut Vec<JoinPair>,
) {
    rtree::probe_with(
        tree,
        predicate,
        engine,
        left_id,
        p,
        |(rid, t)| (*rid, t),
        out,
    );
}

/// The nearest-neighbour join: for each point, the single nearest right
/// geometry within `max_distance` (ties broken by the smaller id).
/// Thin wrapper over [`crate::JoinRequest`].
pub fn nearest_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    max_distance: f64,
    engine: &E,
) -> Vec<JoinPair> {
    crate::JoinRequest::new(left, right, engine)
        .nearest(max_distance)
        .run()
        .pairs
}

/// The serial indexed broadcast join: index the right side, probe with
/// every left point. Thin wrapper over [`crate::JoinRequest`] (the
/// shared-set executor emits pairs bit-identical to a
/// [`build_right_index`]+[`probe`] loop); use the request directly to
/// also get the run's `obs::RunStats`.
pub fn broadcast_index_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
) -> Vec<JoinPair> {
    crate::JoinRequest::new(left, right, engine)
        .predicate(predicate)
        .run()
        .pairs
}

/// The naïve O(|L|·|R|) cross-join-then-filter baseline of §II, kept for
/// correctness cross-checks and the indexing ablation bench. Thin
/// wrapper over [`crate::JoinRequest`].
pub fn nested_loop_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
) -> Vec<JoinPair> {
    crate::JoinRequest::new(left, right, engine)
        .predicate(predicate)
        .nested_loop()
        .run()
        .pairs
}

/// A spatially partitioned join (the SpatialHadoop/HadoopGIS strategy
/// discussed in §II): space is split by a quadtree built on a sample of
/// the left points; each partition joins its points against the right
/// geometries overlapping it. Returns the partitioned work as
/// `(partition envelope, points, geometries)` triples so callers can
/// schedule them as distributed tasks.
pub struct PartitionedWork {
    pub partitions: Vec<PartitionTask>,
}

/// One partition's join task.
pub struct PartitionTask {
    pub cell: Envelope,
    pub left: Vec<PointRecord>,
    pub right_ids: Vec<u32>,
}

/// Builds partition tasks: points are routed to exactly one cell;
/// right-side geometries (their expanded envelopes) to every cell they
/// overlap.
pub fn partition_work(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    target_points_per_partition: usize,
) -> PartitionedWork {
    let mut extent = Envelope::EMPTY;
    for &(_, p) in left {
        extent.expand_to(p.x, p.y);
    }
    for (_, g) in right {
        extent = extent.union(&g.envelope());
    }
    if extent.is_empty() {
        return PartitionedWork {
            partitions: Vec::new(),
        };
    }
    // Sample at most 10k points for the partitioner.
    let stride = (left.len() / 10_000).max(1);
    let sample: Vec<Point> = left.iter().step_by(stride).map(|&(_, p)| p).collect();
    let qt = QuadTreePartitioner::build(
        extent,
        &sample,
        (target_points_per_partition / stride).max(1),
        12,
    );

    let mut partitions: Vec<PartitionTask> = qt
        .partitions()
        .iter()
        .map(|&cell| PartitionTask {
            cell,
            left: Vec::new(),
            right_ids: Vec::new(),
        })
        .collect();
    for &(id, p) in left {
        if let Some(pi) = qt.partition_of(p) {
            partitions[pi].left.push((id, p));
        }
    }
    let radius = predicate.filter_radius();
    for (ri, (_, g)) in right.iter().enumerate() {
        let env = g.envelope().expanded_by(radius);
        for pi in qt.partitions_intersecting(&env) {
            partitions[pi].right_ids.push(ri as u32);
        }
    }
    PartitionedWork { partitions }
}

/// Runs a partitioned join serially through the morsel executor's
/// shared [`crate::parallel::PreparedSet`]: each partition task carries
/// `right_ids` into the set instead of cloning geometry. Results are
/// deduplicated: a right geometry replicated into several cells can
/// only match a point in the point's unique cell, but dedup keeps the
/// contract obvious.
pub fn partitioned_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    target_points_per_partition: usize,
) -> Vec<JoinPair> {
    crate::JoinRequest::new(left, right, engine)
        .predicate(predicate)
        .partitioned(target_points_per_partition)
        .run()
        .pairs
}

/// Parses the paper's `id \t wkt` record format into point records,
/// dropping malformed rows (the `Try(...).filter(_.isSuccess)` of
/// Fig. 2). Compatibility shim over [`crate::RecordReader`], kept for
/// one release — the reader reports *why* a line was dropped.
pub fn parse_point_records(lines: &[String], geom_col: usize) -> Vec<PointRecord> {
    crate::RecordReader::new(geom_col).read_points(lines).0
}

/// Parses one `id \t wkt` line into a point record. Compatibility shim
/// over [`crate::RecordReader`], kept for one release.
pub fn parse_point_record(line: &str, geom_col: usize) -> Option<PointRecord> {
    crate::RecordReader::new(geom_col).read_point(line).ok()
}

/// Parses one `id \t wkt` line into a geometry record. Compatibility
/// shim over [`crate::RecordReader`], kept for one release.
pub fn parse_geom_record(line: &str, geom_col: usize) -> Option<GeomRecord> {
    crate::RecordReader::new(geom_col).read_geom(line).ok()
}

/// Parses `id \t wkt` lines into geometry records (right side).
/// Compatibility shim over [`crate::RecordReader`], kept for one
/// release.
pub fn parse_geom_records(lines: &[String], geom_col: usize) -> Vec<GeomRecord> {
    crate::RecordReader::new(geom_col).read_geoms(lines).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::engine::{NaiveEngine, PreparedEngine};
    use geom::{Geometry, Polygon};

    fn grid_points(n: usize) -> Vec<PointRecord> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((
                    (i * n + j) as i64,
                    Point::new(i as f64 + 0.5, j as f64 + 0.5),
                ));
            }
        }
        v
    }

    fn quadrant_polys(half: f64) -> Vec<GeomRecord> {
        let q = |id, x0: f64, y0: f64| {
            (
                id,
                Geometry::Polygon(Polygon::rectangle(Envelope::new(
                    x0,
                    y0,
                    x0 + half,
                    y0 + half,
                ))),
            )
        };
        vec![
            q(0, 0.0, 0.0),
            q(1, half, 0.0),
            q(2, 0.0, half),
            q(3, half, half),
        ]
    }

    #[test]
    fn indexed_join_matches_nested_loop() {
        let left = grid_points(10);
        let right = quadrant_polys(5.0);
        let engine = PreparedEngine;
        let indexed = crate::normalize_pairs(broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &engine,
        ));
        let nested = crate::normalize_pairs(nested_loop_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &engine,
        ));
        assert_eq!(indexed, nested);
        assert_eq!(indexed.len(), 100);
    }

    #[test]
    fn engines_agree_on_join_output() {
        let left = grid_points(8);
        let right = quadrant_polys(4.0);
        let fast = crate::normalize_pairs(broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &PreparedEngine,
        ));
        let slow = crate::normalize_pairs(broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &NaiveEngine,
        ));
        assert_eq!(fast, slow);
    }

    #[test]
    fn nearestd_join_with_radius_expansion() {
        let left = vec![(0, Point::new(5.0, 1.0)), (1, Point::new(5.0, 3.0))];
        let right = vec![(10, geom::wkt::parse("LINESTRING (0 0, 10 0)").unwrap())];
        let engine = PreparedEngine;
        let pairs = broadcast_index_join(&left, &right, SpatialPredicate::NearestD(2.0), &engine);
        assert_eq!(pairs, vec![(0, 10)]);
    }

    #[test]
    fn partitioned_join_matches_broadcast_join() {
        let left = grid_points(12);
        let right = quadrant_polys(6.0);
        let engine = PreparedEngine;
        let broadcast = crate::normalize_pairs(broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &engine,
        ));
        // Small partitions force many cells and right-side replication.
        let partitioned = partitioned_join(&left, &right, SpatialPredicate::Within, &engine, 10);
        assert_eq!(partitioned, broadcast);
    }

    #[test]
    fn partitioned_nearestd_matches_broadcast() {
        let left = grid_points(10);
        let right = vec![
            (0, geom::wkt::parse("LINESTRING (0 5, 10 5)").unwrap()),
            (1, geom::wkt::parse("LINESTRING (5 0, 5 10)").unwrap()),
        ];
        let engine = PreparedEngine;
        let broadcast = crate::normalize_pairs(broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::NearestD(1.0),
            &engine,
        ));
        let partitioned =
            partitioned_join(&left, &right, SpatialPredicate::NearestD(1.0), &engine, 8);
        assert_eq!(partitioned, broadcast);
    }

    #[test]
    fn record_parsing_drops_garbage() {
        let lines = vec![
            "0\tPOINT (1 2)".to_string(),
            "not-a-record".to_string(),
            "1\tPOLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))".to_string(), // not a point
            "2\tPOINT (3 4)".to_string(),
        ];
        let pts = parse_point_records(&lines, 1);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1], (2, Point::new(3.0, 4.0)));
        let geoms = parse_geom_records(&lines, 1);
        assert_eq!(geoms.len(), 3); // polygon parses as a geometry
    }

    #[test]
    fn record_parsing_honours_geom_column() {
        // geom_col beyond 1: wkt sits after a payload column.
        let lines = vec!["7\tpayload\tPOINT (1 2)".to_string()];
        assert_eq!(
            parse_point_records(&lines, 2),
            vec![(7, Point::new(1.0, 2.0))]
        );
        // Out-of-range column drops the row rather than panicking.
        assert!(parse_point_records(&lines, 9).is_empty());
        // geom_col == 0 is only satisfiable when id and wkt coincide,
        // which WKT never parses as an i64 — row dropped, not panicked.
        assert!(parse_point_records(&lines, 0).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let engine = PreparedEngine;
        assert!(broadcast_index_join(&[], &[], SpatialPredicate::Within, &engine).is_empty());
        assert!(partitioned_join(&[], &[], SpatialPredicate::Within, &engine, 16).is_empty());
        let left = grid_points(3);
        assert!(broadcast_index_join(&left, &[], SpatialPredicate::Within, &engine).is_empty());
    }
}
