//! # spatialjoin — large-scale spatial join query processing
//!
//! The paper's primary contribution, rebuilt on the workspace's
//! substrates: indexed spatial joins with two predicates —
//! point-in-polygon (**Within**) and nearest-polyline-within-distance
//! (**NearestD**) — implemented as two complete systems plus the serial
//! building blocks they share:
//!
//! * [`join`] — engine-generic filter-refine join algorithms: the
//!   broadcast R-tree indexed join, a spatially partitioned join, and a
//!   nested-loop baseline. These are the algorithms; the systems below
//!   wrap them in distributed machinery.
//! * [`parallel`] — the morsel-driven parallel executor behind both
//!   systems: the right side prepared once into a shared
//!   [`PreparedSet`], the left side probed in fixed-size morsels with
//!   deterministic, serial-identical output.
//! * [`spark`] — **SpatialSpark**: the join expressed as sparklet
//!   dataset transformations (the paper's Fig. 2 skeleton), JTS-like
//!   prepared-geometry refinement, dynamic scheduling.
//! * [`ispmc`] — **ISP-MC**: the join pushed into the impalite SQL
//!   engine via the `SPATIAL JOIN` keyword, GEOS-like naive refinement,
//!   static scheduling — plus the standalone variant of Table 1.
//!
//! Both systems execute the real join locally and expose
//! simulated-cluster runtimes for any node count, which is how the
//! benches regenerate the paper's tables and figures.

pub mod error;
pub mod ispmc;
pub mod join;
pub mod parallel;
pub mod reader;
pub mod request;
pub mod spark;
pub mod trajectory;

pub use error::SpatialJoinError;
pub use geom::engine::SpatialPredicate;
pub use ispmc::{IspMc, IspMcRun};
pub use parallel::{
    morsel_partitions, parallel_broadcast_join, parallel_partitioned_join,
    parallel_partitioned_join_observed, partition_blocks, spatial_sort_points,
    timings_to_taskspecs, MorselConfig, PreparedSet,
};
pub use reader::{RecordError, RecordReader};
pub use request::{JoinOutcome, JoinRequest, JoinStrategy};
pub use spark::{SpatialSpark, SpatialSparkRun};

/// A record ready for joining: id plus parsed geometry.
pub type GeomRecord = (i64, geom::Geometry);

/// A point-side record.
pub type PointRecord = (i64, geom::Point);

/// A matched output pair `(left id, right id)`.
pub type JoinPair = (i64, i64);

/// Canonical ordering for comparing join outputs across systems.
pub fn normalize_pairs(mut pairs: Vec<JoinPair>) -> Vec<JoinPair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}
