//! Morsel-driven parallel join executor with prepare-once geometry
//! sharing.
//!
//! The paper's systems get their speed from running the broadcast
//! R-tree probe in parallel — dynamic task scheduling on Spark, static
//! OpenMP-style chunking in Impala (§IV–V). This module is the single
//! executor behind both: the right side is prepared **once** into a
//! shared [`PreparedSet`] (ids, expanded envelopes and engine-prepared
//! geometries, indexed by `u32`), and the left side is probed in
//! fixed-size morsels handed to [`cluster::run_morsels`] under either
//! [`ScheduleMode`].
//!
//! # Determinism contract
//!
//! Output is **bit-identical to the serial path at any thread count**:
//! the shared tree is bulk-loaded from the same envelope sequence as
//! the serial [`crate::join::build_right_index`] (STR packing is a
//! stable sort over envelopes, so the entry permutation and hence
//! traversal order are identical), and per-morsel output segments are
//! stitched back in input order by the driver. Scheduling only decides
//! *who* runs a morsel, never what it appends.
//!
//! # Prepare-once memory story
//!
//! The partitioned join replicates right geometries into every
//! partition they overlap. The paper's systems re-read and re-prepare
//! the replicated fragments per partition task; here a partition task
//! carries only `right_ids: &[u32]` into the shared set and builds a
//! subset R-tree over envelope *copies* — zero geometry clones
//! end-to-end.

use cluster::{
    run_morsels_faulted, run_morsels_hinted, run_morsels_hinted_observed, run_tasks_observed,
    Chaos, ChaosSite, RetryPolicy, ScheduleMode, TaskFailure, TaskSpec, TaskTiming,
};
use geom::engine::{RefinementEngine, SpatialPredicate};
use geom::{Envelope, HasEnvelope, Point};
use rtree::{probe_with, RTree};

use crate::join::partition_work;
use crate::{GeomRecord, JoinPair, PointRecord};

/// Default morsel size: small enough for dynamic scheduling to balance
/// skewed probe costs, large enough to amortise dispatch overhead.
pub const DEFAULT_MORSEL_SIZE: usize = 2048;

/// Side of the uniform grid used to derive morsel locality: each morsel
/// is tagged with its dominant cell on a `SIDE × SIDE` grid over the
/// left extent. The cell id stands in for the HDFS block / scan-range
/// id Impala pins tasks to; 16×16 = 256 cells keeps many distinct
/// "blocks" per node at the paper's 4–10 node counts.
pub const LOCALITY_GRID_SIDE: usize = 16;

/// Cell of `p` on a `side × side` grid over `extent` (row-major).
/// Degenerate extents collapse to cell 0.
fn grid_cell(p: Point, extent: &Envelope, side: usize) -> usize {
    let w = extent.width();
    let h = extent.height();
    let col = if w > 0.0 {
        (((p.x - extent.min_x) / w * side as f64) as usize).min(side - 1)
    } else {
        0
    };
    let row = if h > 0.0 {
        (((p.y - extent.min_y) / h * side as f64) as usize).min(side - 1)
    } else {
        0
    };
    row * side + col
}

/// Envelope of the left points (the grid's frame).
fn points_extent(left: &[PointRecord]) -> Envelope {
    let mut extent = Envelope::EMPTY;
    for &(_, p) in left {
        extent.expand_to(p.x, p.y);
    }
    extent
}

/// Tags each morsel of `left` (chunks of `morsel_size`) with its
/// **dominant partition**: the grid cell holding the plurality of the
/// morsel's points, ties to the lower cell id. This is the
/// preferred-worker/preferred-node hint the locality-aware schedules
/// consume — the grid partition standing in for HDFS block locality.
pub fn morsel_partitions(left: &[PointRecord], morsel_size: usize, side: usize) -> Vec<usize> {
    let side = side.max(1);
    let extent = points_extent(left);
    if extent.is_empty() {
        return Vec::new();
    }
    let mut counts = vec![0u32; side * side];
    let mut out = Vec::with_capacity(left.len().div_ceil(morsel_size.max(1)));
    for morsel in left.chunks(morsel_size.max(1)) {
        counts.iter_mut().for_each(|c| *c = 0);
        for &(_, p) in morsel {
            counts[grid_cell(p, &extent, side)] += 1;
        }
        let dominant = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(cell, _)| cell)
            .unwrap_or(0);
        out.push(dominant);
    }
    out
}

/// Splits per-morsel partition tags into bounded-size *block* ids.
///
/// HDFS blocks have a fixed byte size, so a dense grid cell spans many
/// blocks that a locality scheduler places independently — it never
/// pins an arbitrarily hot region to one node wholesale. This renames
/// each run of equal partition tags into fresh ids, starting a new id
/// whenever the run reaches `max_block_morsels`. Tags must be in file
/// (morsel) order; spatially sorted input keeps each block's morsels
/// within one grid cell, so the block is still a locality unit.
pub fn partition_blocks(partitions: &[usize], max_block_morsels: usize) -> Vec<usize> {
    let cap = max_block_morsels.max(1);
    let mut out = Vec::with_capacity(partitions.len());
    let mut block = 0usize;
    let mut run_len = 0usize;
    let mut prev: Option<usize> = None;
    for &tag in partitions {
        if prev.is_some_and(|p| p != tag) || run_len == cap {
            block += 1;
            run_len = 0;
        }
        prev = Some(tag);
        run_len += 1;
        out.push(block);
    }
    out
}

/// Sorts points by their grid cell (stable within a cell), mimicking
/// the spatially ordered HDFS files the paper's datasets ship as —
/// this is what makes hot regions *contiguous* in task order, the
/// precondition for the static-chunking imbalance of §V.
pub fn spatial_sort_points(left: &mut [PointRecord], side: usize) {
    let side = side.max(1);
    let extent = points_extent(left);
    if extent.is_empty() {
        return;
    }
    left.sort_by_key(|&(_, p)| grid_cell(p, &extent, side));
}

/// Converts measured per-morsel timings plus their dominant-partition
/// tags into simulator task specs: `cost` is the measured wall-clock,
/// `locality` the partition id (the simulator maps it onto a node with
/// `partition % num_nodes`). Timings are emitted in morsel (input)
/// order; a missing tag yields a task with no locality preference.
pub fn timings_to_taskspecs(timings: &[TaskTiming], partitions: &[usize]) -> Vec<TaskSpec> {
    let mut ordered: Vec<&TaskTiming> = timings.iter().collect();
    ordered.sort_by_key(|t| t.index);
    ordered
        .into_iter()
        .map(|t| TaskSpec {
            cost: t.secs,
            locality: partitions.get(t.index).copied(),
        })
        .collect()
}

/// Parallelism settings for the morsel executor.
#[derive(Debug, Clone, Copy)]
pub struct MorselConfig {
    /// Worker threads (1 = serial inline execution).
    pub threads: usize,
    /// How morsels are handed to workers.
    pub mode: ScheduleMode,
    /// Left points per morsel.
    pub morsel_size: usize,
}

impl MorselConfig {
    /// `threads` workers, dynamic scheduling, default morsel size.
    pub fn new(threads: usize) -> MorselConfig {
        MorselConfig {
            threads: threads.max(1),
            mode: ScheduleMode::Dynamic,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }

    /// Single-threaded configuration (the serial reference path).
    pub fn serial() -> MorselConfig {
        MorselConfig::new(1)
    }
}

impl Default for MorselConfig {
    fn default() -> MorselConfig {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MorselConfig::new(threads)
    }
}

/// The right side of a join, prepared exactly once and shared by
/// reference across every morsel, partition task and system layer.
pub struct PreparedSet<E: RefinementEngine> {
    ids: Vec<i64>,
    /// Envelopes already expanded by the predicate's filter radius.
    envelopes: Vec<Envelope>,
    prepared: Vec<E::Prepared>,
    /// Filter tree over `u32` indices into the vectors above.
    tree: RTree<u32>,
    predicate: SpatialPredicate,
}

impl<E: RefinementEngine> PreparedSet<E> {
    /// Prepares `right` for `predicate`: one `engine.prepare` call per
    /// geometry, envelopes expanded by the filter radius, and an STR
    /// tree over the indices (same envelope sequence as the serial
    /// [`crate::join::build_right_index`], hence the same packing).
    pub fn prepare(
        right: &[GeomRecord],
        predicate: SpatialPredicate,
        engine: &E,
    ) -> PreparedSet<E> {
        let radius = predicate.filter_radius();
        let mut ids = Vec::with_capacity(right.len());
        let mut envelopes = Vec::with_capacity(right.len());
        let mut prepared = Vec::with_capacity(right.len());
        for (id, g) in right {
            ids.push(*id);
            envelopes.push(g.envelope().expanded_by(radius));
            prepared.push(engine.prepare(g));
        }
        let entries: Vec<(Envelope, u32)> = envelopes
            .iter()
            .enumerate()
            .map(|(i, &env)| (env, i as u32))
            .collect();
        PreparedSet {
            ids,
            envelopes,
            prepared,
            tree: RTree::bulk_load_entries(entries),
            predicate,
        }
    }

    /// Number of prepared right-side records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the right side is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The predicate the set was prepared for.
    pub fn predicate(&self) -> SpatialPredicate {
        self.predicate
    }

    /// Probes the shared tree with one point, appending matches.
    #[inline]
    pub fn probe_into(&self, engine: &E, left_id: i64, p: Point, out: &mut Vec<JoinPair>) {
        probe_with(
            &self.tree,
            self.predicate,
            engine,
            left_id,
            p,
            |&i| (self.ids[i as usize], &self.prepared[i as usize]),
            out,
        );
    }

    /// Probes one morsel of left points — the body every worker thread
    /// runs. Geometry is reached through the shared set by index.
    pub fn probe_slice(&self, engine: &E, morsel: &[PointRecord], out: &mut Vec<JoinPair>) {
        // tidy:alloc-free:start
        for &(id, p) in morsel {
            self.probe_into(engine, id, p, out);
        }
        // tidy:alloc-free:end
    }

    /// Builds a filter tree over a subset of the right side, given as
    /// indices into this set. Only envelopes are copied — the prepared
    /// geometries stay shared.
    pub fn subset_tree(&self, right_ids: &[u32]) -> RTree<u32> {
        let entries: Vec<(Envelope, u32)> = right_ids
            .iter()
            .map(|&ri| (self.envelopes[ri as usize], ri))
            .collect();
        RTree::bulk_load_entries(entries)
    }

    /// Probes a [`PreparedSet::subset_tree`] with one point.
    #[inline]
    pub fn probe_subset(
        &self,
        subset: &RTree<u32>,
        engine: &E,
        left_id: i64,
        p: Point,
        out: &mut Vec<JoinPair>,
    ) {
        probe_with(
            subset,
            self.predicate,
            engine,
            left_id,
            p,
            |&i| (self.ids[i as usize], &self.prepared[i as usize]),
            out,
        );
    }

    /// Probes `left` in parallel morsels, returning pairs in the same
    /// order the serial loop would emit them.
    pub fn par_probe(&self, left: &[PointRecord], engine: &E, cfg: MorselConfig) -> Vec<JoinPair> {
        self.par_probe_timed(left, engine, cfg).0
    }

    /// [`PreparedSet::par_probe`] plus per-morsel wall-clock timings
    /// (indexed by morsel position), for replay through the cluster
    /// simulator.
    pub fn par_probe_timed(
        &self,
        left: &[PointRecord],
        engine: &E,
        cfg: MorselConfig,
    ) -> (Vec<JoinPair>, Vec<TaskTiming>) {
        let (pairs, timings, exec) = self.par_probe_observed(left, engine, cfg);
        obs::add_thread(&exec.worker_counters);
        (pairs, timings)
    }

    /// [`PreparedSet::par_probe_timed`] returning the pool's
    /// [`obs::ExecStats`] (scoped-worker counters + per-worker
    /// busy/wait) instead of folding the counters into the calling
    /// thread — the collection hook [`crate::JoinRequest`] runs on.
    pub fn par_probe_observed(
        &self,
        left: &[PointRecord],
        engine: &E,
        cfg: MorselConfig,
    ) -> (Vec<JoinPair>, Vec<TaskTiming>, obs::ExecStats) {
        // Locality mode needs the per-morsel hints; the other modes
        // skip the tagging pass entirely.
        let hints = if cfg.mode == ScheduleMode::StaticLocality {
            morsel_partitions(left, cfg.morsel_size.max(1), LOCALITY_GRID_SIDE)
        } else {
            Vec::new()
        };
        let morsels: Vec<&[PointRecord]> = left.chunks(cfg.morsel_size.max(1)).collect();
        run_morsels_hinted_observed(&morsels, &hints, cfg.threads, cfg.mode, |morsel, out| {
            self.probe_slice(engine, morsel, out)
        })
    }

    /// [`PreparedSet::par_probe_timed`] under fault injection: each
    /// morsel's panic draw is consulted *after* its output is appended
    /// (so recovery exercises the partial-segment rollback), and
    /// panicking morsels are retried in place under `policy` — the
    /// worker-local bounded re-dispatch recovery mode.
    ///
    /// Returns the pairs and timings on full recovery — bit-identical
    /// to [`PreparedSet::par_probe_timed`] at any thread count — or the
    /// failures of morsels that exhausted their attempts. A disabled
    /// injector takes the plain path exactly.
    pub fn par_probe_faulted(
        &self,
        left: &[PointRecord],
        engine: &E,
        cfg: MorselConfig,
        chaos: &Chaos,
        policy: RetryPolicy,
    ) -> Result<(Vec<JoinPair>, Vec<TaskTiming>), Vec<TaskFailure>> {
        if chaos.is_disabled() {
            return Ok(self.par_probe_timed(left, engine, cfg));
        }
        let hints = if cfg.mode == ScheduleMode::StaticLocality {
            morsel_partitions(left, cfg.morsel_size.max(1), LOCALITY_GRID_SIDE)
        } else {
            Vec::new()
        };
        let morsels: Vec<&[PointRecord]> = left.chunks(cfg.morsel_size.max(1)).collect();
        let run = run_morsels_faulted(
            &morsels,
            &hints,
            cfg.threads,
            cfg.mode,
            policy,
            |i, attempt, morsel, out| {
                self.probe_slice(engine, morsel, out);
                chaos.inject(ChaosSite::Morsel, i as u64, attempt);
            },
        );
        obs::add_thread(&run.exec.worker_counters);
        if run.failures.is_empty() {
            Ok((run.out, run.timings))
        } else {
            Err(run.failures)
        }
    }

    /// [`PreparedSet::par_probe_timed`] plus each morsel's dominant
    /// partition tag — everything the scheduling-ablation replay needs:
    /// feed `(timings, partitions)` to [`timings_to_taskspecs`] and the
    /// result to `cluster::simulate` under any [`cluster::Scheduler`].
    pub fn par_probe_tagged(
        &self,
        left: &[PointRecord],
        engine: &E,
        cfg: MorselConfig,
    ) -> (Vec<JoinPair>, Vec<TaskTiming>, Vec<usize>) {
        let partitions = morsel_partitions(left, cfg.morsel_size.max(1), LOCALITY_GRID_SIDE);
        let morsels: Vec<&[PointRecord]> = left.chunks(cfg.morsel_size.max(1)).collect();
        let hints = if cfg.mode == ScheduleMode::StaticLocality {
            partitions.as_slice()
        } else {
            &[]
        };
        let (pairs, timings) =
            run_morsels_hinted(&morsels, hints, cfg.threads, cfg.mode, |morsel, out| {
                self.probe_slice(engine, morsel, out)
            });
        (pairs, timings, partitions)
    }
}

/// The morsel-parallel broadcast join: prepare the right side once,
/// probe the left side in parallel. Bit-identical to
/// [`crate::join::broadcast_index_join`] at any thread count. Thin
/// wrapper over [`crate::JoinRequest`]; use that directly to also get
/// the run's [`obs::RunStats`].
pub fn parallel_broadcast_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    cfg: MorselConfig,
) -> Vec<JoinPair> {
    crate::JoinRequest::new(left, right, engine)
        .predicate(predicate)
        .config(cfg)
        .run()
        .pairs
}

/// The morsel-parallel partitioned join: partitions carry `right_ids`
/// into the shared [`PreparedSet`]; each task builds a subset filter
/// tree over envelope copies and probes its own points. Matches the
/// serial partitioned join's sorted-deduplicated contract.
pub fn parallel_partitioned_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    target_points_per_partition: usize,
    cfg: MorselConfig,
) -> Vec<JoinPair> {
    let (pairs, exec) = parallel_partitioned_join_observed(
        left,
        right,
        predicate,
        engine,
        target_points_per_partition,
        cfg,
    );
    obs::add_thread(&exec.worker_counters);
    pairs
}

/// [`parallel_partitioned_join`] returning the pool's
/// [`obs::ExecStats`] instead of folding scoped-worker counters into
/// the calling thread.
pub fn parallel_partitioned_join_observed<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    target_points_per_partition: usize,
    cfg: MorselConfig,
) -> (Vec<JoinPair>, obs::ExecStats) {
    let set = PreparedSet::prepare(right, predicate, engine);
    let work = partition_work(left, right, predicate, target_points_per_partition);
    let tasks: Vec<&crate::join::PartitionTask> = work
        .partitions
        .iter()
        .filter(|t| !t.left.is_empty() && !t.right_ids.is_empty())
        .collect();
    let (per_task, _, exec) = run_tasks_observed(tasks, cfg.threads, cfg.mode, |task| {
        let subset = set.subset_tree(&task.right_ids);
        let mut out = Vec::new();
        for &(id, p) in &task.left {
            set.probe_subset(&subset, engine, id, p, &mut out);
        }
        out
    });
    let mut out: Vec<JoinPair> = per_task.into_iter().flatten().collect();
    out.sort_unstable();
    out.dedup();
    (out, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::broadcast_index_join;
    use geom::engine::PreparedEngine;
    use geom::{Geometry, Polygon};

    fn grid_points(n: usize) -> Vec<PointRecord> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((
                    (i * n + j) as i64,
                    Point::new(i as f64 + 0.5, j as f64 + 0.5),
                ));
            }
        }
        v
    }

    fn quadrant_polys(half: f64) -> Vec<GeomRecord> {
        let q = |id, x0: f64, y0: f64| {
            (
                id,
                Geometry::Polygon(Polygon::rectangle(Envelope::new(
                    x0,
                    y0,
                    x0 + half,
                    y0 + half,
                ))),
            )
        };
        vec![
            q(0, 0.0, 0.0),
            q(1, half, 0.0),
            q(2, 0.0, half),
            q(3, half, half),
        ]
    }

    #[test]
    fn parallel_broadcast_is_bit_identical_to_serial() {
        let left = grid_points(20);
        let right = quadrant_polys(10.0);
        let engine = PreparedEngine;
        let serial = broadcast_index_join(&left, &right, SpatialPredicate::Within, &engine);
        for threads in [1, 2, 4, 7] {
            for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
                for morsel_size in [3, 64, 100_000] {
                    let cfg = MorselConfig {
                        threads,
                        mode,
                        morsel_size,
                    };
                    let par = parallel_broadcast_join(
                        &left,
                        &right,
                        SpatialPredicate::Within,
                        &engine,
                        cfg,
                    );
                    assert_eq!(
                        par, serial,
                        "threads={threads} mode={mode:?} morsel={morsel_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_partitioned_matches_serial_partitioned() {
        let left = grid_points(12);
        let right = quadrant_polys(6.0);
        let engine = PreparedEngine;
        let serial =
            crate::join::partitioned_join(&left, &right, SpatialPredicate::Within, &engine, 10);
        for threads in [1, 4] {
            let cfg = MorselConfig::new(threads);
            let par = parallel_partitioned_join(
                &left,
                &right,
                SpatialPredicate::Within,
                &engine,
                10,
                cfg,
            );
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn prepared_set_reports_size_and_predicate() {
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&quadrant_polys(2.0), SpatialPredicate::Within, &engine);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!(set.predicate(), SpatialPredicate::Within);
        let empty = PreparedSet::prepare(&[], SpatialPredicate::Within, &engine);
        assert!(empty.is_empty());
    }

    #[test]
    fn locality_mode_is_bit_identical_to_serial() {
        let left = grid_points(20);
        let right = quadrant_polys(10.0);
        let engine = PreparedEngine;
        let serial = broadcast_index_join(&left, &right, SpatialPredicate::Within, &engine);
        for threads in [1, 2, 7] {
            for morsel_size in [16, 500] {
                let cfg = MorselConfig {
                    threads,
                    mode: ScheduleMode::StaticLocality,
                    morsel_size,
                };
                let par =
                    parallel_broadcast_join(&left, &right, SpatialPredicate::Within, &engine, cfg);
                assert_eq!(par, serial, "threads={threads} morsel={morsel_size}");
            }
        }
    }

    #[test]
    fn morsel_partitions_tag_dominant_cell() {
        // Two clusters far apart: morsels made purely of one cluster
        // must carry different tags.
        let mut left: Vec<PointRecord> = (0..64)
            .map(|i| (i, Point::new(0.1 + (i % 8) as f64 * 0.01, 0.1)))
            .collect();
        left.extend((64..128).map(|i| (i, Point::new(99.0 + (i % 8) as f64 * 0.01, 99.0))));
        let tags = morsel_partitions(&left, 64, LOCALITY_GRID_SIDE);
        assert_eq!(tags.len(), 2);
        assert_ne!(
            tags[0], tags[1],
            "distant clusters must map to distinct cells"
        );
        // Degenerate inputs.
        assert!(morsel_partitions(&[], 64, LOCALITY_GRID_SIDE).is_empty());
        let single = vec![(0i64, Point::new(3.0, 4.0))];
        assert_eq!(morsel_partitions(&single, 8, LOCALITY_GRID_SIDE), vec![0]);
    }

    #[test]
    fn partition_blocks_bound_runs_and_respect_cell_edges() {
        // A hot cell (six tags of 7) must split into blocks of <= 2;
        // cell boundaries always start a new block.
        let tags = [7, 7, 7, 7, 7, 7, 3, 3, 9];
        let blocks = partition_blocks(&tags, 2);
        assert_eq!(blocks, vec![0, 0, 1, 1, 2, 2, 3, 3, 4]);
        // Each block stays within one original partition.
        for b in 0..=4usize {
            let cells: Vec<usize> = tags
                .iter()
                .zip(&blocks)
                .filter(|&(_, &blk)| blk == b)
                .map(|(&t, _)| t)
                .collect();
            assert!(cells.windows(2).all(|w| w[0] == w[1]));
        }
        assert!(partition_blocks(&[], 4).is_empty());
        // cap 0 behaves as cap 1 rather than looping or panicking.
        assert_eq!(partition_blocks(&[5, 5, 5], 0), vec![0, 1, 2]);
    }

    #[test]
    fn spatial_sort_groups_cells_and_keeps_ids() {
        let mut pts: Vec<PointRecord> = (0..100)
            .map(|i| {
                let x = ((i * 37) % 100) as f64;
                let y = ((i * 53) % 100) as f64;
                (i as i64, Point::new(x, y))
            })
            .collect();
        let mut ids_before: Vec<i64> = pts.iter().map(|&(id, _)| id).collect();
        spatial_sort_points(&mut pts, 4);
        let mut ids_after: Vec<i64> = pts.iter().map(|&(id, _)| id).collect();
        ids_before.sort_unstable();
        ids_after.sort_unstable();
        assert_eq!(ids_before, ids_after, "sort must be a permutation");
        // Cells must appear in non-decreasing runs.
        let extent = points_extent(&pts);
        let cells: Vec<usize> = pts.iter().map(|&(_, p)| grid_cell(p, &extent, 4)).collect();
        assert!(cells.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timings_bridge_orders_by_index_and_carries_locality() {
        let timings = vec![
            cluster::TaskTiming {
                index: 2,
                worker: 0,
                secs: 0.3,
            },
            cluster::TaskTiming {
                index: 0,
                worker: 1,
                secs: 0.1,
            },
            cluster::TaskTiming {
                index: 1,
                worker: 0,
                secs: 0.2,
            },
        ];
        let partitions = vec![7usize, 9];
        let specs = timings_to_taskspecs(&timings, &partitions);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].cost, 0.1);
        assert_eq!(specs[0].locality, Some(7));
        assert_eq!(specs[1].locality, Some(9));
        // No tag for morsel 2: no locality preference.
        assert_eq!(specs[2].locality, None);
        assert_eq!(specs[2].cost, 0.3);
    }

    #[test]
    fn tagged_probe_matches_untimed_probe() {
        let left = grid_points(12);
        let right = quadrant_polys(6.0);
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);
        for mode in [
            ScheduleMode::Dynamic,
            ScheduleMode::Static,
            ScheduleMode::StaticLocality,
        ] {
            let cfg = MorselConfig {
                threads: 4,
                mode,
                morsel_size: 10,
            };
            let plain = set.par_probe(&left, &engine, cfg);
            let (tagged, timings, partitions) = set.par_probe_tagged(&left, &engine, cfg);
            assert_eq!(plain, tagged, "{mode:?}");
            assert_eq!(timings.len(), partitions.len(), "{mode:?}");
        }
    }

    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn faulted_probe_recovers_bit_identical_to_plain() {
        let left = grid_points(20);
        let right = quadrant_polys(10.0);
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);
        let cfg = MorselConfig {
            threads: 1,
            mode: ScheduleMode::Dynamic,
            morsel_size: 16,
        };
        let serial = set.par_probe(&left, &engine, cfg);
        let n_morsels = left.len().div_ceil(cfg.morsel_size);
        let policy = cluster::RetryPolicy::attempts(4);
        // Deterministic draws make "every morsel recovers" a pure
        // function of the seed — search for one where faults fire but
        // all clear within the retry budget.
        let seed = (0..10_000u64)
            .find(|&s| {
                let probe = cluster::Chaos::new(cluster::ChaosConfig::uniform(s, 0.3));
                let fired =
                    (0..n_morsels).any(|i| probe.panic_fires(ChaosSite::Morsel, i as u64, 0));
                let recovers = (0..n_morsels).all(|i| {
                    (0..policy.max_attempts)
                        .any(|a| !probe.panic_fires(ChaosSite::Morsel, i as u64, a))
                });
                fired && recovers
            })
            .expect("some seed recovers");
        for threads in [1, 2, 7] {
            let chaos = cluster::Chaos::new(cluster::ChaosConfig::uniform(seed, 0.3));
            let cfg = MorselConfig { threads, ..cfg };
            let (pairs, timings) = quiet_panics(|| {
                set.par_probe_faulted(&left, &engine, cfg, &chaos, policy)
                    .expect("all morsels recover")
            });
            assert_eq!(pairs, serial, "threads={threads}");
            assert_eq!(timings.len(), n_morsels);
            assert!(chaos.fault_count() > 0, "faults must actually fire");
        }
    }

    #[test]
    fn faulted_probe_disabled_takes_plain_path() {
        let left = grid_points(10);
        let right = quadrant_polys(5.0);
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);
        let cfg = MorselConfig::new(3);
        let chaos = cluster::Chaos::disabled();
        let (pairs, _) = set
            .par_probe_faulted(&left, &engine, cfg, &chaos, cluster::RetryPolicy::none())
            .expect("no faults possible");
        assert_eq!(pairs, set.par_probe(&left, &engine, cfg));
        assert_eq!(chaos.fault_count(), 0);
    }

    #[test]
    fn faulted_probe_reports_exhausted_morsels() {
        let left = grid_points(12);
        let right = quadrant_polys(6.0);
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);
        let cfg = MorselConfig {
            threads: 2,
            mode: ScheduleMode::Static,
            morsel_size: 16,
        };
        let chaos = cluster::Chaos::new(cluster::ChaosConfig {
            panic_rate: 1.0,
            ..cluster::ChaosConfig::uniform(5, 0.0)
        });
        let failures = quiet_panics(|| {
            set.par_probe_faulted(
                &left,
                &engine,
                cfg,
                &chaos,
                cluster::RetryPolicy::attempts(2),
            )
        })
        .expect_err("every attempt panics");
        assert_eq!(failures.len(), left.len().div_ceil(cfg.morsel_size));
        assert!(failures.iter().all(|f| f.attempts == 2));
    }

    #[test]
    fn empty_sides_yield_empty_output() {
        let engine = PreparedEngine;
        let cfg = MorselConfig::new(4);
        assert!(
            parallel_broadcast_join(&[], &[], SpatialPredicate::Within, &engine, cfg).is_empty()
        );
        let left = grid_points(3);
        assert!(
            parallel_broadcast_join(&left, &[], SpatialPredicate::Within, &engine, cfg).is_empty()
        );
        assert!(
            parallel_partitioned_join(&[], &[], SpatialPredicate::Within, &engine, 16, cfg)
                .is_empty()
        );
    }
}
