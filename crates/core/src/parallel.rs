//! Morsel-driven parallel join executor with prepare-once geometry
//! sharing.
//!
//! The paper's systems get their speed from running the broadcast
//! R-tree probe in parallel — dynamic task scheduling on Spark, static
//! OpenMP-style chunking in Impala (§IV–V). This module is the single
//! executor behind both: the right side is prepared **once** into a
//! shared [`PreparedSet`] (ids, expanded envelopes and engine-prepared
//! geometries, indexed by `u32`), and the left side is probed in
//! fixed-size morsels handed to [`cluster::run_morsels`] under either
//! [`ScheduleMode`].
//!
//! # Determinism contract
//!
//! Output is **bit-identical to the serial path at any thread count**:
//! the shared tree is bulk-loaded from the same envelope sequence as
//! the serial [`crate::join::build_right_index`] (STR packing is a
//! stable sort over envelopes, so the entry permutation and hence
//! traversal order are identical), and per-morsel output segments are
//! stitched back in input order by the driver. Scheduling only decides
//! *who* runs a morsel, never what it appends.
//!
//! # Prepare-once memory story
//!
//! The partitioned join replicates right geometries into every
//! partition they overlap. The paper's systems re-read and re-prepare
//! the replicated fragments per partition task; here a partition task
//! carries only `right_ids: &[u32]` into the shared set and builds a
//! subset R-tree over envelope *copies* — zero geometry clones
//! end-to-end.

use cluster::{run_morsels, run_tasks, ScheduleMode, TaskTiming};
use geom::engine::{RefinementEngine, SpatialPredicate};
use geom::{Envelope, HasEnvelope, Point};
use rtree::{probe_with, RTree};

use crate::join::partition_work;
use crate::{GeomRecord, JoinPair, PointRecord};

/// Default morsel size: small enough for dynamic scheduling to balance
/// skewed probe costs, large enough to amortise dispatch overhead.
pub const DEFAULT_MORSEL_SIZE: usize = 2048;

/// Parallelism settings for the morsel executor.
#[derive(Debug, Clone, Copy)]
pub struct MorselConfig {
    /// Worker threads (1 = serial inline execution).
    pub threads: usize,
    /// How morsels are handed to workers.
    pub mode: ScheduleMode,
    /// Left points per morsel.
    pub morsel_size: usize,
}

impl MorselConfig {
    /// `threads` workers, dynamic scheduling, default morsel size.
    pub fn new(threads: usize) -> MorselConfig {
        MorselConfig {
            threads: threads.max(1),
            mode: ScheduleMode::Dynamic,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }

    /// Single-threaded configuration (the serial reference path).
    pub fn serial() -> MorselConfig {
        MorselConfig::new(1)
    }
}

impl Default for MorselConfig {
    fn default() -> MorselConfig {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MorselConfig::new(threads)
    }
}

/// The right side of a join, prepared exactly once and shared by
/// reference across every morsel, partition task and system layer.
pub struct PreparedSet<E: RefinementEngine> {
    ids: Vec<i64>,
    /// Envelopes already expanded by the predicate's filter radius.
    envelopes: Vec<Envelope>,
    prepared: Vec<E::Prepared>,
    /// Filter tree over `u32` indices into the vectors above.
    tree: RTree<u32>,
    predicate: SpatialPredicate,
}

impl<E: RefinementEngine> PreparedSet<E> {
    /// Prepares `right` for `predicate`: one `engine.prepare` call per
    /// geometry, envelopes expanded by the filter radius, and an STR
    /// tree over the indices (same envelope sequence as the serial
    /// [`crate::join::build_right_index`], hence the same packing).
    pub fn prepare(
        right: &[GeomRecord],
        predicate: SpatialPredicate,
        engine: &E,
    ) -> PreparedSet<E> {
        let radius = predicate.filter_radius();
        let mut ids = Vec::with_capacity(right.len());
        let mut envelopes = Vec::with_capacity(right.len());
        let mut prepared = Vec::with_capacity(right.len());
        for (id, g) in right {
            ids.push(*id);
            envelopes.push(g.envelope().expanded_by(radius));
            prepared.push(engine.prepare(g));
        }
        let entries: Vec<(Envelope, u32)> = envelopes
            .iter()
            .enumerate()
            .map(|(i, &env)| (env, i as u32))
            .collect();
        PreparedSet {
            ids,
            envelopes,
            prepared,
            tree: RTree::bulk_load_entries(entries),
            predicate,
        }
    }

    /// Number of prepared right-side records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the right side is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The predicate the set was prepared for.
    pub fn predicate(&self) -> SpatialPredicate {
        self.predicate
    }

    /// Probes the shared tree with one point, appending matches.
    #[inline]
    pub fn probe_into(&self, engine: &E, left_id: i64, p: Point, out: &mut Vec<JoinPair>) {
        probe_with(
            &self.tree,
            self.predicate,
            engine,
            left_id,
            p,
            |&i| (self.ids[i as usize], &self.prepared[i as usize]),
            out,
        );
    }

    /// Probes one morsel of left points — the body every worker thread
    /// runs. Geometry is reached through the shared set by index.
    pub fn probe_slice(&self, engine: &E, morsel: &[PointRecord], out: &mut Vec<JoinPair>) {
        // tidy:alloc-free:start
        for &(id, p) in morsel {
            self.probe_into(engine, id, p, out);
        }
        // tidy:alloc-free:end
    }

    /// Builds a filter tree over a subset of the right side, given as
    /// indices into this set. Only envelopes are copied — the prepared
    /// geometries stay shared.
    pub fn subset_tree(&self, right_ids: &[u32]) -> RTree<u32> {
        let entries: Vec<(Envelope, u32)> = right_ids
            .iter()
            .map(|&ri| (self.envelopes[ri as usize], ri))
            .collect();
        RTree::bulk_load_entries(entries)
    }

    /// Probes a [`PreparedSet::subset_tree`] with one point.
    #[inline]
    pub fn probe_subset(
        &self,
        subset: &RTree<u32>,
        engine: &E,
        left_id: i64,
        p: Point,
        out: &mut Vec<JoinPair>,
    ) {
        probe_with(
            subset,
            self.predicate,
            engine,
            left_id,
            p,
            |&i| (self.ids[i as usize], &self.prepared[i as usize]),
            out,
        );
    }

    /// Probes `left` in parallel morsels, returning pairs in the same
    /// order the serial loop would emit them.
    pub fn par_probe(&self, left: &[PointRecord], engine: &E, cfg: MorselConfig) -> Vec<JoinPair> {
        self.par_probe_timed(left, engine, cfg).0
    }

    /// [`PreparedSet::par_probe`] plus per-morsel wall-clock timings
    /// (indexed by morsel position), for replay through the cluster
    /// simulator.
    pub fn par_probe_timed(
        &self,
        left: &[PointRecord],
        engine: &E,
        cfg: MorselConfig,
    ) -> (Vec<JoinPair>, Vec<TaskTiming>) {
        let morsels: Vec<&[PointRecord]> = left.chunks(cfg.morsel_size.max(1)).collect();
        run_morsels(&morsels, cfg.threads, cfg.mode, |morsel, out| {
            self.probe_slice(engine, morsel, out)
        })
    }
}

/// The morsel-parallel broadcast join: prepare the right side once,
/// probe the left side in parallel. Bit-identical to
/// [`crate::join::broadcast_index_join`] at any thread count.
pub fn parallel_broadcast_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    cfg: MorselConfig,
) -> Vec<JoinPair> {
    let set = PreparedSet::prepare(right, predicate, engine);
    set.par_probe(left, engine, cfg)
}

/// The morsel-parallel partitioned join: partitions carry `right_ids`
/// into the shared [`PreparedSet`]; each task builds a subset filter
/// tree over envelope copies and probes its own points. Matches the
/// serial partitioned join's sorted-deduplicated contract.
pub fn parallel_partitioned_join<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
    target_points_per_partition: usize,
    cfg: MorselConfig,
) -> Vec<JoinPair> {
    let set = PreparedSet::prepare(right, predicate, engine);
    let work = partition_work(left, right, predicate, target_points_per_partition);
    let tasks: Vec<&crate::join::PartitionTask> = work
        .partitions
        .iter()
        .filter(|t| !t.left.is_empty() && !t.right_ids.is_empty())
        .collect();
    let (per_task, _) = run_tasks(tasks, cfg.threads, cfg.mode, |task| {
        let subset = set.subset_tree(&task.right_ids);
        let mut out = Vec::new();
        for &(id, p) in &task.left {
            set.probe_subset(&subset, engine, id, p, &mut out);
        }
        out
    });
    let mut out: Vec<JoinPair> = per_task.into_iter().flatten().collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::broadcast_index_join;
    use geom::engine::PreparedEngine;
    use geom::{Geometry, Polygon};

    fn grid_points(n: usize) -> Vec<PointRecord> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((
                    (i * n + j) as i64,
                    Point::new(i as f64 + 0.5, j as f64 + 0.5),
                ));
            }
        }
        v
    }

    fn quadrant_polys(half: f64) -> Vec<GeomRecord> {
        let q = |id, x0: f64, y0: f64| {
            (
                id,
                Geometry::Polygon(Polygon::rectangle(Envelope::new(
                    x0,
                    y0,
                    x0 + half,
                    y0 + half,
                ))),
            )
        };
        vec![
            q(0, 0.0, 0.0),
            q(1, half, 0.0),
            q(2, 0.0, half),
            q(3, half, half),
        ]
    }

    #[test]
    fn parallel_broadcast_is_bit_identical_to_serial() {
        let left = grid_points(20);
        let right = quadrant_polys(10.0);
        let engine = PreparedEngine;
        let serial = broadcast_index_join(&left, &right, SpatialPredicate::Within, &engine);
        for threads in [1, 2, 4, 7] {
            for mode in [ScheduleMode::Dynamic, ScheduleMode::Static] {
                for morsel_size in [3, 64, 100_000] {
                    let cfg = MorselConfig {
                        threads,
                        mode,
                        morsel_size,
                    };
                    let par = parallel_broadcast_join(
                        &left,
                        &right,
                        SpatialPredicate::Within,
                        &engine,
                        cfg,
                    );
                    assert_eq!(
                        par, serial,
                        "threads={threads} mode={mode:?} morsel={morsel_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_partitioned_matches_serial_partitioned() {
        let left = grid_points(12);
        let right = quadrant_polys(6.0);
        let engine = PreparedEngine;
        let serial =
            crate::join::partitioned_join(&left, &right, SpatialPredicate::Within, &engine, 10);
        for threads in [1, 4] {
            let cfg = MorselConfig::new(threads);
            let par = parallel_partitioned_join(
                &left,
                &right,
                SpatialPredicate::Within,
                &engine,
                10,
                cfg,
            );
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn prepared_set_reports_size_and_predicate() {
        let engine = PreparedEngine;
        let set = PreparedSet::prepare(&quadrant_polys(2.0), SpatialPredicate::Within, &engine);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!(set.predicate(), SpatialPredicate::Within);
        let empty = PreparedSet::prepare(&[], SpatialPredicate::Within, &engine);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_sides_yield_empty_output() {
        let engine = PreparedEngine;
        let cfg = MorselConfig::new(4);
        assert!(
            parallel_broadcast_join(&[], &[], SpatialPredicate::Within, &engine, cfg).is_empty()
        );
        let left = grid_points(3);
        assert!(
            parallel_broadcast_join(&left, &[], SpatialPredicate::Within, &engine, cfg).is_empty()
        );
        assert!(
            parallel_partitioned_join(&[], &[], SpatialPredicate::Within, &engine, 16, cfg)
                .is_empty()
        );
    }
}
