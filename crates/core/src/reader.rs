//! Record parsing with per-line error reporting.
//!
//! The paper's Fig. 2 drops malformed rows silently
//! (`Try(...).filter(_.isSuccess)`), which the old `Option`-returning
//! `parse_*_record` family reproduced — bad lines simply vanished. A
//! [`RecordReader`] instead returns a typed [`RecordError`] per line
//! and counts parsed/skipped lines into `obs`, so a run's record-drop
//! rate shows up in its `RunStats` instead of disappearing. The
//! `Option` shims in [`crate::join`] remain for one release and
//! delegate here.

use geom::error::GeomError;
use geom::Geometry;

use crate::{GeomRecord, PointRecord};

/// Why one input line failed to parse into a record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// The id column did not parse as an `i64`.
    BadId,
    /// The line has no column at the configured geometry index.
    MissingColumn,
    /// The geometry column is not valid WKT.
    Wkt(GeomError),
    /// The geometry parsed but is not a point (point readers only).
    NotAPoint,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadId => write!(f, "id column is not an integer"),
            RecordError::MissingColumn => write!(f, "geometry column missing"),
            RecordError::Wkt(e) => write!(f, "bad WKT: {e}"),
            RecordError::NotAPoint => write!(f, "geometry is not a point"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Parses the paper's `id \t … \t wkt` record layout, one line at a
/// time, reporting a [`RecordError`] per malformed line and counting
/// parsed/skipped lines into `obs`.
#[derive(Debug, Clone, Copy)]
pub struct RecordReader {
    geom_col: usize,
}

impl RecordReader {
    /// A reader expecting the WKT in tab-separated column `geom_col`
    /// (the paper's layout is `id \t wkt`, i.e. `geom_col == 1`).
    pub fn new(geom_col: usize) -> RecordReader {
        RecordReader { geom_col }
    }

    /// Splits one line exactly once, returning the parsed id and the
    /// raw WKT column. The dominant layout (`geom_col == 1`) takes a
    /// direct fast path; other layouts skip ahead on the same iterator
    /// instead of re-splitting the line.
    #[inline]
    fn split<'l>(&self, line: &'l str) -> Result<(i64, &'l str), RecordError> {
        let mut cols = line.split('\t');
        let id_col = cols.next().unwrap_or("");
        let id = id_col
            .trim()
            .parse::<i64>()
            .map_err(|_| RecordError::BadId)?;
        let wkt = match self.geom_col {
            0 => id_col,
            1 => cols.next().ok_or(RecordError::MissingColumn)?,
            n => cols.nth(n - 1).ok_or(RecordError::MissingColumn)?,
        };
        Ok((id, wkt))
    }

    /// Parses one line into a point record, without touching obs — the
    /// counting entry points below wrap this.
    fn parse_point(&self, line: &str) -> Result<PointRecord, RecordError> {
        let (id, wkt) = self.split(line)?;
        let g = geom::wkt::parse(wkt).map_err(RecordError::Wkt)?;
        g.as_point().map(|p| (id, p)).ok_or(RecordError::NotAPoint)
    }

    /// Parses one line into a geometry record, without touching obs.
    fn parse_geom(&self, line: &str) -> Result<GeomRecord, RecordError> {
        let (id, wkt) = self.split(line)?;
        let g: Geometry = geom::wkt::parse(wkt).map_err(RecordError::Wkt)?;
        Ok((id, g))
    }

    /// Parses one `id \t wkt` line into a point record, counting the
    /// outcome into obs.
    pub fn read_point(&self, line: &str) -> Result<PointRecord, RecordError> {
        let r = self.parse_point(line);
        match &r {
            Ok(_) => obs::records(1, 0),
            Err(_) => obs::records(0, 1),
        }
        r
    }

    /// Parses one `id \t wkt` line into a geometry record, counting the
    /// outcome into obs.
    pub fn read_geom(&self, line: &str) -> Result<GeomRecord, RecordError> {
        let r = self.parse_geom(line);
        match &r {
            Ok(_) => obs::records(1, 0),
            Err(_) => obs::records(0, 1),
        }
        r
    }

    /// Parses many lines into point records, dropping malformed lines.
    /// Returns the records plus the number of lines skipped; one obs
    /// flush for the whole batch.
    pub fn read_points(&self, lines: &[String]) -> (Vec<PointRecord>, usize) {
        let mut out = Vec::with_capacity(lines.len());
        let mut skipped = 0usize;
        for line in lines {
            match self.parse_point(line) {
                Ok(rec) => out.push(rec),
                Err(_) => skipped += 1,
            }
        }
        obs::records(out.len() as u64, skipped as u64);
        (out, skipped)
    }

    /// Parses many lines into geometry records, dropping malformed
    /// lines. Returns the records plus the number of lines skipped; one
    /// obs flush for the whole batch.
    pub fn read_geoms(&self, lines: &[String]) -> (Vec<GeomRecord>, usize) {
        let mut out = Vec::with_capacity(lines.len());
        let mut skipped = 0usize;
        for line in lines {
            match self.parse_geom(line) {
                Ok(rec) => out.push(rec),
                Err(_) => skipped += 1,
            }
        }
        obs::records(out.len() as u64, skipped as u64);
        (out, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;

    #[test]
    fn reader_reports_typed_errors() {
        let r = RecordReader::new(1);
        assert_eq!(
            r.read_point("0\tPOINT (1 2)"),
            Ok((0, Point::new(1.0, 2.0)))
        );
        assert_eq!(r.read_point("x\tPOINT (1 2)"), Err(RecordError::BadId));
        assert_eq!(r.read_point("3"), Err(RecordError::MissingColumn));
        assert!(matches!(
            r.read_point("3\tPOINT (banana)"),
            Err(RecordError::Wkt(_))
        ));
        assert_eq!(
            r.read_point("3\tLINESTRING (0 0, 1 1)"),
            Err(RecordError::NotAPoint)
        );
        // Geometry reads accept any valid WKT.
        assert!(r.read_geom("3\tLINESTRING (0 0, 1 1)").is_ok());
        assert!(matches!(r.read_geom("3\tnope"), Err(RecordError::Wkt(_))));
    }

    #[test]
    fn reader_honours_geom_column() {
        let line = "7\tpayload\tPOINT (1 2)";
        assert_eq!(
            RecordReader::new(2).read_point(line),
            Ok((7, Point::new(1.0, 2.0)))
        );
        assert_eq!(
            RecordReader::new(9).read_point(line),
            Err(RecordError::MissingColumn)
        );
        // geom_col == 0 asks the id column to parse as WKT too, which
        // an i64 never does.
        assert!(matches!(
            RecordReader::new(0).read_point(line),
            Err(RecordError::Wkt(_))
        ));
    }

    #[test]
    fn batch_reads_count_skips() {
        let lines = vec![
            "0\tPOINT (1 2)".to_string(),
            "not-a-record".to_string(),
            "1\tPOLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))".to_string(),
            "2\tPOINT (3 4)".to_string(),
        ];
        let r = RecordReader::new(1);
        let (pts, skipped) = r.read_points(&lines);
        assert_eq!(pts.len(), 2);
        assert_eq!(skipped, 2); // garbage line + polygon
        let (geoms, skipped) = r.read_geoms(&lines);
        assert_eq!(geoms.len(), 3); // polygon parses as a geometry
        assert_eq!(skipped, 1);
    }

    #[test]
    fn reads_count_into_obs() {
        std::thread::spawn(|| {
            let before = obs::thread_snapshot();
            let r = RecordReader::new(1);
            let lines = vec!["0\tPOINT (1 2)".to_string(), "garbage".to_string()];
            let _ = r.read_points(&lines);
            let _ = r.read_point("1\tPOINT (0 0)");
            let _ = r.read_point("broken");
            let delta = obs::thread_snapshot().minus(&before);
            assert_eq!(delta.records_parsed, 2);
            assert_eq!(delta.records_skipped, 2);
        })
        .join()
        .unwrap();
    }
}
