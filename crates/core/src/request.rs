//! The unified join front door.
//!
//! The workspace grew ~6 divergent join entry points — serial
//! broadcast, nearest, nested-loop, partitioned, and the two parallel
//! variants — each threading predicate/engine/config through its own
//! signature and none reporting what the executor actually did. A
//! [`JoinRequest`] replaces them: one builder selects predicate,
//! strategy and [`MorselConfig`], and [`JoinRequest::run`] returns a
//! [`JoinOutcome`] carrying both the pairs and an [`obs::RunStats`]
//! tree collected uniformly (counters via thread-snapshot deltas,
//! per-worker busy/wait from the pool's observed entry points). The
//! old entry points survive as thin wrappers, bit-identical to their
//! pre-redesign outputs.

use geom::engine::{RefinementEngine, SpatialPredicate};
use geom::Envelope;

use crate::parallel::{parallel_partitioned_join_observed, MorselConfig, PreparedSet};
use crate::{GeomRecord, JoinPair, PointRecord};
use cluster::ScheduleMode;

/// Which join algorithm executes the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Index the right side once, probe every left point (the paper's
    /// broadcast join; morsel-parallel under [`MorselConfig`]).
    Broadcast,
    /// The O(|L|·|R|) cross-join-then-filter baseline of §II.
    NestedLoop,
    /// Quadtree-partitioned join (the SpatialHadoop strategy):
    /// partitions become pool tasks.
    Partitioned {
        /// Target number of left points per partition cell.
        target_points_per_partition: usize,
    },
}

/// A configured join, ready to run. Construct with
/// [`JoinRequest::new`], refine with the builder methods, execute with
/// [`JoinRequest::run`].
pub struct JoinRequest<'a, E: RefinementEngine> {
    left: &'a [PointRecord],
    right: &'a [GeomRecord],
    engine: &'a E,
    predicate: SpatialPredicate,
    strategy: JoinStrategy,
    cfg: MorselConfig,
}

/// What a join produced: the matched pairs plus the run's observability
/// tree.
pub struct JoinOutcome {
    /// Matched `(left id, right id)` pairs, in the strategy's canonical
    /// order (bit-identical to the pre-redesign entry points).
    pub pairs: Vec<JoinPair>,
    /// Counters, per-worker accounting and span timings for the run.
    pub stats: obs::RunStats,
}

impl<'a, E: RefinementEngine> JoinRequest<'a, E> {
    /// A broadcast `Within` join on one thread — override with the
    /// builder methods below.
    pub fn new(left: &'a [PointRecord], right: &'a [GeomRecord], engine: &'a E) -> Self {
        JoinRequest {
            left,
            right,
            engine,
            predicate: SpatialPredicate::Within,
            strategy: JoinStrategy::Broadcast,
            cfg: MorselConfig::serial(),
        }
    }

    /// Sets the join predicate.
    pub fn predicate(mut self, predicate: SpatialPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Arg-min nearest join: the single nearest right geometry within
    /// `max_distance` per point (ties to the smaller right id).
    pub fn nearest(self, max_distance: f64) -> Self {
        self.predicate(SpatialPredicate::Nearest(max_distance))
    }

    /// Range nearest join: every right geometry within `max_distance`.
    pub fn nearest_within(self, max_distance: f64) -> Self {
        self.predicate(SpatialPredicate::NearestD(max_distance))
    }

    /// Switches to the nested-loop baseline strategy.
    pub fn nested_loop(mut self) -> Self {
        self.strategy = JoinStrategy::NestedLoop;
        self
    }

    /// Switches to the partitioned strategy with the given target cell
    /// size.
    pub fn partitioned(mut self, target_points_per_partition: usize) -> Self {
        self.strategy = JoinStrategy::Partitioned {
            target_points_per_partition,
        };
        self
    }

    /// Sets worker thread count (keeps the current mode/morsel size).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads.max(1);
        self
    }

    /// Sets the pool schedule mode.
    pub fn schedule(mut self, mode: ScheduleMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets left points per morsel.
    pub fn morsel_size(mut self, morsel_size: usize) -> Self {
        self.cfg.morsel_size = morsel_size.max(1);
        self
    }

    /// Replaces the whole parallelism configuration.
    pub fn config(mut self, cfg: MorselConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Executes the join.
    ///
    /// Counter collection: a thread-snapshot delta around the run
    /// captures everything counted on the calling thread (serial and
    /// inline paths), and the pool's observed entry points hand back
    /// scoped-worker counters, which are folded into the calling
    /// thread's cells before the final snapshot — so `stats.counters`
    /// is exact at any thread count, and an *outer* snapshot delta
    /// around this call still sees every count exactly once.
    pub fn run(self) -> JoinOutcome {
        let before = obs::thread_snapshot();
        let run_timer = obs::SpanTimer::start("run");
        let mut stats = obs::RunStats::new(match self.strategy {
            JoinStrategy::Broadcast => "join:broadcast",
            JoinStrategy::NestedLoop => "join:nested-loop",
            JoinStrategy::Partitioned { .. } => "join:partitioned",
        });

        let pairs = match self.strategy {
            JoinStrategy::Broadcast => {
                let prepare_timer = obs::SpanTimer::start("prepare");
                let set = PreparedSet::prepare(self.right, self.predicate, self.engine);
                stats.spans.push(prepare_timer.finish());
                let probe_timer = obs::SpanTimer::start("probe");
                let (pairs, _, exec) = set.par_probe_observed(self.left, self.engine, self.cfg);
                stats.spans.push(probe_timer.finish());
                obs::add_thread(&exec.worker_counters);
                stats.workers = exec.workers;
                pairs
            }
            JoinStrategy::NestedLoop => {
                nested_loop_pairs(self.left, self.right, self.predicate, self.engine)
            }
            JoinStrategy::Partitioned {
                target_points_per_partition,
            } => {
                let (pairs, exec) = parallel_partitioned_join_observed(
                    self.left,
                    self.right,
                    self.predicate,
                    self.engine,
                    target_points_per_partition,
                    self.cfg,
                );
                obs::add_thread(&exec.worker_counters);
                stats.workers = exec.workers;
                pairs
            }
        };

        stats.spans.push(run_timer.finish());
        stats.counters = obs::thread_snapshot().minus(&before);
        JoinOutcome { pairs, stats }
    }
}

/// The nested-loop baseline, instrumented: every left×right pair whose
/// expanded envelope contains the point counts as a filter hit and a
/// refinement call; accepted pairs count as refine accepts. One obs
/// flush for the whole join.
fn nested_loop_pairs<E: RefinementEngine>(
    left: &[PointRecord],
    right: &[GeomRecord],
    predicate: SpatialPredicate,
    engine: &E,
) -> Vec<JoinPair> {
    use geom::HasEnvelope;
    let radius = predicate.filter_radius();
    let prepared: Vec<(i64, Envelope, E::Prepared)> = right
        .iter()
        .map(|(id, g)| (*id, g.envelope().expanded_by(radius), engine.prepare(g)))
        .collect();
    let mut out = Vec::new();
    let mut candidates: u64 = 0;
    let mut accepts: u64 = 0;
    for &(lid, p) in left {
        for (rid, env, target) in &prepared {
            if env.contains(p.x, p.y) {
                candidates += 1;
                if predicate.eval(engine, p, target) {
                    accepts += 1;
                    out.push((lid, *rid));
                }
            }
        }
    }
    obs::filter_refine(candidates, accepts);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::engine::PreparedEngine;
    use geom::{Geometry, Point, Polygon};

    fn grid_points(n: usize) -> Vec<PointRecord> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((
                    (i * n + j) as i64,
                    Point::new(i as f64 + 0.5, j as f64 + 0.5),
                ));
            }
        }
        v
    }

    fn quadrant_polys(half: f64) -> Vec<GeomRecord> {
        let q = |id, x0: f64, y0: f64| {
            (
                id,
                Geometry::Polygon(Polygon::rectangle(Envelope::new(
                    x0,
                    y0,
                    x0 + half,
                    y0 + half,
                ))),
            )
        };
        vec![
            q(0, 0.0, 0.0),
            q(1, half, 0.0),
            q(2, 0.0, half),
            q(3, half, half),
        ]
    }

    #[test]
    fn outcome_carries_pairs_and_stats() {
        let left = grid_points(10);
        let right = quadrant_polys(5.0);
        let engine = PreparedEngine;
        let outcome = JoinRequest::new(&left, &right, &engine).threads(2).run();
        assert_eq!(outcome.pairs.len(), 100);
        assert_eq!(outcome.stats.name, "join:broadcast");
        // Every emitted pair required at least one refinement call.
        assert!(outcome.stats.counters.refine_calls >= outcome.pairs.len() as u64);
        // Within accepts exactly the emitted pairs.
        assert_eq!(outcome.stats.counters.refine_accepts, 100);
        assert!(outcome.stats.span("run").is_some());
        assert!(outcome.stats.span("prepare").is_some());
        assert!(outcome.stats.span("probe").is_some());
        assert!(!outcome.stats.workers.is_empty());
        assert_eq!(outcome.stats.counters.morsels_executed, {
            let morsels = left.len().div_ceil(crate::parallel::DEFAULT_MORSEL_SIZE);
            morsels as u64
        });
    }

    #[test]
    fn strategies_agree_and_report_their_names() {
        let left = grid_points(8);
        let right = quadrant_polys(4.0);
        let engine = PreparedEngine;
        let broadcast = JoinRequest::new(&left, &right, &engine).run();
        let nested = JoinRequest::new(&left, &right, &engine).nested_loop().run();
        let parted = JoinRequest::new(&left, &right, &engine)
            .partitioned(10)
            .run();
        assert_eq!(
            crate::normalize_pairs(broadcast.pairs),
            crate::normalize_pairs(nested.pairs)
        );
        assert_eq!(nested.stats.name, "join:nested-loop");
        assert_eq!(parted.stats.name, "join:partitioned");
        assert!(parted.stats.counters.refine_calls > 0);
    }

    #[test]
    fn counts_flow_to_outer_snapshot_exactly_once() {
        let left = grid_points(10);
        let right = quadrant_polys(5.0);
        std::thread::spawn(move || {
            let engine = PreparedEngine;
            let before = obs::thread_snapshot();
            let outcome = JoinRequest::new(&left, &right, &engine).threads(3).run();
            let delta = obs::thread_snapshot().minus(&before);
            // The outer delta and the reported stats agree: worker
            // counts were folded in exactly once.
            assert_eq!(delta, outcome.stats.counters);
            assert_eq!(delta.refine_accepts, 100);
        })
        .join()
        .unwrap();
    }
}
