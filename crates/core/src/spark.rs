//! SpatialSpark: the broadcast spatial join as dataset transformations.
//!
//! A faithful port of the paper's Fig. 2 skeleton onto sparklet:
//!
//! 1. `textFile` the left side (one partition per HDFS block),
//! 2. `map` each line through the WKT reader, dropping failures,
//! 3. collect the (small) right side on the driver, build an STR-tree
//!    of *prepared* (JTS-like) geometries with envelopes expanded by
//!    the query radius, and broadcast it,
//! 4. `flatMap` every left point through an R-tree probe plus
//!    refinement.
//!
//! Dynamic task scheduling and the JTS-like refinement engine are what
//! distinguish this system from ISP-MC in the paper's results.

use cluster::{ClusterSpec, NetworkModel, Scheduler, TaskSpec};
use geom::engine::{FlatEngine, SpatialPredicate};
use minihdfs::MiniDfs;
use sparklet::{JobReport, SparkConf, SparkContext, StageMetrics};
use std::time::Instant;

use crate::error::SpatialJoinError;
use crate::parallel::PreparedSet;
use crate::reader::RecordReader;
use crate::JoinPair;

/// The SpatialSpark system: a spark context plus the join driver.
pub struct SpatialSpark {
    sc: SparkContext,
}

/// One completed SpatialSpark join.
pub struct SpatialSparkRun {
    /// Matched `(left id, right id)` pairs.
    pub pairs: Vec<JoinPair>,
    /// Recorded stage metrics for replay.
    pub report: JobReport,
    cluster: ClusterSpec,
    network: NetworkModel,
}

impl SpatialSparkRun {
    /// Simulated wall-clock runtime on `num_nodes` nodes of the
    /// configured node type, under Spark's dynamic scheduling.
    pub fn simulated_runtime(&self, num_nodes: usize) -> f64 {
        let spec = ClusterSpec {
            num_nodes,
            ..self.cluster
        };
        self.report
            .simulate_runtime(&spec, &self.network, Scheduler::Dynamic)
    }

    /// Number of result pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Total measured CPU seconds across stages.
    pub fn total_work(&self) -> f64 {
        self.report.total_work()
    }

    /// The run's stage metrics rebased onto the workspace observability
    /// layer: one `RunStats` child per recorded stage.
    pub fn run_stats(&self) -> obs::RunStats {
        self.report.to_run_stats("spatialspark")
    }
}

impl SpatialSpark {
    /// Creates the system over a file system.
    pub fn new(conf: SparkConf, dfs: MiniDfs) -> SpatialSpark {
        SpatialSpark {
            sc: SparkContext::new(conf, dfs),
        }
    }

    /// The underlying context (for custom pipelines).
    pub fn context(&self) -> &SparkContext {
        &self.sc
    }

    /// Runs the broadcast indexed spatial join between two WKT text
    /// files (`id \t wkt` records).
    ///
    /// Resets the context's metrics: the returned report covers exactly
    /// this job, mirroring a fresh `spark-submit` per experiment.
    ///
    /// # Errors
    /// Fails when either path is missing.
    pub fn broadcast_spatial_join(
        &self,
        left_path: &str,
        right_path: &str,
        predicate: SpatialPredicate,
    ) -> Result<SpatialSparkRun, SpatialJoinError> {
        self.sc.reset_metrics();
        let engine = FlatEngine;
        let reader = RecordReader::new(1);

        // --- driver side: collect right, prepare once, broadcast ---
        let right_stat = self.sc.dfs().stat(right_path)?;
        let right_lines = self.sc.dfs().read_all_lines(right_path)?;
        let t0 = Instant::now();
        let (right_records, _) = reader.read_geoms(&right_lines);
        let set = PreparedSet::prepare(&right_records, predicate, &engine);
        let build_secs = t0.elapsed().as_secs_f64();
        self.sc.record_stage(StageMetrics {
            name: "driver:collect+build-strtree".into(),
            tasks: vec![TaskSpec::of_cost(build_secs)],
            broadcast_bytes: 0,
            shuffle_bytes: 0,
        });
        let broadcast = self.sc.broadcast(set, right_stat.total_bytes as u64);
        self.sc
            .record_movement("broadcast:strtree", broadcast.approx_bytes(), 0);

        // --- executors: parse left, probe the shared prepared set ---
        let left = self.sc.text_file(left_path)?;
        let parsed = left.map("map:parse-wkt", move |line: &String| {
            reader.read_point(line).ok()
        });
        let set_ref = broadcast.clone();
        let pairs_ds = parsed.flat_map_with("flatMap:rtree-probe+refine", move |rec, out| {
            if let Some((id, p)) = rec {
                set_ref.value().probe_into(&engine, *id, *p, out);
            }
        });
        let pairs = pairs_ds.collect();

        Ok(SpatialSparkRun {
            pairs,
            report: self.sc.job_report(),
            cluster: self.sc.conf().cluster,
            network: self.sc.conf().network,
        })
    }
}

impl SpatialSpark {
    /// The spatially *partitioned* join — the SpatialHadoop/HadoopGIS
    /// strategy of §II expressed in dataset operations, kept as the
    /// alternative to the broadcast join for right sides too large to
    /// replicate:
    ///
    /// 1. parse the left side and sample it on the driver,
    /// 2. build an STR partitioner (SpatialHadoop's default) from the
    ///    sample,
    /// 3. shuffle left points to their owning cell (`partition_by`) and
    ///    replicate right geometries to every cell their expanded
    ///    envelope overlaps (shuffle bytes recorded for the replay),
    /// 4. run an indexed join inside each cell
    ///    (`mapPartitionsWithIndex`), deduplicating nothing — a point
    ///    lives in exactly one cell, so no pair is emitted twice.
    ///
    /// # Errors
    /// Fails when either path is missing.
    pub fn partitioned_spatial_join(
        &self,
        left_path: &str,
        right_path: &str,
        predicate: SpatialPredicate,
        target_cells: usize,
    ) -> Result<SpatialSparkRun, SpatialJoinError> {
        use geom::HasEnvelope;
        use rtree::{SpatialPartitioner, StrPartitioner};

        self.sc.reset_metrics();
        let engine = FlatEngine;
        let reader = RecordReader::new(1);
        let radius = predicate.filter_radius();

        // --- parse left side ---
        let left = self.sc.text_file(left_path)?;
        let parsed = left.map("map:parse-wkt", move |line: &String| {
            reader.read_point(line).ok()
        });

        // --- driver: sample + build the STR partitioner ---
        let right_lines = self.sc.dfs().read_all_lines(right_path)?;
        let t0 = Instant::now();
        let (right_records, _) = reader.read_geoms(&right_lines);
        let set = PreparedSet::prepare(&right_records, predicate, &engine);
        let all_points: Vec<geom::Point> = parsed
            .collect()
            .into_iter()
            .flatten()
            .map(|(_, p)| p)
            .collect();
        let mut extent = geom::Envelope::EMPTY;
        for p in &all_points {
            extent.expand_to(p.x, p.y);
        }
        for (_, g) in &right_records {
            extent = extent.union(&g.envelope().expanded_by(radius));
        }
        let stride = (all_points.len() / 10_000).max(1);
        let sample: Vec<geom::Point> = all_points.iter().step_by(stride).copied().collect();
        let partitioner = StrPartitioner::build(extent, &sample, target_cells.max(1));
        let num_cells = partitioner.num_cells();
        self.sc.record_stage(StageMetrics {
            name: "driver:sample+build-partitioner".into(),
            tasks: vec![TaskSpec::of_cost(t0.elapsed().as_secs_f64())],
            broadcast_bytes: 0,
            shuffle_bytes: 0,
        });

        // --- shuffle left points to their owning cell ---
        let tagged = parsed.flat_map("map:tag-cell", |rec| match rec {
            Some((id, p)) => match partitioner.cell_of(*p) {
                Some(cell) => vec![(cell, (*id, *p))],
                None => vec![],
            },
            None => vec![],
        });
        let shuffled = tagged.partition_by(num_cells, |(cell, _)| *cell, |_| 24);

        // --- replicate right geometries to overlapping cells ---
        let mut per_cell_right: Vec<Vec<u32>> = vec![Vec::new(); num_cells];
        let mut replicated_bytes = 0u64;
        for (ri, (_, g)) in right_records.iter().enumerate() {
            let env = g.envelope().expanded_by(radius);
            for cell in partitioner.cells_intersecting(&env) {
                per_cell_right[cell].push(ri as u32);
                replicated_bytes += (g.num_points() * 16 + 16) as u64;
            }
        }
        self.sc
            .record_movement("shuffle:replicate-right", 0, replicated_bytes);

        // --- per-cell indexed join over the shared prepared set:
        // partition tasks carry right-side *indices*, build a subset
        // filter tree over envelope copies, and never clone geometry ---
        let set_ref = &set;
        let per_cell_ref = &per_cell_right;
        let pairs_ds = shuffled.map_partitions_indexed(
            "mapPartitions:local-index-join",
            move |cell, records: &[(usize, (i64, geom::Point))]| {
                if records.is_empty() || per_cell_ref[cell].is_empty() {
                    return Vec::new();
                }
                let subset = set_ref.subset_tree(&per_cell_ref[cell]);
                let mut out = Vec::new();
                for &(_, (id, p)) in records {
                    set_ref.probe_subset(&subset, &engine, id, p, &mut out);
                }
                out
            },
        );
        let pairs = pairs_ds.collect();

        Ok(SpatialSparkRun {
            pairs,
            report: self.sc.job_report(),
            cluster: self.sc.conf().cluster,
            network: self.sc.conf().network,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system_with_grid() -> SpatialSpark {
        let dfs = MiniDfs::new(4, 512).unwrap();
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(format!(
                    "{}\tPOINT ({} {})",
                    i * 10 + j,
                    i as f64 + 0.5,
                    j as f64 + 0.5
                ));
            }
        }
        dfs.write_lines("/pnt", &pts).unwrap();
        dfs.write_lines(
            "/poly",
            [
                "0\tPOLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))",
                "1\tPOLYGON ((5 0, 10 0, 10 5, 5 5, 5 0))",
                "2\tPOLYGON ((0 5, 5 5, 5 10, 0 10, 0 5))",
                "3\tPOLYGON ((5 5, 10 5, 10 10, 5 10, 5 5))",
            ],
        )
        .unwrap();
        dfs.write_lines(
            "/roads",
            ["0\tLINESTRING (0 0, 10 0)", "1\tLINESTRING (0 9, 10 9)"],
        )
        .unwrap();
        SpatialSpark::new(SparkConf::default(), dfs)
    }

    #[test]
    fn within_join_end_to_end() {
        let sys = system_with_grid();
        let run = sys
            .broadcast_spatial_join("/pnt", "/poly", SpatialPredicate::Within)
            .unwrap();
        assert_eq!(run.pair_count(), 100);
        assert!(run.pairs.contains(&(0, 0)));
        assert!(run.pairs.contains(&(55, 3)));
        // The Fig. 2 pipeline runs as distinct stages.
        let names: Vec<&str> = run.report.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("build-strtree")));
        assert!(names.iter().any(|n| n.contains("broadcast")));
        assert!(names.iter().any(|n| n.contains("parse-wkt")));
        assert!(names.iter().any(|n| n.contains("probe")));
    }

    #[test]
    fn nearestd_join_end_to_end() {
        let sys = system_with_grid();
        let run = sys
            .broadcast_spatial_join("/pnt", "/roads", SpatialPredicate::NearestD(0.6))
            .unwrap();
        assert_eq!(run.pair_count(), 30);
    }

    #[test]
    fn simulated_runtime_is_monotone_enough() {
        let sys = system_with_grid();
        let run = sys
            .broadcast_spatial_join("/pnt", "/poly", SpatialPredicate::Within)
            .unwrap();
        let t1 = run.simulated_runtime(1);
        let t10 = run.simulated_runtime(10);
        assert!(t1 > 0.0 && t10 > 0.0);
        // A job this tiny is dominated by startup: more nodes cost more.
        assert!(t10 > t1);
    }

    #[test]
    fn partitioned_join_matches_broadcast_join() {
        let sys = system_with_grid();
        for predicate in [
            SpatialPredicate::Within,
            SpatialPredicate::NearestD(0.6),
            SpatialPredicate::Nearest(0.6),
        ] {
            let right = if predicate == SpatialPredicate::Within {
                "/poly"
            } else {
                "/roads"
            };
            let broadcast = sys
                .broadcast_spatial_join("/pnt", right, predicate)
                .unwrap();
            let partitioned = sys
                .partitioned_spatial_join("/pnt", right, predicate, 9)
                .unwrap();
            assert_eq!(
                crate::normalize_pairs(partitioned.pairs.clone()),
                crate::normalize_pairs(broadcast.pairs.clone()),
                "strategy mismatch for {predicate:?}"
            );
            // The shuffle got recorded.
            let names: Vec<&str> = partitioned
                .report
                .stages
                .iter()
                .map(|s| s.name.as_str())
                .collect();
            assert!(names.iter().any(|n| n.contains("partition_by")));
            assert!(names.iter().any(|n| n.contains("replicate-right")));
            assert!(names.iter().any(|n| n.contains("local-index-join")));
        }
    }

    #[test]
    fn missing_file_errors() {
        let sys = system_with_grid();
        assert!(sys
            .broadcast_spatial_join("/missing", "/poly", SpatialPredicate::Within)
            .is_err());
        assert!(sys
            .broadcast_spatial_join("/pnt", "/missing", SpatialPredicate::Within)
            .is_err());
    }
}
