//! Trajectory-zone joins — the paper's future-work data type, wired
//! through the same filter-refine machinery as the point joins.
//!
//! The join: for trajectories `T` and zones (polygons) `Z`, emit
//! `(t, z)` whenever trajectory `t` passes through zone `z`. Filtering
//! uses an R-tree over zone envelopes probed with each trajectory's
//! envelope; refinement uses the exact path-polygon intersection test.

use geom::{HasEnvelope, Polygon, Trajectory};
use rtree::RTree;

use crate::JoinPair;

/// Serial trajectory-zone join.
pub fn trajectory_zone_join(
    trajectories: &[(i64, Trajectory)],
    zones: &[(i64, Polygon)],
) -> Vec<JoinPair> {
    let tree: RTree<(i64, &Polygon)> = RTree::bulk_load_entries(
        zones
            .iter()
            .map(|(id, z)| (z.envelope(), (*id, z)))
            .collect(),
    );
    let mut out = Vec::new();
    for (tid, traj) in trajectories {
        tree.for_each_intersecting(&traj.envelope(), |(zid, zone)| {
            if traj.passes_through(zone) {
                out.push((*tid, *zid));
            }
        });
    }
    out
}

/// Per-zone dwell-time aggregation: total seconds every zone was
/// occupied, summed over trajectories. Returns `(zone id, seconds)`
/// sorted by descending dwell.
pub fn zone_dwell_times(
    trajectories: &[(i64, Trajectory)],
    zones: &[(i64, Polygon)],
) -> Vec<(i64, f64)> {
    let tree: RTree<(i64, &Polygon)> = RTree::bulk_load_entries(
        zones
            .iter()
            .map(|(id, z)| (z.envelope(), (*id, z)))
            .collect(),
    );
    let mut acc: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    for (_, traj) in trajectories {
        tree.for_each_intersecting(&traj.envelope(), |(zid, zone)| {
            let dwell = traj.dwell_time(zone);
            if dwell > 0.0 {
                *acc.entry(*zid).or_insert(0.0) += dwell;
            }
        });
    }
    let mut out: Vec<(i64, f64)> = acc.into_iter().collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Parses trajectory records (`id \t wkt \t times`), dropping
/// malformed rows like every other reader in this workspace.
pub fn parse_trajectory_records(lines: &[String]) -> Vec<(i64, Trajectory)> {
    lines
        .iter()
        .filter_map(|l| Trajectory::from_record(l).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Envelope, LineString};

    fn traj(coords: Vec<f64>, dt: f64) -> Trajectory {
        let n = coords.len() / 2;
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        Trajectory::new(LineString::new(coords).unwrap(), times).unwrap()
    }

    #[test]
    fn join_matches_brute_force() {
        let trajectories = vec![
            (0, traj(vec![0.0, 0.0, 10.0, 0.0], 10.0)), // crosses zone 0
            (1, traj(vec![0.0, 20.0, 10.0, 20.0], 10.0)), // crosses zone 1
            (2, traj(vec![50.0, 50.0, 60.0, 60.0], 10.0)), // crosses nothing
        ];
        let zones = vec![
            (0, Polygon::rectangle(Envelope::new(4.0, -2.0, 6.0, 2.0))),
            (1, Polygon::rectangle(Envelope::new(4.0, 18.0, 6.0, 22.0))),
        ];
        let mut pairs = trajectory_zone_join(&trajectories, &zones);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn dwell_times_rank_zones() {
        // One trajectory loiters in zone 0 (slow), races through zone 1.
        let slow = traj(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], 100.0);
        let fast = traj(vec![10.0, 0.0, 20.0, 0.0], 1.0);
        let zones = vec![
            (0, Polygon::rectangle(Envelope::new(-1.0, -1.0, 3.0, 1.0))),
            (1, Polygon::rectangle(Envelope::new(9.0, -1.0, 21.0, 1.0))),
        ];
        let dwell = zone_dwell_times(&[(0, slow), (1, fast)], &zones);
        assert_eq!(dwell[0].0, 0, "slow zone must rank first");
        assert!(dwell[0].1 > dwell[1].1);
    }

    #[test]
    fn record_parsing_drops_garbage() {
        let lines = vec![
            "0\tLINESTRING (0 0, 1 1)\t0,10".to_string(),
            "garbage".to_string(),
            "1\tLINESTRING (2 2, 3 3)\t5,1".to_string(), // decreasing times
        ];
        let parsed = parse_trajectory_records(&lines);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 0);
    }

    #[test]
    fn end_to_end_with_generated_trips() {
        let records = datagen::trips::trip_records(300, 9);
        let trips = parse_trajectory_records(&records);
        assert_eq!(trips.len(), 300);
        let zones: Vec<(i64, Polygon)> = datagen::nycb::polygons(300, 9)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as i64, p))
            .collect();
        let pairs = trajectory_zone_join(&trips, &zones);
        assert!(!pairs.is_empty(), "trips must cross some census blocks");
        // Every reported pair truly intersects.
        let zone_map: std::collections::HashMap<i64, &Polygon> =
            zones.iter().map(|(i, p)| (*i, p)).collect();
        let trip_map: std::collections::HashMap<i64, &Trajectory> =
            trips.iter().map(|(i, t)| (*i, t)).collect();
        for (tid, zid) in &pairs {
            assert!(trip_map[tid].passes_through(zone_map[zid]));
        }
    }
}
