//! Chaos properties: proph-driven checks that fault injection and
//! recovery preserve the executors' correctness contracts.
//!
//! Four properties, matching the recovery semantics of each layer:
//!
//! 1. chaos at rate zero (and delay-only chaos) is bit-identical to
//!    the fault-free run at 1/2/7 threads;
//! 2. any run that *recovers* from injected panics — pool retry or
//!    sparklet lineage recompute — is bit-identical to fault-free;
//! 3. impalite is fail-fast: under fragment faults it either completes
//!    bit-identically or returns `Err`, and with certain faults it
//!    always errors — never partial rows;
//! 4. minihdfs checksums: every corruption pattern that leaves one
//!    clean replica per block round-trips exactly; losing every
//!    replica of a block surfaces `CorruptBlock`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use cluster::{Chaos, ChaosConfig, RetryPolicy, ScheduleMode};
use geom::engine::PreparedEngine;
use geom::{Envelope, Geometry, Point, Polygon};
use impalite::ImpaladConf;
use minihdfs::{DfsError, MiniDfs};
use proph::{check_with, f64_range, usize_range, vec_of, Config, GenExt};
use sparklet::SparkConf;
use spatialjoin::{
    GeomRecord, IspMc, MorselConfig, PointRecord, PreparedSet, SpatialJoinError, SpatialPredicate,
    SpatialSpark,
};

/// Restores the default panic hook when dropped. Injected worker
/// panics are expected output here; keep them off test stderr.
struct QuietPanics {
    prev: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>>,
}

fn quiet_panics() -> QuietPanics {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    QuietPanics { prev: Some(prev) }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| std::panic::set_hook(prev)));
        }
    }
}

/// Four quadrant rectangles tiling `[0, 10)²`.
fn quadrant_polys() -> Vec<GeomRecord> {
    let q = |id, x0: f64, y0: f64| {
        (
            id,
            Geometry::Polygon(Polygon::rectangle(Envelope::new(
                x0,
                y0,
                x0 + 5.0,
                y0 + 5.0,
            ))),
        )
    };
    vec![
        q(0, 0.0, 0.0),
        q(1, 5.0, 0.0),
        q(2, 0.0, 5.0),
        q(3, 5.0, 5.0),
    ]
}

/// Generator of 8–40 random points in `[0, 10)²` with sequential ids.
fn points_gen() -> impl proph::Gen<Value = Vec<PointRecord>> {
    vec_of((f64_range(0.0, 10.0), f64_range(0.0, 10.0)), 8, 40).map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as i64, Point::new(x, y)))
            .collect()
    })
}

/// Seeds as generated values so shrinking minimises them too.
fn seed_gen() -> impl proph::Gen<Value = u64> {
    usize_range(0, 1 << 20).map(|s| s as u64)
}

fn small_cases(cases: u32) -> Config {
    Config {
        cases,
        ..Config::default()
    }
}

/// Writes `points` as `id \t WKT` lines next to the quadrant polygons
/// on a fresh little DFS.
fn dfs_with(points: &[PointRecord]) -> MiniDfs {
    let dfs = MiniDfs::new(4, 256).unwrap();
    let pts: Vec<String> = points
        .iter()
        .map(|(id, p)| format!("{id}\tPOINT ({} {})", p.x, p.y))
        .collect();
    dfs.write_lines("/pnt", &pts).unwrap();
    let polys: Vec<String> = quadrant_polys()
        .iter()
        .map(|(id, g)| format!("{id}\t{}", geom::wkt::write(g)))
        .collect();
    dfs.write_lines("/poly", &polys).unwrap();
    dfs
}

// --- property 1: zero-rate and delay-only chaos change nothing ------

#[test]
fn zero_rate_chaos_is_bit_identical_at_every_thread_count() {
    let gen = (points_gen(), seed_gen());
    check_with(
        small_cases(24),
        "zero-rate chaos is bit-identical",
        &gen,
        |(points, seed)| {
            let engine = PreparedEngine;
            let set = PreparedSet::prepare(&quadrant_polys(), SpatialPredicate::Within, &engine);
            // Delay-only chaos exercises the faulted executor path
            // (config not disabled) without any destructive fault.
            let delay_only = ChaosConfig {
                seed,
                straggler_rate: 0.5,
                straggler_delay: Duration::from_micros(1),
                ..ChaosConfig::disabled()
            };
            for threads in [1, 2, 7] {
                let cfg = MorselConfig {
                    threads,
                    mode: ScheduleMode::Dynamic,
                    morsel_size: 5,
                };
                let plain = set.par_probe(&points, &engine, cfg);
                for chaos_cfg in [ChaosConfig::uniform(seed, 0.0), delay_only.clone()] {
                    let chaos = Chaos::new(chaos_cfg);
                    let (pairs, _) = set
                        .par_probe_faulted(&points, &engine, cfg, &chaos, RetryPolicy::none())
                        .expect("no destructive fault configured");
                    assert_eq!(pairs, plain, "threads={threads}");
                }
            }
        },
    );
}

// --- property 2: recovery is bit-identical -------------------------

#[test]
fn recovered_pool_and_sparklet_runs_are_bit_identical() {
    let _quiet = quiet_panics();
    let gen = (points_gen(), seed_gen(), f64_range(0.0, 0.4));
    check_with(
        small_cases(16),
        "recovered chaos runs are bit-identical",
        &gen,
        |(points, seed, rate)| {
            // Pool path: in-place bounded retry.
            let engine = PreparedEngine;
            let set = PreparedSet::prepare(&quadrant_polys(), SpatialPredicate::Within, &engine);
            let cfg = MorselConfig {
                threads: 4,
                mode: ScheduleMode::Dynamic,
                morsel_size: 5,
            };
            let plain = set.par_probe(&points, &engine, cfg);
            let chaos = Chaos::new(ChaosConfig::uniform(seed, rate));
            if let Ok((pairs, _)) =
                set.par_probe_faulted(&points, &engine, cfg, &chaos, RetryPolicy::attempts(10))
            {
                assert_eq!(pairs, plain, "pool recovery diverged (seed {seed})");
            }

            // Sparklet path: driver-level lineage recompute.
            let dfs = dfs_with(&points);
            let base = SpatialSpark::new(
                SparkConf {
                    threads: 4,
                    ..SparkConf::default()
                },
                dfs.clone(),
            )
            .broadcast_spatial_join("/pnt", "/poly", SpatialPredicate::Within)
            .unwrap();
            let sys = SpatialSpark::new(
                SparkConf {
                    threads: 4,
                    chaos: ChaosConfig::uniform(seed, rate),
                    ..SparkConf::default()
                },
                dfs,
            );
            let run = catch_unwind(AssertUnwindSafe(|| {
                sys.broadcast_spatial_join("/pnt", "/poly", SpatialPredicate::Within)
            }));
            // Exceeding the recompute budget may abort the job; any
            // *completed* run must match the fault-free pairs.
            if let Ok(Ok(run)) = run {
                assert_eq!(
                    run.pairs, base.pairs,
                    "sparklet recovery diverged (seed {seed})"
                );
            }
        },
    );
}

// --- property 3: impalite fails fast, never partial rows -----------

#[test]
fn impalite_under_fragment_faults_is_all_or_nothing() {
    let _quiet = quiet_panics();
    let gen = (points_gen(), seed_gen(), f64_range(0.3, 1.0));
    check_with(
        small_cases(16),
        "impalite is all-or-nothing under faults",
        &gen,
        |(points, seed, rate)| {
            let dfs = dfs_with(&points);
            let base = IspMc::new(
                ImpaladConf::default(),
                dfs.clone(),
                ("pnt", "/pnt"),
                ("poly", "/poly"),
            )
            .spatial_join("pnt", "poly", SpatialPredicate::Within)
            .unwrap();

            let panic_only = ChaosConfig {
                seed,
                panic_rate: rate,
                ..ChaosConfig::disabled()
            };
            let sys = IspMc::new(
                ImpaladConf {
                    chaos: panic_only,
                    ..ImpaladConf::default()
                },
                dfs.clone(),
                ("pnt", "/pnt"),
                ("poly", "/poly"),
            );
            match sys.spatial_join("pnt", "poly", SpatialPredicate::Within) {
                // No fault fired anywhere: output must be complete and
                // identical — fail-fast admits no partial success.
                Ok(run) => assert_eq!(run.pairs(), base.pairs(), "partial rows leaked"),
                // The wrapper stringifies `QueryError::FragmentFailed`;
                // its message names the dead fragment and the contract.
                Err(SpatialJoinError::Impala(msg)) => {
                    assert!(msg.contains("fragment failed"), "unexpected error: {msg}");
                    assert!(
                        msg.contains("no partial results"),
                        "unexpected error: {msg}"
                    );
                }
                Err(other) => panic!("expected a fragment failure, got {other}"),
            }

            // Certain faults always abort: rate 1.0 fires on the very
            // first fragment attempt.
            let certain = IspMc::new(
                ImpaladConf {
                    chaos: ChaosConfig {
                        seed,
                        panic_rate: 1.0,
                        ..ChaosConfig::disabled()
                    },
                    ..ImpaladConf::default()
                },
                dfs,
                ("pnt", "/pnt"),
                ("poly", "/poly"),
            );
            assert!(certain
                .spatial_join("pnt", "poly", SpatialPredicate::Within)
                .is_err());
        },
    );
}

// --- property 4: checksum fail-over round-trips --------------------

/// Deterministic per-block corruption mask in `[0, 2^replicas − 1)`
/// (all-ones excluded, so one clean replica always survives).
fn corruption_mask(seed: u64, block: u64, replicas: u32) -> u64 {
    let mut z = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % ((1u64 << replicas) - 1)
}

#[test]
fn checksums_survive_every_non_total_corruption_pattern() {
    let gen = (vec_of(usize_range(0, 1 << 30), 1, 120), seed_gen());
    check_with(
        small_cases(24),
        "checksum fail-over round-trips",
        &gen,
        |(values, seed)| {
            let lines: Vec<String> = values
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{i}\t{v}"))
                .collect();
            let dfs = MiniDfs::with_replication(4, 64, 3).unwrap();
            dfs.write_lines("/f", &lines).unwrap();
            let blocks = dfs.blocks("/f").unwrap();
            for (b, blk) in blocks.iter().enumerate() {
                let mask = corruption_mask(seed, b as u64, blk.replicas.len() as u32);
                for r in 0..blk.replicas.len() {
                    if mask & (1 << r) != 0 {
                        dfs.corrupt_replica("/f", b, r).unwrap();
                    }
                }
            }
            // One clean replica per block remains: the read must
            // transparently fail over and reconstruct every line.
            assert_eq!(dfs.read_all_lines("/f").unwrap(), lines);

            // Now destroy every replica of one block: the reader must
            // surface CorruptBlock rather than fabricate data.
            let victim = (seed as usize) % blocks.len();
            dfs.corrupt_block("/f", victim).unwrap();
            match dfs.read_all_lines("/f") {
                Err(DfsError::CorruptBlock { block, .. }) => assert_eq!(block, victim),
                other => panic!("expected CorruptBlock, got {other:?}"),
            }

            // Healing restores the file end to end.
            dfs.heal("/f").unwrap();
            assert_eq!(dfs.read_all_lines("/f").unwrap(), lines);
        },
    );
}
