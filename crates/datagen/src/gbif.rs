//! Synthetic GBIF species-occurrence points (the G10M dataset).
//!
//! Occurrence records cluster around biodiversity hotspots and
//! well-sampled regions (Europe and North America dominate real GBIF
//! holdings), restricted to terrestrial latitudes. The generator uses a
//! mixture of ~40 regional clusters with log-normal masses — a few
//! clusters hold most of the points, which is the skew that stresses
//! static scheduling in the G10M-wwf experiment.

use crate::rng::StdRng;
use geom::{Geometry, Point};

use crate::rng::{lognormal, normal_scaled, seeded};
use crate::WORLD_EXTENT;

const NUM_CLUSTERS: usize = 40;

struct Cluster {
    cx: f64,
    cy: f64,
    spread: f64,
    cumulative: f64, // cumulative weight in [0, 1]
}

fn clusters(rng: &mut StdRng) -> Vec<Cluster> {
    let mut raw = Vec::with_capacity(NUM_CLUSTERS);
    for _ in 0..NUM_CLUSTERS {
        // Centres biased towards the latitudes that hold land and
        // observers: mostly 25°–60° N, some tropics and southern lands.
        let lat_band: f64 = rng.random_range(0.0..1.0);
        let cy = if lat_band < 0.5 {
            rng.random_range(25.0..60.0)
        } else if lat_band < 0.8 {
            rng.random_range(-25.0..25.0)
        } else {
            rng.random_range(-55.0..-10.0)
        };
        let cx = rng.random_range(-170.0..170.0);
        let spread = rng.random_range(2.0..12.0);
        let mass = lognormal(rng, 0.0, 1.4); // heavy-tailed cluster sizes
        raw.push((cx, cy, spread, mass));
    }
    let total: f64 = raw.iter().map(|r| r.3).sum();
    let mut acc = 0.0;
    raw.into_iter()
        .map(|(cx, cy, spread, mass)| {
            acc += mass / total;
            Cluster {
                cx,
                cy,
                spread,
                cumulative: acc,
            }
        })
        .collect()
}

/// Generates `n` occurrence points, deterministically from `seed`.
pub fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = seeded(seed ^ 0x6762_6966); // "gbif"
    let cs = clusters(&mut rng);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let pick: f64 = rng.random_range(0.0..1.0);
        let Some(c) = cs.iter().find(|c| pick <= c.cumulative).or(cs.last()) else {
            break; // no clusters configured: nothing to draw from
        };
        let p = Point::new(
            normal_scaled(&mut rng, c.cx, c.spread),
            normal_scaled(&mut rng, c.cy, c.spread * 0.7),
        );
        if WORLD_EXTENT.contains(p.x, p.y) {
            out.push(p);
        }
    }
    out
}

/// Generates occurrences wrapped as [`Geometry`] records.
pub fn geometries(n: usize, seed: u64) -> Vec<Geometry> {
    points(n, seed).into_iter().map(Geometry::Point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_extent() {
        let a = points(2000, 1);
        assert_eq!(a, points(2000, 1));
        assert_eq!(a.len(), 2000);
        assert!(a.iter().all(|p| WORLD_EXTENT.contains(p.x, p.y)));
    }

    #[test]
    fn heavily_clustered() {
        // Measure skew with a coarse 36×18 grid of 10° cells: the top
        // cells should hold far more than a uniform share.
        let pts = points(20_000, 2);
        let mut cells = std::collections::HashMap::new();
        for p in &pts {
            let key = ((p.x / 10.0).floor() as i32, (p.y / 10.0).floor() as i32);
            *cells.entry(key).or_insert(0usize) += 1;
        }
        let max = *cells.values().max().unwrap();
        let uniform_share = pts.len() / (36 * 18);
        assert!(
            max > uniform_share * 10,
            "max cell {max} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn latitudes_mostly_terrestrial() {
        let pts = points(10_000, 3);
        let polar = pts.iter().filter(|p| p.y.abs() > 70.0).count();
        assert!(
            polar < pts.len() / 20,
            "too many polar occurrences: {polar}"
        );
    }
}
