//! # datagen — deterministic synthetic datasets
//!
//! The paper's experiments use five real datasets that we cannot ship:
//!
//! | name  | contents                              | size        |
//! |-------|---------------------------------------|-------------|
//! | taxi  | NYC taxi pickup points                | ~170 M pts  |
//! | nycb  | NYC census-block polygons             | ~40 K polys, ~9 vertices avg |
//! | lion  | NYC street-network polylines          | ~200 K lines |
//! | G10M  | GBIF species-occurrence points        | ~10 M pts   |
//! | wwf   | WWF terrestrial ecoregion polygons    | 14,458 polys, 4,028,622 vertices (279 avg) |
//!
//! Each generator below reproduces the statistics the paper's results
//! depend on — cardinality, geometry type, vertex-count distribution,
//! extent and spatial skew — from a seed, so every run is reproducible.
//! NYC datasets use a planar foot coordinate system (the LION data's
//! native NY state-plane feet), which makes the paper's `NearestD`
//! distances of 100 ft and 500 ft directly meaningful; the global
//! datasets use degrees.
//!
//! Record format matches the paper's HDFS layout: one record per line,
//! tab-separated columns, geometry as WKT.

pub mod gbif;
pub mod lion;
pub mod nycb;
pub mod rng;
pub mod taxi;
pub mod trips;
pub mod wwf;

use geom::{Envelope, Geometry};
use minihdfs::{DfsError, FileStat, MiniDfs};

/// Full-size cardinalities reported in the paper (§V.A).
pub mod full_size {
    /// NYC taxi pickup points.
    pub const TAXI: usize = 170_000_000;
    /// NYC census blocks.
    pub const NYCB: usize = 40_000;
    /// LION street segments.
    pub const LION: usize = 200_000;
    /// GBIF occurrence sample.
    pub const G10M: usize = 10_000_000;
    /// WWF ecoregions.
    pub const WWF: usize = 14_458;
    /// Average vertices per wwf polygon.
    pub const WWF_AVG_VERTICES: usize = 279;
    /// Average vertices per nycb polygon.
    pub const NYCB_AVG_VERTICES: usize = 9;
}

/// NYC extent in a planar foot coordinate system (about 17 × 23 miles,
/// the bounding box of the five boroughs).
pub const NYC_EXTENT: Envelope = Envelope {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 90_000.0,
    max_y: 120_000.0,
};

/// Global extent in degrees for the GBIF/WWF datasets.
pub const WORLD_EXTENT: Envelope = Envelope {
    min_x: -180.0,
    min_y: -90.0,
    max_x: 180.0,
    max_y: 90.0,
};

/// Scale factor applied to the *point* (left) sides of the joins so the
/// reproduction runs on one machine; the polygon/polyline (right) sides
/// are generated at full cardinality because they are small.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// The default reproduction scale: 1/1000 of the paper's points
    /// (170 K taxi, 10 K gbif), full-size right sides.
    pub fn default_repro() -> Scale {
        Scale(1.0 / 1000.0)
    }

    /// Applies the scale to a full-size cardinality (at least 1).
    pub fn apply(&self, full: usize) -> usize {
        ((full as f64 * self.0).round() as usize).max(1)
    }
}

/// Serialises `(id, geometry)` records to the paper's tab-separated WKT
/// line format.
pub fn to_wkt_lines<'a, I>(geoms: I) -> Vec<String>
where
    I: IntoIterator<Item = &'a Geometry>,
{
    geoms
        .into_iter()
        .enumerate()
        .map(|(id, g)| {
            let mut line = format!("{id}\t");
            geom::wkt::write_into(g, &mut line);
            line
        })
        .collect()
}

/// Writes `(id, wkt)` records for `geoms` to a DFS file.
///
/// # Errors
/// Propagates [`DfsError`] from the underlying file system.
pub fn write_dataset(dfs: &MiniDfs, path: &str, geoms: &[Geometry]) -> Result<FileStat, DfsError> {
    dfs.write_lines(path, to_wkt_lines(geoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;

    #[test]
    fn scale_applies_with_floor_of_one() {
        assert_eq!(Scale(0.001).apply(170_000_000), 170_000);
        assert_eq!(Scale(1e-12).apply(100), 1);
        assert_eq!(Scale(1.0).apply(42), 42);
    }

    #[test]
    fn wkt_lines_are_tab_separated_with_ids() {
        let geoms = vec![
            Geometry::Point(Point::new(1.0, 2.0)),
            Geometry::Point(Point::new(3.0, 4.0)),
        ];
        let lines = to_wkt_lines(&geoms);
        assert_eq!(lines[0], "0\tPOINT (1 2)");
        assert_eq!(lines[1], "1\tPOINT (3 4)");
    }

    #[test]
    fn write_dataset_round_trips_through_dfs() {
        let dfs = MiniDfs::new(2, 1024).unwrap();
        let geoms = vec![Geometry::Point(Point::new(5.0, 6.0))];
        let stat = write_dataset(&dfs, "/pts", &geoms).unwrap();
        assert_eq!(stat.total_records, 1);
        let lines = dfs.read_all_lines("/pts").unwrap();
        let wkt_col = lines[0].split('\t').nth(1).unwrap();
        assert_eq!(
            geom::wkt::parse(wkt_col).unwrap().as_point(),
            Some(Point::new(5.0, 6.0))
        );
    }
}
