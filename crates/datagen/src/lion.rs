//! Synthetic LION street-network polylines.
//!
//! The LION dataset holds ~200 K street segments. Typical NYC blocks are
//! a few hundred feet long, so the generator emits mostly axis-aligned
//! segments of 150–800 ft with slight bends (2–6 vertices), denser in
//! the same hotspots as the taxi pickups — street density and trip
//! density correlate in the real data, which is what makes the
//! taxi-lion join refinement-heavy where it matters.

use crate::rng::StdRng;
use geom::{Geometry, LineString, Point};

use crate::rng::{normal_scaled, seeded};
use crate::NYC_EXTENT;

/// Generates `n` street polylines, deterministically from `seed`.
pub fn polylines(n: usize, seed: u64) -> Vec<LineString> {
    let mut rng = seeded(seed ^ 0x6c69_6f6e); // "lion"
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let start = random_street_origin(&mut rng);
        let Some(ls) = street(&mut rng, start) else {
            continue;
        };
        if NYC_EXTENT.contains_envelope(&geom::HasEnvelope::envelope(&ls)) {
            out.push(ls);
        }
    }
    out
}

/// Generates street polylines wrapped as [`Geometry`] records.
pub fn geometries(n: usize, seed: u64) -> Vec<Geometry> {
    polylines(n, seed)
        .into_iter()
        .map(Geometry::LineString)
        .collect()
}

fn random_street_origin(rng: &mut StdRng) -> Point {
    // Street networks are far more uniform than trip origins: 10 % in
    // the denser cores (smaller blocks), 90 % spread over the grid.
    if rng.random_range(0.0..1.0) < 0.10 {
        let (cx, cy, spread) = match rng.random_range(0..3u32) {
            0 => (30_000.0, 80_000.0, 15_000.0),
            1 => (28_000.0, 68_000.0, 14_000.0),
            _ => (55_000.0, 60_000.0, 18_000.0),
        };
        Point::new(
            normal_scaled(rng, cx, spread),
            normal_scaled(rng, cy, spread),
        )
    } else {
        Point::new(
            rng.random_range(NYC_EXTENT.min_x..NYC_EXTENT.max_x),
            rng.random_range(NYC_EXTENT.min_y..NYC_EXTENT.max_y),
        )
    }
}

/// One street polyline, or `None` if the coordinate walk degenerates
/// (the caller draws again — the rejection loop already re-samples for
/// the extent check).
fn street(rng: &mut StdRng, start: Point) -> Option<LineString> {
    let vertices = rng.random_range(2..=6usize);
    let length: f64 = rng.random_range(150.0..800.0);
    // Mostly grid-aligned with a small rotation, like Manhattan's grid.
    let base_angle = if rng.random_range(0.0..1.0) < 0.5 {
        0.0
    } else {
        std::f64::consts::FRAC_PI_2
    } + rng.random_range(-0.25..0.25);
    let step = length / (vertices - 1) as f64;
    let mut coords = Vec::with_capacity(vertices * 2);
    let (mut x, mut y) = (start.x, start.y);
    let mut angle = base_angle;
    coords.push(x);
    coords.push(y);
    for _ in 1..vertices {
        angle += rng.random_range(-0.1..0.1); // slight bend
        x += step * angle.cos();
        y += step * angle.sin();
        coords.push(x);
        coords.push(y);
    }
    LineString::new(coords).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::HasEnvelope;

    #[test]
    fn deterministic_count_and_extent() {
        let a = polylines(500, 1);
        assert_eq!(a.len(), 500);
        assert_eq!(a, polylines(500, 1));
        for ls in &a {
            assert!(NYC_EXTENT.contains_envelope(&ls.envelope()));
        }
    }

    #[test]
    fn realistic_segment_lengths_and_vertices() {
        let lines = polylines(2000, 2);
        for ls in &lines {
            assert!((2..=6).contains(&ls.num_points()));
            let len = ls.length();
            assert!(
                (100.0..1200.0).contains(&len),
                "street length {len} ft out of range"
            );
        }
        let avg: f64 = lines.iter().map(LineString::length).sum::<f64>() / lines.len() as f64;
        assert!((200.0..700.0).contains(&avg), "avg length {avg}");
    }

    #[test]
    fn density_correlates_with_hotspots() {
        let lines = polylines(10_000, 3);
        let near = lines
            .iter()
            .filter(|l| {
                let c = l.envelope().center();
                (c.x - 30_000.0).abs() < 10_000.0 && (c.y - 80_000.0).abs() < 10_000.0
            })
            .count();
        let corner = lines
            .iter()
            .filter(|l| {
                let c = l.envelope().center();
                c.x > 78_000.0 && c.y > 108_000.0
            })
            .count();
        assert!(near > corner * 3, "hotspot {near} vs corner {corner}");
    }
}
