//! Synthetic NYC census-block polygons.
//!
//! Real census blocks tile the city; the paper reports ~40 K polygons
//! with about 9 vertices on average. The generator tiles
//! [`crate::NYC_EXTENT`] with a jittered (non-uniform) grid — cells
//! share their boundary lines, so the tiling is gap- and overlap-free
//! like real blocks — and inserts extra collinear vertices along cell
//! edges to reproduce the vertex-count statistics that drive refinement
//! cost.

use crate::rng::StdRng;
use geom::{Geometry, Polygon};

use crate::rng::seeded;
use crate::NYC_EXTENT;

/// Generates `n` census-block polygons, deterministically from `seed`.
pub fn polygons(n: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = seeded(seed ^ 0x6e79_6362); // "nycb"
                                              // Pick a grid shape with aspect ratio near the extent's and at
                                              // least n cells.
    let aspect = NYC_EXTENT.width() / NYC_EXTENT.height();
    let rows = ((n as f64 / aspect).sqrt()).ceil().max(1.0) as usize;
    let cols = n.div_ceil(rows);
    let xs = jittered_lines(&mut rng, NYC_EXTENT.min_x, NYC_EXTENT.max_x, cols);
    let ys = jittered_lines(&mut rng, NYC_EXTENT.min_y, NYC_EXTENT.max_y, rows);

    let mut out = Vec::with_capacity(n);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if out.len() >= n {
                break 'outer;
            }
            let (x0, x1) = (xs[c], xs[c + 1]);
            let (y0, y1) = (ys[r], ys[r + 1]);
            out.push(block_polygon(&mut rng, x0, y0, x1, y1));
        }
    }
    out
}

/// Generates census blocks wrapped as [`Geometry`] records.
pub fn geometries(n: usize, seed: u64) -> Vec<Geometry> {
    polygons(n, seed)
        .into_iter()
        .map(Geometry::Polygon)
        .collect()
}

/// `count + 1` monotone grid lines from `lo` to `hi` with ±30 % spacing
/// jitter.
fn jittered_lines(rng: &mut StdRng, lo: f64, hi: f64, count: usize) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..count).map(|_| rng.random_range(0.7..1.3)).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w *= (hi - lo) / total;
    }
    let mut lines = Vec::with_capacity(count + 1);
    let mut x = lo;
    lines.push(x);
    for w in weights {
        x += w;
        lines.push(x);
    }
    if let Some(last) = lines.last_mut() {
        *last = hi; // kill rounding drift
    }
    lines
}

/// One rectangular block with 0–8 extra collinear vertices spread over
/// its edges (average ≈ 4, giving ≈ 9 vertices per closed ring like the
/// paper's nycb average).
fn block_polygon(rng: &mut StdRng, x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    let extra = rng.random_range(0..=8u32);
    let per_edge = [
        extra / 4,
        extra / 4 + extra % 4 / 2,
        extra / 4,
        extra / 4 + extra % 2,
    ];
    let mut coords = Vec::with_capacity(((5 + extra) * 2) as usize);
    let corners = [(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)];
    for e in 0..4 {
        let (ax, ay) = corners[e];
        let (bx, by) = corners[e + 1];
        coords.push(ax);
        coords.push(ay);
        // Extra vertices strictly interior to the edge, sorted.
        let mut ts: Vec<f64> = (0..per_edge[e])
            .map(|_| rng.random_range(0.05..0.95))
            .collect();
        ts.sort_by(f64::total_cmp);
        for t in ts {
            coords.push(ax + t * (bx - ax));
            coords.push(ay + t * (by - ay));
        }
    }
    coords.push(x0);
    coords.push(y0);
    // Collinear insertions cannot invalidate the ring, but fall back to
    // the plain rectangle rather than panic if they ever did.
    Polygon::from_coords(coords, vec![])
        .unwrap_or_else(|_| Polygon::rectangle(geom::Envelope::new(x0, y0, x1, y1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{HasEnvelope, Point};

    #[test]
    fn deterministic_count_and_extent() {
        let a = polygons(500, 1);
        let b = polygons(500, 1);
        assert_eq!(a.len(), 500);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[17].envelope(), b[17].envelope());
        for p in &a {
            let e = p.envelope();
            assert!(NYC_EXTENT.contains_envelope(&e), "block outside extent");
        }
    }

    #[test]
    fn average_vertex_count_near_paper_value() {
        let polys = polygons(2000, 2);
        let total: usize = polys.iter().map(Polygon::num_points).sum();
        let avg = total as f64 / polys.len() as f64;
        assert!(
            (7.0..=11.0).contains(&avg),
            "avg vertices {avg}, paper reports ≈9"
        );
    }

    #[test]
    fn blocks_tile_without_overlap() {
        let polys = polygons(100, 3);
        // Total area equals extent area when n fills the grid exactly;
        // here we only check no two blocks' interiors overlap.
        for i in 0..polys.len() {
            for j in i + 1..polys.len() {
                let inter = polys[i].envelope().intersection(&polys[j].envelope());
                assert!(
                    inter.area() < 1e-6,
                    "blocks {i} and {j} overlap by {}",
                    inter.area()
                );
            }
        }
    }

    #[test]
    fn interior_point_is_contained() {
        let polys = polygons(50, 4);
        for p in &polys {
            let c = p.envelope().center();
            assert!(p.contains_point(Point::new(c.x, c.y)));
        }
    }
}
