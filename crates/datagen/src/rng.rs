//! Seeded random-number helpers shared by the generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates the deterministic generator used across this crate.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal sample via Box–Muller (rand's core crate ships no
/// distributions; this keeps the dependency list to the approved set).
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal_scaled(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// Log-normal sample parameterised by the *mean of the underlying
/// normal* `mu` and its standard deviation `sigma` — heavy-tailed, used
/// for the wwf vertex-count skew.
pub fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = seeded(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = seeded(9);
        let samples: Vec<f64> = (0..5000).map(|_| lognormal(&mut rng, 4.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        assert!(mean > median, "lognormal mean exceeds median (skew)");
    }
}
