//! Seeded random-number generation shared by the generators.
//!
//! A from-scratch, zero-dependency replacement for the `rand` crate:
//! [`StdRng`] is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, which is the same construction `rand`'s small-rng family
//! uses. The API mirrors the subset of `rand` the generators relied on
//! (`seed_from_u64`, `random_range`, `random`), so datasets remain
//! reproducible from a seed — though the streams differ from the old
//! `rand`-backed ones, every generator in this crate derives its
//! statistics (cardinality, skew, vertex counts) from the distribution
//! shape, not from specific draws.

/// The crate's deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed via SplitMix64, following
    /// the reference initialisation recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform sample from a range, mirroring `rand`'s
    /// `random_range`. Supported ranges: `f64` half-open, and `u32` /
    /// `usize` half-open and inclusive.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform draw over the whole domain of `T`, mirroring `rand`'s
    /// `random`.
    pub fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

/// Range types [`StdRng::random_range`] accepts.
pub trait SampleRange {
    type Output;

    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample(self, rng: &mut StdRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let span = self.end - self.start;
        // Clamp keeps rounding at the top of huge spans inside [start, end).
        let v = self.start + rng.next_f64() * span;
        if v >= self.end {
            self.end - span * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;

    fn sample(self, rng: &mut StdRng) -> u32 {
        debug_assert!(self.start < self.end, "empty u32 range");
        self.start + rng.next_bounded((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for std::ops::RangeInclusive<u32> {
    type Output = u32;

    fn sample(self, rng: &mut StdRng) -> u32 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty u32 inclusive range");
        lo + rng.next_bounded((hi - lo) as u64 + 1) as u32
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;

    fn sample(self, rng: &mut StdRng) -> usize {
        debug_assert!(self.start < self.end, "empty usize range");
        self.start + rng.next_bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;

    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty usize inclusive range");
        lo + rng.next_bounded((hi - lo) as u64 + 1) as usize
    }
}

/// Types [`StdRng::random`] can draw uniformly over their whole domain.
pub trait Standard {
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

/// Creates the deterministic generator used across this crate.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal_scaled(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// Log-normal sample parameterised by the *mean of the underlying
/// normal* `mu` and its standard deviation `sigma` — heavy-tailed, used
/// for the wwf vertex-count skew.
pub fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = seeded(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = seeded(1);
        for _ in 0..10_000 {
            let f = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.random_range(3..9u32);
            assert!((3..9).contains(&u));
            let v = rng.random_range(3..=9u32);
            assert!((3..=9).contains(&v));
            let s = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&s));
        }
        // Degenerate inclusive range has a single value.
        assert_eq!(rng.random_range(4..=4u32), 4);
    }

    #[test]
    fn bounded_draws_cover_all_values() {
        let mut rng = seeded(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        assert_eq!(rng.next_bounded(0), 0);
        assert_eq!(rng.next_bounded(1), 0);
    }

    #[test]
    fn uniform_f64_has_sane_moments() {
        let mut rng = seeded(11);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = seeded(9);
        let samples: Vec<f64> = (0..5000).map(|_| lognormal(&mut rng, 4.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        assert!(mean > median, "lognormal mean exceeds median (skew)");
    }
}
