//! Synthetic NYC taxi pickup locations.
//!
//! Real pickups concentrate heavily in Manhattan with secondary hotspots
//! at the airports and a diffuse background across the boroughs. The
//! generator reproduces that as a Gaussian mixture: a few dense urban
//! hotspots (70 % of the mass), two airport-like clusters (10 %), and a
//! uniform background (20 %), all clipped to [`crate::NYC_EXTENT`].

use geom::{Geometry, Point};

use crate::rng::{normal_scaled, seeded};
use crate::NYC_EXTENT;

/// A mixture component: centre plus spread (feet).
struct Hotspot {
    cx: f64,
    cy: f64,
    spread: f64,
    weight: f64,
}

fn hotspots() -> Vec<Hotspot> {
    vec![
        // Dense "midtown"/"downtown" style cores.
        Hotspot {
            cx: 30_000.0,
            cy: 80_000.0,
            spread: 3_000.0,
            weight: 0.30,
        },
        Hotspot {
            cx: 28_000.0,
            cy: 68_000.0,
            spread: 2_500.0,
            weight: 0.20,
        },
        Hotspot {
            cx: 35_000.0,
            cy: 92_000.0,
            spread: 4_000.0,
            weight: 0.12,
        },
        // Outer-borough centres.
        Hotspot {
            cx: 55_000.0,
            cy: 60_000.0,
            spread: 6_000.0,
            weight: 0.08,
        },
        // Airport-like clusters.
        Hotspot {
            cx: 75_000.0,
            cy: 45_000.0,
            spread: 1_500.0,
            weight: 0.06,
        },
        Hotspot {
            cx: 62_000.0,
            cy: 95_000.0,
            spread: 1_500.0,
            weight: 0.04,
        },
    ]
}

/// Generates `n` pickup points, deterministically from `seed`.
pub fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = seeded(seed ^ 0x7a61_7869); // "taxi"
    let spots = hotspots();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let roll: f64 = rng.random_range(0.0..1.0);
        let p = if roll < 0.8 {
            // Pick a hotspot proportional to weight.
            let mut pick = rng.random_range(0.0..0.8);
            let mut chosen = &spots[0];
            for s in &spots {
                if pick < s.weight {
                    chosen = s;
                    break;
                }
                pick -= s.weight;
            }
            Point::new(
                normal_scaled(&mut rng, chosen.cx, chosen.spread),
                normal_scaled(&mut rng, chosen.cy, chosen.spread),
            )
        } else {
            Point::new(
                rng.random_range(NYC_EXTENT.min_x..NYC_EXTENT.max_x),
                rng.random_range(NYC_EXTENT.min_y..NYC_EXTENT.max_y),
            )
        };
        if NYC_EXTENT.contains(p.x, p.y) {
            out.push(p);
        }
    }
    out
}

/// Generates pickup points wrapped as [`Geometry`] records.
pub fn geometries(n: usize, seed: u64) -> Vec<Geometry> {
    points(n, seed).into_iter().map(Geometry::Point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_extent() {
        let a = points(1000, 1);
        let b = points(1000, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| NYC_EXTENT.contains(p.x, p.y)));
        let c = points(1000, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn distribution_is_skewed_toward_hotspots() {
        let pts = points(20_000, 3);
        // Count points within 2 spreads of the main hotspot vs an
        // equal-sized box in a quiet corner.
        let near_hot = pts
            .iter()
            .filter(|p| (p.x - 30_000.0).abs() < 6_000.0 && (p.y - 80_000.0).abs() < 6_000.0)
            .count();
        let quiet = pts
            .iter()
            .filter(|p| p.x < 12_000.0 && p.y < 16_000.0)
            .count();
        assert!(
            near_hot > quiet * 5,
            "hotspot {near_hot} vs quiet corner {quiet}"
        );
    }

    #[test]
    fn exact_count() {
        assert_eq!(points(0, 1).len(), 0);
        assert_eq!(points(17, 1).len(), 17);
        assert_eq!(geometries(5, 1).len(), 5);
    }
}
