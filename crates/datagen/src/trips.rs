//! Synthetic taxi *trajectories* — the moving-object counterpart of the
//! pickup points, supporting the trajectory extension (the paper's
//! future-work data type).
//!
//! Each trip starts at a pickup-like location and random-walks along
//! the street grid at taxi speeds (15–45 ft/s ≈ 10–30 mph), with a GPS
//! sample every 15–45 seconds — the sampling profile of the real NYC
//! taxi feed.

use crate::rng::StdRng;
use geom::{LineString, Trajectory};

use crate::rng::{normal_scaled, seeded};
use crate::NYC_EXTENT;

/// Generates `n` trips, deterministically from `seed`.
pub fn trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = seeded(seed ^ 0x7472_6970); // "trip"
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.extend(trip(&mut rng));
    }
    out
}

/// Generates trips as tab-separated records (`id \t wkt \t times`).
pub fn trip_records(n: usize, seed: u64) -> Vec<String> {
    trajectories(n, seed)
        .iter()
        .enumerate()
        .map(|(i, t)| t.to_record(i as i64))
        .collect()
}

/// One trip, or `None` in the (theoretical) case where the walk
/// degenerates — the caller just draws again.
fn trip(rng: &mut StdRng) -> Option<Trajectory> {
    // Start near one of the taxi hotspots.
    let (cx, cy, spread) = match rng.random_range(0..3u32) {
        0 => (30_000.0, 80_000.0, 4_000.0),
        1 => (28_000.0, 68_000.0, 3_500.0),
        _ => (55_000.0, 60_000.0, 7_000.0),
    };
    let mut x = normal_scaled(rng, cx, spread).clamp(NYC_EXTENT.min_x, NYC_EXTENT.max_x);
    let mut y = normal_scaled(rng, cy, spread).clamp(NYC_EXTENT.min_y, NYC_EXTENT.max_y);

    let samples = rng.random_range(5..=40usize);
    let mut coords = Vec::with_capacity(samples * 2);
    let mut times = Vec::with_capacity(samples);
    let mut t = rng.random_range(0.0..86_400.0); // seconds into the day
                                                 // Mostly axis-aligned movement, like a street grid.
    let mut heading = if rng.random_range(0.0..1.0) < 0.5 {
        0.0
    } else {
        std::f64::consts::FRAC_PI_2
    };
    coords.push(x);
    coords.push(y);
    times.push(t);
    for _ in 1..samples {
        let dt = rng.random_range(15.0..45.0);
        let speed = rng.random_range(15.0..45.0); // ft/s
                                                  // Occasional turns onto the cross street.
        if rng.random_range(0.0..1.0) < 0.3 {
            heading += std::f64::consts::FRAC_PI_2
                * if rng.random_range(0.0..1.0) < 0.5 {
                    1.0
                } else {
                    -1.0
                };
        }
        x = (x + speed * dt * heading.cos()).clamp(NYC_EXTENT.min_x, NYC_EXTENT.max_x);
        y = (y + speed * dt * heading.sin()).clamp(NYC_EXTENT.min_y, NYC_EXTENT.max_y);
        t += dt;
        coords.push(x);
        coords.push(y);
        times.push(t);
    }
    let path = LineString::new(coords).ok()?;
    Trajectory::new(path, times).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::HasEnvelope;

    #[test]
    fn deterministic_and_in_extent() {
        let a = trajectories(200, 1);
        assert_eq!(a.len(), 200);
        assert_eq!(a, trajectories(200, 1));
        for t in &a {
            assert!(NYC_EXTENT.contains_envelope(&t.envelope()));
            assert!(t.duration() > 0.0);
            assert!((5..=40).contains(&t.num_samples()));
        }
    }

    #[test]
    fn speeds_are_taxi_like() {
        let trips = trajectories(500, 2);
        let speeds: Vec<f64> = trips.iter().map(Trajectory::average_speed).collect();
        let avg = speeds.iter().sum::<f64>() / speeds.len() as f64;
        // 15–45 ft/s sample speeds; clamping at borders slows some trips.
        assert!((8.0..45.0).contains(&avg), "avg speed {avg} ft/s");
    }

    #[test]
    fn records_round_trip() {
        let records = trip_records(50, 3);
        for (i, r) in records.iter().enumerate() {
            let (id, t) = geom::Trajectory::from_record(r).unwrap();
            assert_eq!(id, i as i64);
            assert!(t.num_samples() >= 5);
        }
    }
}
