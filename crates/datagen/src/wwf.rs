//! Synthetic WWF terrestrial-ecoregion polygons.
//!
//! The real dataset has 14,458 polygons with 4,028,622 vertices — 279 on
//! average, with enormous skew (coastal ecoregions are digitised with
//! tens of thousands of vertices). The generator reproduces the count,
//! the mean, and the skew with log-normally distributed vertex counts,
//! and emits star-shaped "blob" polygons (radial sinusoidal
//! perturbation) whose radius grows with their vertex count, mirroring
//! how larger regions carry more boundary detail. The skew is what
//! makes ISP-MC's static scheduling fall behind in the G10M-wwf
//! experiment (§V.C).

use crate::rng::StdRng;
use geom::{Geometry, Polygon};

use crate::rng::{lognormal, seeded};

/// Smallest ring we emit (closed quadrilateral).
const MIN_VERTICES: usize = 8;
/// Cap protecting against pathological log-normal tails.
const MAX_VERTICES: usize = 20_000;

/// Fraction of ecoregions that are scattered multipolygons
/// (archipelagos, disjoint climate bands). Their envelopes span far
/// more area than their parts, which is what drives the large
/// candidate sets — and hence refinement load — of the G10M-wwf join.
const MULTI_FRACTION: f64 = 0.30;

/// Generates `n` ecoregion polygons, deterministically from `seed`.
pub fn polygons(n: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = seeded(seed ^ 0x7777_6600); // "wwf"
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.extend(ecoregion(&mut rng));
    }
    out
}

/// Generates ecoregions wrapped as [`Geometry`] records: mostly single
/// polygons, with [`MULTI_FRACTION`] scattered multipolygons.
pub fn geometries(n: usize, seed: u64) -> Vec<Geometry> {
    let mut rng = seeded(seed ^ 0x7777_6601);
    polygons(n, seed)
        .into_iter()
        .map(|poly| {
            if rng.random_range(0.0..1.0) < MULTI_FRACTION {
                Geometry::MultiPolygon(scatter(&mut rng, poly))
            } else {
                Geometry::Polygon(poly)
            }
        })
        .collect()
}

/// Splits one blob into 2–5 translated copies scattered over a wide
/// band, shrinking each copy so the total vertex count and land area
/// stay comparable.
fn scatter(rng: &mut StdRng, poly: Polygon) -> geom::MultiPolygon {
    let parts = rng.random_range(2..=5usize);
    let src = poly.exterior().coords();
    let e = geom::HasEnvelope::envelope(&poly);
    let (cx, cy) = ((e.min_x + e.max_x) * 0.5, (e.min_y + e.max_y) * 0.5);
    let shrink = 1.0 / (parts as f64).sqrt();
    let mut out = Vec::with_capacity(parts);
    for _ in 0..parts {
        let dx = rng.random_range(-60.0..60.0);
        let dy = rng.random_range(-20.0..20.0);
        let coords: Vec<f64> = src
            .chunks_exact(2)
            .flat_map(|c| {
                let x = (cx + (c[0] - cx) * shrink + dx).clamp(-180.0, 180.0);
                let y = (cy + (c[1] - cy) * shrink + dy).clamp(-90.0, 90.0);
                [x, y]
            })
            .collect();
        // A clamped translation can in principle degenerate; drop the
        // part rather than panic — the multipolygon stays non-empty
        // because the source blob itself is valid.
        out.extend(Polygon::from_coords(coords, vec![]).ok());
    }
    geom::MultiPolygon::new(out)
}

/// One radial blob, or `None` in the (theoretical) case where clamping
/// at the world boundary degenerates the ring — the caller just draws
/// again.
fn ecoregion(rng: &mut StdRng) -> Option<Polygon> {
    // exp(mu + sigma^2/2) = 279 with sigma = 1 → mu = ln 279 − 0.5.
    let mu = (279.0f64).ln() - 0.5;
    let vertices = (lognormal(rng, mu, 1.0).round() as usize).clamp(MIN_VERTICES, MAX_VERTICES);

    // Centres in the same land-biased latitude bands as the GBIF points
    // so the two datasets actually join.
    let band: f64 = rng.random_range(0.0..1.0);
    let cy = if band < 0.5 {
        rng.random_range(25.0..60.0)
    } else if band < 0.8 {
        rng.random_range(-25.0..25.0)
    } else {
        rng.random_range(-55.0..-10.0)
    };
    let cx = rng.random_range(-165.0..165.0);

    // More boundary detail ⇒ physically larger region.
    let radius = (0.02 * (vertices as f64).powf(0.7)).min(12.0);

    // Star-shaped blob: r(θ) = R·(1 + Σ aᵢ sin(kᵢθ + φᵢ)); radial form
    // keeps the ring simple (non-self-intersecting) by construction.
    let harmonics: Vec<(f64, f64, f64)> = (0..3)
        .map(|h| {
            (
                rng.random_range(0.05..0.18),                 // amplitude
                (h + 2) as f64 + rng.random_range(0.0..3.0),  // frequency
                rng.random_range(0.0..std::f64::consts::TAU), // phase
            )
        })
        .collect();

    let ring_len = vertices - 1; // last vertex repeats the first
    let mut coords = Vec::with_capacity(vertices * 2);
    for i in 0..ring_len {
        let theta = std::f64::consts::TAU * i as f64 / ring_len as f64;
        let mut r = 1.0;
        for &(a, k, phi) in &harmonics {
            r += a * (k * theta + phi).sin();
        }
        let r = radius * r.max(0.2);
        // Clamp to the world extent; latitude squashing keeps blobs
        // roughly isotropic on the globe.
        let x = (cx + r * theta.cos()).clamp(-180.0, 180.0);
        let y = (cy + r * 0.8 * theta.sin()).clamp(-90.0, 90.0);
        coords.push(x);
        coords.push(y);
    }
    coords.push(coords[0]);
    coords.push(coords[1]);
    Polygon::from_coords(coords, vec![]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{HasEnvelope, Point};

    #[test]
    fn deterministic_count() {
        let a = polygons(300, 1);
        assert_eq!(a.len(), 300);
        let b = polygons(300, 1);
        assert_eq!(a[0].exterior().coords(), b[0].exterior().coords());
    }

    #[test]
    fn vertex_statistics_match_paper() {
        let polys = polygons(3000, 2);
        let counts: Vec<usize> = polys.iter().map(Polygon::num_points).collect();
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (180.0..420.0).contains(&avg),
            "avg vertices {avg}, paper reports 279"
        );
        // Heavy tail: the biggest polygon dwarfs the median.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(
            max > median * 10,
            "expected heavy tail, median {median} max {max}"
        );
    }

    #[test]
    fn polygons_are_inside_world_and_contain_their_centre() {
        let polys = polygons(200, 3);
        for p in &polys {
            let e = p.envelope();
            assert!(e.min_x >= -180.0 && e.max_x <= 180.0);
            assert!(e.min_y >= -90.0 && e.max_y <= 90.0);
            let c = e.center();
            // Star-shaped blobs always contain their centroid region;
            // use the envelope centre which coincides for these shapes.
            assert!(
                p.contains_point(Point::new(c.x, c.y)),
                "blob does not contain its centre"
            );
        }
    }

    #[test]
    fn area_scales_with_vertex_count() {
        let polys = polygons(2000, 4);
        let mut small_area = 0.0;
        let mut big_area = 0.0;
        for p in &polys {
            if p.num_points() < 50 {
                small_area = f64::max(small_area, p.area());
            }
            if p.num_points() > 1000 {
                big_area = f64::max(big_area, p.area());
            }
        }
        assert!(
            big_area > small_area,
            "detailed regions should be larger: {big_area} vs {small_area}"
        );
    }
}
