//! Polygon clipping against axis-aligned rectangles
//! (Sutherland–Hodgman).
//!
//! SpatialHadoop-style systems clip replicated geometries to their
//! partition cell so each cell stores only its share; this module
//! provides that primitive (plus polyline clipping for the same use on
//! street networks).

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

/// One rectangle edge, as a half-plane test.
#[derive(Clone, Copy)]
enum Side {
    Left(f64),
    Right(f64),
    Bottom(f64),
    Top(f64),
}

impl Side {
    fn inside(&self, p: Point) -> bool {
        match *self {
            Side::Left(x) => p.x >= x,
            Side::Right(x) => p.x <= x,
            Side::Bottom(y) => p.y >= y,
            Side::Top(y) => p.y <= y,
        }
    }

    /// Intersection of segment `a..b` with this side's boundary line.
    fn intersect(&self, a: Point, b: Point) -> Point {
        match *self {
            Side::Left(x) | Side::Right(x) => {
                let t = (x - a.x) / (b.x - a.x);
                Point::new(x, a.y + t * (b.y - a.y))
            }
            Side::Bottom(y) | Side::Top(y) => {
                let t = (y - a.y) / (b.y - a.y);
                Point::new(a.x + t * (b.x - a.x), y)
            }
        }
    }
}

/// Clips a polygon's exterior ring to a rectangle. Returns `None` when
/// the intersection is empty or degenerate (holes are not supported —
/// the partition-clipping use case works on exterior shells).
///
/// # Errors
/// Returns [`GeomError::UnsupportedGeometry`] for polygons with holes.
pub fn clip_polygon(poly: &Polygon, rect: Envelope) -> Result<Option<Polygon>, GeomError> {
    if !poly.holes().is_empty() {
        return Err(GeomError::UnsupportedGeometry("POLYGON with holes"));
    }
    let coords = poly.exterior().coords();
    let n = coords.len() / 2;
    // Drop the closing vertex for the algorithm.
    let mut ring: Vec<Point> = (0..n - 1)
        .map(|i| Point::new(coords[2 * i], coords[2 * i + 1]))
        .collect();

    for side in [
        Side::Left(rect.min_x),
        Side::Right(rect.max_x),
        Side::Bottom(rect.min_y),
        Side::Top(rect.max_y),
    ] {
        if ring.is_empty() {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(ring.len() + 4);
        for i in 0..ring.len() {
            let cur = ring[i];
            let prev = ring[(i + ring.len() - 1) % ring.len()];
            match (side.inside(prev), side.inside(cur)) {
                (true, true) => out.push(cur),
                (true, false) => out.push(side.intersect(prev, cur)),
                (false, true) => {
                    out.push(side.intersect(prev, cur));
                    out.push(cur);
                }
                (false, false) => {}
            }
        }
        ring = out;
    }
    // Deduplicate consecutive identical vertices the clipping can emit.
    ring.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if ring.len() < 3 {
        return Ok(None);
    }
    let mut out_coords: Vec<f64> = ring.iter().flat_map(|p| [p.x, p.y]).collect();
    out_coords.push(ring[0].x);
    out_coords.push(ring[0].y);
    match Polygon::from_coords(out_coords, vec![]) {
        Ok(p) if p.area() > 0.0 => Ok(Some(p)),
        _ => Ok(None),
    }
}

/// Clips a polyline to a rectangle, returning the pieces inside.
pub fn clip_linestring(ls: &LineString, rect: Envelope) -> Vec<LineString> {
    let mut pieces: Vec<Vec<f64>> = Vec::new();
    let mut current: Vec<f64> = Vec::new();
    for (a, b) in ls.segments() {
        if let Some((ca, cb)) = clip_segment(a, b, rect) {
            let connects = current
                .rchunks_exact(2)
                .next()
                .map(|last| last[0] == ca.x && last[1] == ca.y)
                .unwrap_or(false);
            if !connects {
                if current.len() >= 4 {
                    pieces.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
                current.push(ca.x);
                current.push(ca.y);
            }
            current.push(cb.x);
            current.push(cb.y);
        }
    }
    if current.len() >= 4 {
        pieces.push(current);
    }
    pieces
        .into_iter()
        .filter_map(|c| LineString::new(c).ok())
        .collect()
}

/// Liang–Barsky segment clipping; `None` when fully outside.
fn clip_segment(a: Point, b: Point, rect: Envelope) -> Option<(Point, Point)> {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    for (p, q) in [
        (-dx, a.x - rect.min_x),
        (dx, rect.max_x - a.x),
        (-dy, a.y - rect.min_y),
        (dy, rect.max_y - a.y),
    ] {
        if p == 0.0 {
            if q < 0.0 {
                return None;
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                t0 = t0.max(r);
            } else {
                t1 = t1.min(r);
            }
            if t0 > t1 {
                return None;
            }
        }
    }
    Some((
        Point::new(a.x + t0 * dx, a.y + t0 * dy),
        Point::new(a.x + t1 * dx, a.y + t1 * dy),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_fully_inside_is_identity_shaped() {
        let poly = Polygon::rectangle(Envelope::new(1.0, 1.0, 2.0, 2.0));
        let clipped = clip_polygon(&poly, Envelope::new(0.0, 0.0, 10.0, 10.0))
            .unwrap()
            .unwrap();
        assert!((clipped.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_partial_overlap_has_intersection_area() {
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 4.0, 4.0));
        let clipped = clip_polygon(&poly, Envelope::new(2.0, 2.0, 10.0, 10.0))
            .unwrap()
            .unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-12); // 2×2 corner
    }

    #[test]
    fn clip_disjoint_is_none() {
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0));
        assert!(clip_polygon(&poly, Envelope::new(5.0, 5.0, 6.0, 6.0))
            .unwrap()
            .is_none());
    }

    #[test]
    fn clip_triangle_against_window() {
        let tri = Polygon::from_coords(vec![0.0, 0.0, 8.0, 0.0, 0.0, 8.0], vec![]).unwrap();
        // Inside [0,4]^2 the constraint x+y <= 8 always holds, so the
        // clip is the whole window.
        let clipped = clip_polygon(&tri, Envelope::new(0.0, 0.0, 4.0, 4.0))
            .unwrap()
            .unwrap();
        assert!((clipped.area() - 16.0).abs() < 1e-9);
        // Inside [2,6]^2 the hypotenuse x+y = 8 cuts off the corner
        // triangle (2,6)-(6,2)-(6,6) of area 8, leaving 16 - 8 = 8.
        let smaller = clip_polygon(&tri, Envelope::new(2.0, 2.0, 6.0, 6.0))
            .unwrap()
            .unwrap();
        assert!((smaller.area() - 8.0).abs() < 1e-9);
        // Inside [4,8]^2 the intersection is the single point (4,4):
        // degenerate, reported as empty.
        assert!(clip_polygon(&tri, Envelope::new(4.0, 4.0, 8.0, 8.0))
            .unwrap()
            .is_none());
    }

    #[test]
    fn polygon_with_holes_is_rejected() {
        let poly = Polygon::from_coords(
            vec![0.0, 0.0, 4.0, 0.0, 4.0, 4.0, 0.0, 4.0],
            vec![vec![1.0, 1.0, 2.0, 1.0, 2.0, 2.0, 1.0, 2.0]],
        )
        .unwrap();
        assert!(clip_polygon(&poly, Envelope::new(0.0, 0.0, 1.0, 1.0)).is_err());
    }

    #[test]
    fn clip_linestring_produces_inside_pieces() {
        let ls = LineString::new(vec![-2.0, 1.0, 12.0, 1.0]).unwrap(); // crosses window
        let rect = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let pieces = clip_linestring(&ls, rect);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].point(0), Point::new(0.0, 1.0));
        assert_eq!(pieces[0].point(1), Point::new(10.0, 1.0));

        // A zig-zag leaving and re-entering produces two pieces.
        let zig = LineString::new(vec![1.0, 1.0, 1.0, 12.0, 5.0, 12.0, 5.0, 1.0]).unwrap();
        let pieces = clip_linestring(&zig, rect);
        assert_eq!(pieces.len(), 2);

        // Fully outside → nothing.
        let out = LineString::new(vec![20.0, 20.0, 30.0, 30.0]).unwrap();
        assert!(clip_linestring(&out, rect).is_empty());
    }
}
