//! Distance computations (the `NearestD` predicate of the paper).

use crate::algorithms::segment::point_segment_distance_sq;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

/// Minimum distance from a point to a polyline (0 when on the line).
pub fn point_to_linestring(p: Point, ls: &LineString) -> f64 {
    let mut best = f64::INFINITY;
    for (a, b) in ls.segments() {
        let d = point_segment_distance_sq(p, a, b);
        if d < best {
            best = d;
            if best == 0.0 {
                break;
            }
        }
    }
    best.sqrt()
}

/// True when the point is within `distance` of the polyline.
///
/// Prunes with the polyline envelope first, then compares squared
/// distances segment by segment with early exit — the hot path of the
/// taxi-lion experiments.
pub fn point_within_distance_of_linestring(p: Point, ls: &LineString, distance: f64) -> bool {
    use crate::HasEnvelope;
    if ls.envelope().distance_to_point(p) > distance {
        return false;
    }
    let d_sq = distance * distance;
    for (a, b) in ls.segments() {
        if point_segment_distance_sq(p, a, b) <= d_sq {
            return true;
        }
    }
    false
}

/// Minimum distance from a point to a polygon: 0 when inside, otherwise
/// the distance to the nearest boundary segment.
pub fn point_to_polygon(p: Point, poly: &Polygon) -> f64 {
    if poly.contains_point(p) {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    let mut scan_ring = |coords: &[f64]| {
        let n = coords.len() / 2;
        for i in 0..n.saturating_sub(1) {
            let a = Point::new(coords[2 * i], coords[2 * i + 1]);
            let b = Point::new(coords[2 * i + 2], coords[2 * i + 3]);
            let d = point_segment_distance_sq(p, a, b);
            if d < best {
                best = d;
            }
        }
    };
    scan_ring(poly.exterior().coords());
    for h in poly.holes() {
        scan_ring(h.coords());
    }
    best.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    #[test]
    fn point_to_linestring_basics() {
        let ls = LineString::new(vec![0.0, 0.0, 10.0, 0.0]).unwrap();
        assert_eq!(point_to_linestring(Point::new(5.0, 2.0), &ls), 2.0);
        assert_eq!(point_to_linestring(Point::new(5.0, 0.0), &ls), 0.0);
        assert_eq!(point_to_linestring(Point::new(-3.0, 4.0), &ls), 5.0);
    }

    #[test]
    fn within_distance_uses_envelope_prune() {
        let ls = LineString::new(vec![0.0, 0.0, 10.0, 0.0]).unwrap();
        assert!(point_within_distance_of_linestring(
            Point::new(5.0, 1.0),
            &ls,
            1.0
        ));
        assert!(!point_within_distance_of_linestring(
            Point::new(5.0, 1.01),
            &ls,
            1.0
        ));
        // Far outside the expanded envelope: prune path.
        assert!(!point_within_distance_of_linestring(
            Point::new(100.0, 100.0),
            &ls,
            1.0
        ));
    }

    #[test]
    fn multi_segment_minimum() {
        let ls = LineString::new(vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0]).unwrap();
        let d = point_to_linestring(Point::new(9.0, 8.0), &ls);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn point_to_polygon_inside_is_zero() {
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 4.0, 4.0));
        assert_eq!(point_to_polygon(Point::new(2.0, 2.0), &poly), 0.0);
        assert_eq!(point_to_polygon(Point::new(7.0, 2.0), &poly), 3.0);
    }

    #[test]
    fn point_to_polygon_respects_holes() {
        let poly = Polygon::from_coords(
            vec![0.0, 0.0, 6.0, 0.0, 6.0, 6.0, 0.0, 6.0],
            vec![vec![2.0, 2.0, 4.0, 2.0, 4.0, 4.0, 2.0, 4.0]],
        )
        .unwrap();
        // Centre of the hole: nearest boundary is the hole ring, 1 away.
        assert_eq!(point_to_polygon(Point::new(3.0, 3.0), &poly), 1.0);
    }
}
