//! Convex hulls (Andrew's monotone chain).
//!
//! Used by the partitioners to derive tight partition boundaries from
//! point samples, and generally useful library surface for a spatial
//! kernel.

use crate::error::GeomError;
use crate::point::Point;
use crate::polygon::Polygon;

/// Computes the convex hull of a point set as a counter-clockwise
/// polygon.
///
/// # Errors
/// Fails with [`GeomError::Invalid`] when fewer than three
/// non-collinear points are supplied (the hull would be degenerate).
pub fn convex_hull(points: &[Point]) -> Result<Polygon, GeomError> {
    if points.len() < 3 {
        return Err(GeomError::Invalid(
            "convex hull needs at least three points".into(),
        ));
    }
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if pts.len() < 3 {
        return Err(GeomError::Invalid(
            "convex hull needs at least three distinct points".into(),
        ));
    }

    let cross =
        |o: Point, a: Point, b: Point| (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);

    let mut lower: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);

    if lower.len() < 3 {
        return Err(GeomError::Invalid(
            "all points are collinear; hull is degenerate".into(),
        ));
    }
    let mut coords = Vec::with_capacity((lower.len() + 1) * 2);
    for p in &lower {
        coords.push(p.x);
        coords.push(p.y);
    }
    coords.push(lower[0].x);
    coords.push(lower[0].y);
    Polygon::from_coords(coords, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 3.0), // interior
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.exterior().num_points(), 5); // 4 corners + closure
        assert_eq!(hull.area(), 16.0);
        // All inputs are contained.
        for p in &pts {
            assert!(hull.contains_point(*p));
        }
        // CCW orientation.
        assert!(hull.exterior().signed_area() > 0.0);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(convex_hull(&[]).is_err());
        assert!(convex_hull(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_err());
        // Collinear points have no 2-D hull.
        let collinear: Vec<Point> = (0..10).map(|i| Point::new(i as f64, i as f64)).collect();
        assert!(convex_hull(&collinear).is_err());
        // Duplicates collapse.
        let dups = vec![Point::new(0.0, 0.0); 8];
        assert!(convex_hull(&dups).is_err());
    }

    #[test]
    fn hull_contains_every_random_input() {
        let pts = crate::tests_support::pseudo_random_points(500, 7.0);
        let hull = convex_hull(&pts).unwrap();
        for p in &pts {
            assert!(hull.contains_point(*p), "hull must contain input {p:?}");
        }
    }
}
