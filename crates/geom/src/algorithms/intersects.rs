//! Intersection predicates between geometry types.
//!
//! §IV of the paper mentions that ISP-MC's refinement UDFs wrap the
//! library's "intersect and contains" operations; these are the
//! from-scratch equivalents, used by the polygon-polygon and
//! polyline-polygon join extensions.

use crate::algorithms::pip::point_in_ring;
use crate::algorithms::segment::cross;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// True when the closed segments `a1..a2` and `b1..b2` share at least
/// one point (properly crossing, touching, or collinear-overlapping).
pub fn segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    let d1 = cross(b1, b2, a1);
    let d2 = cross(b1, b2, a2);
    let d3 = cross(a1, a2, b1);
    let d4 = cross(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    // Collinear / endpoint-touching cases.
    (d1 == 0.0 && on_segment_collinear(b1, b2, a1))
        || (d2 == 0.0 && on_segment_collinear(b1, b2, a2))
        || (d3 == 0.0 && on_segment_collinear(a1, a2, b1))
        || (d4 == 0.0 && on_segment_collinear(a1, a2, b2))
}

/// For a point `p` known collinear with `a..b`: is it within the
/// segment's bounding range?
fn on_segment_collinear(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Iterates over the segments of a closed ring given as a flat array.
fn ring_segments(coords: &[f64]) -> impl Iterator<Item = (Point, Point)> + '_ {
    let n = coords.len() / 2;
    (0..n.saturating_sub(1)).map(move |i| {
        (
            Point::new(coords[2 * i], coords[2 * i + 1]),
            Point::new(coords[2 * i + 2], coords[2 * i + 3]),
        )
    })
}

/// True when the polyline and polygon share at least one point: any
/// segment crosses the boundary, or the polyline lies (partly) inside.
pub fn linestring_intersects_polygon(ls: &LineString, poly: &Polygon) -> bool {
    if !ls.envelope().intersects(&poly.envelope()) {
        return false;
    }
    // Any vertex inside is enough (covers fully-interior polylines).
    if poly.contains_point(ls.point(0)) {
        return true;
    }
    // Otherwise some segment must cross a ring.
    let mut rings: Vec<&[f64]> = vec![poly.exterior().coords()];
    rings.extend(poly.holes().iter().map(|h| h.coords()));
    for (a, b) in ls.segments() {
        for ring in &rings {
            for (c, d) in ring_segments(ring) {
                if segments_intersect(a, b, c, d) {
                    return true;
                }
            }
        }
    }
    false
}

/// True when the two polygons share at least one point: boundary
/// crossing, containment of one in the other, or touching.
pub fn polygons_intersect(a: &Polygon, b: &Polygon) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    // Containment without boundary crossing: test one vertex each way.
    if b.contains_point(a.exterior().point(0)) || a.contains_point(b.exterior().point(0)) {
        return true;
    }
    for (s1, s2) in ring_segments(a.exterior().coords()) {
        for (t1, t2) in ring_segments(b.exterior().coords()) {
            if segments_intersect(s1, s2, t1, t2) {
                return true;
            }
        }
    }
    false
}

/// True when polygon `inner` lies entirely within polygon `outer`
/// (boundary contact allowed): every vertex of `inner` is contained and
/// no edge of `inner` crosses out through a hole of `outer`.
pub fn polygon_contains_polygon(outer: &Polygon, inner: &Polygon) -> bool {
    if !outer.envelope().contains_envelope(&inner.envelope()) {
        return false;
    }
    let n = inner.exterior().num_points();
    for i in 0..n {
        if !outer.contains_point(inner.exterior().point(i)) {
            return false;
        }
    }
    // Vertices inside but an edge could still dip into a hole.
    for hole in outer.holes() {
        for (a, b) in ring_segments(inner.exterior().coords()) {
            let mid = Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
            if point_in_ring(mid, hole.coords())
                && !crate::algorithms::pip::point_on_ring(mid, hole.coords())
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Envelope;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::rectangle(Envelope::new(x, y, x + s, y + s))
    }

    #[test]
    fn segment_crossing_cases() {
        let o = Point::new(0.0, 0.0);
        assert!(segments_intersect(
            o,
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
        // Touching at an endpoint.
        assert!(segments_intersect(
            o,
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 5.0)
        ));
        // Collinear overlap.
        assert!(segments_intersect(
            o,
            Point::new(3.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(5.0, 0.0)
        ));
        // Collinear but disjoint.
        assert!(!segments_intersect(
            o,
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0)
        ));
        // Parallel, offset.
        assert!(!segments_intersect(
            o,
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0)
        ));
    }

    #[test]
    fn line_polygon_cases() {
        let poly = square(0.0, 0.0, 4.0);
        // Crossing through.
        let crossing = LineString::new(vec![-1.0, 2.0, 5.0, 2.0]).unwrap();
        assert!(linestring_intersects_polygon(&crossing, &poly));
        // Fully inside.
        let inside = LineString::new(vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        assert!(linestring_intersects_polygon(&inside, &poly));
        // Fully outside.
        let outside = LineString::new(vec![5.0, 5.0, 6.0, 6.0]).unwrap();
        assert!(!linestring_intersects_polygon(&outside, &poly));
        // Outside but envelope-overlapping (diagonal corner miss).
        let graze = LineString::new(vec![-2.0, 3.5, 3.5, 9.0]).unwrap();
        assert!(!linestring_intersects_polygon(&graze, &poly));
    }

    #[test]
    fn polygon_polygon_cases() {
        let a = square(0.0, 0.0, 4.0);
        assert!(polygons_intersect(&a, &square(2.0, 2.0, 4.0))); // overlap
        assert!(polygons_intersect(&a, &square(1.0, 1.0, 2.0))); // contains
        assert!(polygons_intersect(&square(1.0, 1.0, 2.0), &a)); // contained
        assert!(polygons_intersect(&a, &square(4.0, 0.0, 2.0))); // touching edge
        assert!(!polygons_intersect(&a, &square(5.0, 5.0, 1.0))); // disjoint
    }

    #[test]
    fn polygon_containment_with_holes() {
        let outer = Polygon::from_coords(
            vec![0.0, 0.0, 10.0, 0.0, 10.0, 10.0, 0.0, 10.0],
            vec![vec![4.0, 4.0, 6.0, 4.0, 6.0, 6.0, 4.0, 6.0]],
        )
        .unwrap();
        assert!(polygon_contains_polygon(&outer, &square(1.0, 1.0, 2.0)));
        // Straddles the hole: vertices inside, edge midpoint in the hole.
        let straddle =
            Polygon::from_coords(vec![3.0, 4.5, 7.0, 4.5, 7.0, 5.5, 3.0, 5.5], vec![]).unwrap();
        assert!(!polygon_contains_polygon(&outer, &straddle));
        // Outside entirely.
        assert!(!polygon_contains_polygon(&outer, &square(9.0, 9.0, 5.0)));
        // Containment is not symmetric.
        assert!(!polygon_contains_polygon(&square(1.0, 1.0, 2.0), &outer));
    }
}
