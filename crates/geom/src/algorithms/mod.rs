//! Low-level computational-geometry routines shared by both refinement
//! engines.
//!
//! The paper calls this layer *spatial refinement*: "evaluating the
//! spatial relationships between the paired spatial objects", which
//! "relies on efficient computational geometry algorithms" (§II).

pub mod clip;
pub mod distance;
pub mod hull;
pub mod intersects;
pub mod pip;
pub mod segment;
pub mod simplify;
