//! Point-in-polygon tests (the `Within` predicate of the paper).
//!
//! The core is the classic ray-casting (crossing-number) algorithm over a
//! closed ring stored as a flat coordinate array. Boundary points are
//! treated as *inside*, matching JTS/GEOS `within` semantics for the
//! point-in-polygon joins the paper runs.

use crate::algorithms::segment::point_on_segment;
use crate::point::Point;

/// True when `p` is strictly inside or on the boundary of the closed ring
/// `coords` (`[x0, y0, ..., x0, y0]`, first point repeated at the end).
pub fn point_in_ring(p: Point, coords: &[f64]) -> bool {
    if point_on_ring(p, coords) {
        return true;
    }
    crossings_odd(p, coords)
}

/// True when `p` lies on one of the ring's segments.
pub fn point_on_ring(p: Point, coords: &[f64]) -> bool {
    let n = coords.len() / 2;
    for i in 0..n.saturating_sub(1) {
        let a = Point::new(coords[2 * i], coords[2 * i + 1]);
        let b = Point::new(coords[2 * i + 2], coords[2 * i + 3]);
        if point_on_segment(p, a, b) {
            return true;
        }
    }
    false
}

/// Raw crossing-number parity for a point not on the boundary: true when
/// the ray from `p` towards `+x` crosses the ring an odd number of times.
///
/// The half-open `(y1 > py) != (y2 > py)` rule makes vertices on the ray
/// count exactly once, so the parity is well defined everywhere except on
/// the boundary itself (handled separately by [`point_on_ring`]).
#[inline]
pub fn crossings_odd(p: Point, coords: &[f64]) -> bool {
    let n = coords.len() / 2;
    let (px, py) = (p.x, p.y);
    let mut inside = false;
    for i in 0..n.saturating_sub(1) {
        let (x1, y1) = (coords[2 * i], coords[2 * i + 1]);
        let (x2, y2) = (coords[2 * i + 2], coords[2 * i + 3]);
        if (y1 > py) != (y2 > py) {
            let x_int = x1 + (py - y1) * (x2 - x1) / (y2 - y1);
            if px < x_int {
                inside = !inside;
            }
        }
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<f64> {
        vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0]
    }

    #[test]
    fn interior_and_exterior() {
        let ring = unit_square();
        assert!(point_in_ring(Point::new(0.5, 0.5), &ring));
        assert!(!point_in_ring(Point::new(1.5, 0.5), &ring));
        assert!(!point_in_ring(Point::new(0.5, -0.5), &ring));
    }

    #[test]
    fn boundary_counts_as_inside() {
        let ring = unit_square();
        assert!(point_in_ring(Point::new(0.0, 0.0), &ring)); // corner
        assert!(point_in_ring(Point::new(0.5, 0.0), &ring)); // edge
        assert!(point_in_ring(Point::new(1.0, 0.7), &ring)); // right edge
        assert!(point_on_ring(Point::new(1.0, 0.7), &ring));
        assert!(!point_on_ring(Point::new(0.5, 0.5), &ring));
    }

    #[test]
    fn ray_through_vertex_is_counted_once() {
        // Diamond whose left/right vertices are exactly at y = 0, the ray
        // height for the probe points — a classic ray-casting trap.
        let diamond = vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 0.0];
        assert!(point_in_ring(Point::new(0.0, 0.0), &diamond));
        assert!(!point_in_ring(Point::new(-2.0, 0.0), &diamond));
        assert!(!point_in_ring(Point::new(2.0, 0.0), &diamond));
    }

    #[test]
    fn concave_ring() {
        // U-shape opening upward.
        let u = vec![
            0.0, 0.0, 3.0, 0.0, 3.0, 3.0, 2.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0, 3.0, 0.0, 3.0, 0.0,
            0.0,
        ];
        assert!(point_in_ring(Point::new(0.5, 2.0), &u)); // left arm
        assert!(point_in_ring(Point::new(2.5, 2.0), &u)); // right arm
        assert!(!point_in_ring(Point::new(1.5, 2.0), &u)); // the gap
        assert!(point_in_ring(Point::new(1.5, 0.5), &u)); // the base
    }
}
