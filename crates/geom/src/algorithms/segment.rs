//! Segment-level primitives.

use crate::point::Point;

/// Tolerance for the collinearity test in [`point_on_segment`]. The
/// datasets in this workspace use coordinates with magnitude ≤ 1e3, so a
/// fixed absolute tolerance this small only accepts genuinely-on-boundary
/// points.
const ON_SEGMENT_EPS: f64 = 1e-12;

/// Sign of the cross product `(b - a) × (c - a)`:
/// `> 0` when `c` is left of `a→b`, `< 0` right, `0` collinear.
#[inline]
pub fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// True when `p` lies on the closed segment `a..b` (within a tiny
/// collinearity tolerance).
#[inline]
pub fn point_on_segment(p: Point, a: Point, b: Point) -> bool {
    if p.x < a.x.min(b.x) - ON_SEGMENT_EPS
        || p.x > a.x.max(b.x) + ON_SEGMENT_EPS
        || p.y < a.y.min(b.y) - ON_SEGMENT_EPS
        || p.y > a.y.max(b.y) + ON_SEGMENT_EPS
    {
        return false;
    }
    cross(a, b, p).abs() <= ON_SEGMENT_EPS
}

/// Squared distance from `p` to the closed segment `a..b`.
#[inline]
pub fn point_segment_distance_sq(p: Point, a: Point, b: Point) -> f64 {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return p.distance_sq(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    let proj = Point::new(a.x + t * dx, a.y + t * dy);
    p.distance_sq(proj)
}

/// Distance from `p` to the closed segment `a..b`.
#[inline]
pub fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    point_segment_distance_sq(p, a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_sign_reflects_side() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(cross(a, b, Point::new(0.5, 1.0)) > 0.0);
        assert!(cross(a, b, Point::new(0.5, -1.0)) < 0.0);
        assert_eq!(cross(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn on_segment_detects_endpoints_and_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 2.0);
        assert!(point_on_segment(a, a, b));
        assert!(point_on_segment(b, a, b));
        assert!(point_on_segment(Point::new(1.0, 1.0), a, b));
        assert!(!point_on_segment(Point::new(3.0, 3.0), a, b)); // collinear, past end
        assert!(!point_on_segment(Point::new(1.0, 1.5), a, b));
    }

    #[test]
    fn segment_distance_projects_or_clamps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Perpendicular projection onto the interior.
        assert_eq!(point_segment_distance(Point::new(5.0, 3.0), a, b), 3.0);
        // Clamped to endpoint a.
        assert_eq!(point_segment_distance(Point::new(-3.0, 4.0), a, b), 5.0);
        // Clamped to endpoint b.
        assert_eq!(point_segment_distance(Point::new(13.0, 4.0), a, b), 5.0);
        // On the segment.
        assert_eq!(point_segment_distance(Point::new(2.0, 0.0), a, b), 0.0);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(point_segment_distance(Point::new(4.0, 5.0), a, a), 5.0);
    }
}
