//! Polyline simplification (Ramer–Douglas–Peucker).
//!
//! Used to thin dense polylines and trajectories while bounding the
//! spatial error — directly useful for the trajectory workloads the
//! paper names as future work, and for shrinking the vertex-heavy wwf
//! boundaries.

use crate::algorithms::segment::point_segment_distance_sq;
use crate::error::GeomError;
use crate::linestring::LineString;
use crate::point::Point;

/// Simplifies a polyline, keeping every retained vertex within
/// `tolerance` of the original line.
///
/// # Errors
/// Propagates construction errors (cannot happen for valid input: the
/// endpoints are always retained).
pub fn simplify_linestring(ls: &LineString, tolerance: f64) -> Result<LineString, GeomError> {
    let n = ls.num_points();
    if n <= 2 {
        return LineString::new(ls.coords().to_vec());
    }
    let pts: Vec<Point> = (0..n).map(|i| ls.point(i)).collect();
    let keep = simplify_points(&pts, tolerance);
    let coords: Vec<f64> = keep.iter().flat_map(|p| [p.x, p.y]).collect();
    LineString::new(coords)
}

/// Core RDP over a point slice; always keeps the first and last points.
pub fn simplify_points(pts: &[Point], tolerance: f64) -> Vec<Point> {
    if pts.len() <= 2 {
        return pts.to_vec();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    let tol_sq = tolerance * tolerance;

    // Iterative stack to avoid recursion depth on long trajectories.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo + 1, -1.0f64);
        for i in lo + 1..hi {
            let d = point_segment_distance_sq(pts[i], pts[lo], pts[hi]);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > tol_sq {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    pts.iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let ls =
            LineString::new((0..20).flat_map(|i| [i as f64, 0.0]).collect::<Vec<_>>()).unwrap();
        let s = simplify_linestring(&ls, 0.01).unwrap();
        assert_eq!(s.num_points(), 2);
        assert_eq!(s.point(0), Point::new(0.0, 0.0));
        assert_eq!(s.point(1), Point::new(19.0, 0.0));
    }

    #[test]
    fn significant_corners_survive() {
        let ls = LineString::new(vec![0.0, 0.0, 5.0, 0.0, 5.0, 5.0, 10.0, 5.0]).unwrap();
        let s = simplify_linestring(&ls, 0.5).unwrap();
        assert_eq!(s.num_points(), 4, "right-angle corners must be kept");
    }

    #[test]
    fn error_is_bounded_by_tolerance() {
        // A noisy sine curve.
        let pts: Vec<Point> = (0..200)
            .map(|i| {
                let x = i as f64 * 0.1;
                Point::new(x, x.sin() + ((i * 7919) % 13) as f64 * 0.001)
            })
            .collect();
        let tol = 0.05;
        let kept = simplify_points(&pts, tol);
        assert!(kept.len() < pts.len());
        // Every original point is within tol of the simplified chain.
        let chain = LineString::from_points(&kept).unwrap();
        for p in &pts {
            assert!(
                chain.distance_to_point(*p) <= tol + 1e-9,
                "point {p:?} exceeds tolerance"
            );
        }
    }

    #[test]
    fn two_point_line_is_unchanged() {
        let ls = LineString::new(vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let s = simplify_linestring(&ls, 100.0).unwrap();
        assert_eq!(s, ls);
    }
}
