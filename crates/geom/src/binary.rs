//! Compact binary geometry encoding.
//!
//! The paper stores geometry as WKT strings "to provide a fair
//! comparison … as well as make it compatible with existing
//! Hadoop-based systems", noting that "it is technically possible to
//! represent geometry … as binary both in-memory and on HDFS to avoid
//! string parsing overheads … This is left for our future work" (§III).
//! This module implements that future work: a little-endian,
//! WKB-flavoured tagged encoding, with `benches/representation.rs`
//! quantifying the parse-cost gap against WKT.
//!
//! Layout (all integers little-endian `u32`, coordinates `f64`):
//!
//! ```text
//! tag:u8, then per type —
//!   1 POINT            x y
//!   2 LINESTRING       n, then n × (x y)
//!   3 POLYGON          rings, then per ring: n, n × (x y)
//!   4 MULTIPOINT       n, then n × (x y)
//!   5 MULTILINESTRING  parts, then per part: n, n × (x y)
//!   6 MULTIPOLYGON     parts, then per part: rings, per ring: n, n × (x y)
//! ```

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

const TAG_POINT: u8 = 1;
const TAG_LINESTRING: u8 = 2;
const TAG_POLYGON: u8 = 3;
const TAG_MULTIPOINT: u8 = 4;
const TAG_MULTILINESTRING: u8 = 5;
const TAG_MULTIPOLYGON: u8 = 6;

/// Encodes a geometry to a fresh buffer.
pub fn encode(geom: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(geom.num_points() * 16 + 8);
    encode_into(geom, &mut out);
    out
}

/// Encodes a geometry, appending to `out`.
///
/// This is the shuffle/broadcast serialization hot path: one call per
/// record written, so the writers below only ever append to the
/// caller's buffer — the single allocation happens in [`encode`].
// tidy:alloc-free:start
pub fn encode_into(geom: &Geometry, out: &mut Vec<u8>) {
    match geom {
        Geometry::Point(p) => {
            out.push(TAG_POINT);
            put_f64(out, p.x);
            put_f64(out, p.y);
        }
        Geometry::LineString(l) => {
            out.push(TAG_LINESTRING);
            put_coords(out, l.coords());
        }
        Geometry::Polygon(poly) => {
            out.push(TAG_POLYGON);
            put_polygon(out, poly);
        }
        Geometry::MultiPoint(mp) => {
            out.push(TAG_MULTIPOINT);
            put_u32(out, mp.points.len() as u32);
            for p in &mp.points {
                put_f64(out, p.x);
                put_f64(out, p.y);
            }
        }
        Geometry::MultiLineString(ml) => {
            out.push(TAG_MULTILINESTRING);
            put_u32(out, ml.lines.len() as u32);
            for l in &ml.lines {
                put_coords(out, l.coords());
            }
        }
        Geometry::MultiPolygon(mp) => {
            out.push(TAG_MULTIPOLYGON);
            put_u32(out, mp.polygons.len() as u32);
            for poly in &mp.polygons {
                put_polygon(out, poly);
            }
        }
    }
}

/// Decodes one geometry from the front of `bytes`, returning the
/// geometry and the number of bytes consumed.
///
/// # Errors
/// Returns [`GeomError::Invalid`] on truncated or malformed input.
pub fn decode(bytes: &[u8]) -> Result<(Geometry, usize), GeomError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let geom = cur.geometry()?;
    Ok((geom, cur.pos))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_coords(out: &mut Vec<u8>, coords: &[f64]) {
    put_u32(out, (coords.len() / 2) as u32);
    for &c in coords {
        put_f64(out, c);
    }
}

fn put_polygon(out: &mut Vec<u8>, poly: &Polygon) {
    put_u32(out, 1 + poly.holes().len() as u32);
    put_coords(out, poly.exterior().coords());
    for h in poly.holes() {
        put_coords(out, h.coords());
    }
}
// tidy:alloc-free:end

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn truncated(&self) -> GeomError {
        GeomError::Invalid(format!("binary geometry truncated at byte {}", self.pos))
    }

    // The fixed-width readers and coordinate fill loops run once per
    // coordinate of every decoded geometry — the per-record shuffle
    // decode cost `benches/representation.rs` measures — so they must
    // not allocate or panic; buffers are sized before entering them.
    // tidy:alloc-free:start
    fn u8(&mut self) -> Result<u8, GeomError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, GeomError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(slice);
        self.pos = end;
        Ok(u32::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, GeomError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(slice);
        self.pos = end;
        Ok(f64::from_le_bytes(buf))
    }

    // The per-coordinate fill loops: callers reserve capacity up
    // front, so the loop body itself never grows the buffer.
    fn fill_coords(&mut self, n: usize, out: &mut Vec<f64>) -> Result<(), GeomError> {
        for _ in 0..n {
            out.push(self.f64()?);
            out.push(self.f64()?);
        }
        Ok(())
    }

    fn fill_points(&mut self, n: usize, out: &mut Vec<Point>) -> Result<(), GeomError> {
        for _ in 0..n {
            let x = self.f64()?;
            let y = self.f64()?;
            out.push(Point::new(x, y));
        }
        Ok(())
    }
    // tidy:alloc-free:end

    fn coords(&mut self) -> Result<Vec<f64>, GeomError> {
        let n = self.u32()? as usize;
        // Sanity bound: refuse counts beyond the remaining bytes.
        if n > (self.bytes.len() - self.pos) / 16 + 1 {
            return Err(GeomError::Invalid(format!(
                "implausible coordinate count {n}"
            )));
        }
        let mut out = Vec::with_capacity(n * 2);
        self.fill_coords(n, &mut out)?;
        Ok(out)
    }

    fn polygon(&mut self) -> Result<Polygon, GeomError> {
        let rings = self.u32()? as usize;
        if rings == 0 {
            return Err(GeomError::Invalid("polygon with zero rings".into()));
        }
        let exterior = Ring::new(self.coords()?)?;
        let mut holes = Vec::with_capacity(rings - 1);
        for _ in 1..rings {
            holes.push(Ring::new(self.coords()?)?);
        }
        Ok(Polygon::new(exterior, holes))
    }

    fn geometry(&mut self) -> Result<Geometry, GeomError> {
        match self.u8()? {
            TAG_POINT => {
                let x = self.f64()?;
                let y = self.f64()?;
                Ok(Geometry::Point(Point::new(x, y)))
            }
            TAG_LINESTRING => Ok(Geometry::LineString(LineString::new(self.coords()?)?)),
            TAG_POLYGON => Ok(Geometry::Polygon(self.polygon()?)),
            TAG_MULTIPOINT => {
                let n = self.u32()? as usize;
                let mut points = Vec::with_capacity(n.min(1 << 20));
                self.fill_points(n, &mut points)?;
                Ok(Geometry::MultiPoint(MultiPoint::new(points)))
            }
            TAG_MULTILINESTRING => {
                let n = self.u32()? as usize;
                let mut lines = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    lines.push(LineString::new(self.coords()?)?);
                }
                Ok(Geometry::MultiLineString(MultiLineString::new(lines)))
            }
            TAG_MULTIPOLYGON => {
                let n = self.u32()? as usize;
                let mut polygons = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    polygons.push(self.polygon()?);
                }
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polygons)))
            }
            other => Err(GeomError::Invalid(format!(
                "unknown binary geometry tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    fn round_trip(wkt_str: &str) {
        let g = wkt::parse(wkt_str).unwrap();
        let bytes = encode(&g);
        let (back, consumed) = decode(&bytes).unwrap();
        assert_eq!(back, g, "round trip failed for {wkt_str}");
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn all_types_round_trip() {
        round_trip("POINT (1.5 -2.5)");
        round_trip("LINESTRING (0 0, 1 1, 2 0)");
        round_trip("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))");
        round_trip("MULTIPOINT ((1 2), (3 4))");
        round_trip("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))");
        round_trip("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))");
    }

    #[test]
    fn binary_is_smaller_than_wkt_for_big_polygons() {
        let g = Geometry::Polygon(
            crate::Polygon::from_coords(
                (0..100)
                    .flat_map(|i| {
                        let t = std::f64::consts::TAU * i as f64 / 100.0;
                        // Long decimals make WKT verbose, like real data.
                        [t.cos() * 1.234567, t.sin() * 7.654321]
                    })
                    .collect(),
                vec![],
            )
            .unwrap(),
        );
        let bin = encode(&g).len();
        let txt = wkt::write(&g).len();
        assert!(bin < txt, "binary {bin} should be < WKT {txt}");
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let g = wkt::parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        let bytes = encode(&g);
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        assert!(decode(&[99, 0, 0]).is_err());
        // Implausible coordinate count.
        let mut evil = vec![TAG_LINESTRING];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&evil).is_err());
    }

    #[test]
    fn decode_reports_consumed_bytes_for_concatenated_records() {
        let a = wkt::parse("POINT (1 2)").unwrap();
        let b = wkt::parse("LINESTRING (0 0, 1 1)").unwrap();
        let mut buf = encode(&a);
        encode_into(&b, &mut buf);
        let (g1, used) = decode(&buf).unwrap();
        assert_eq!(g1, a);
        let (g2, used2) = decode(&buf[used..]).unwrap();
        assert_eq!(g2, b);
        assert_eq!(used + used2, buf.len());
    }
}
