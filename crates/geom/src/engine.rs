//! Pluggable refinement engines.
//!
//! The paper's two systems differ in which geometry library performs
//! spatial refinement: SpatialSpark uses JTS, ISP-MC uses GEOS, and the
//! 3.3–3.9× gap between the two dominates end-to-end performance (§V.B).
//! This module captures that as a trait so the join layer can be generic
//! over the engine, with [`PreparedEngine`] standing in for JTS and
//! [`NaiveEngine`] for GEOS.

use crate::geometry::Geometry;
use crate::naive;
use crate::point::Point;
use crate::prepared::{PreparedLineString, PreparedPolygon};
use crate::{Envelope, HasEnvelope};

/// The join predicates evaluated in the paper (§II, Fig. 1), plus the
/// nearest-one extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialPredicate {
    /// `ST_WITHIN(point, polygon)` — point-in-polygon test.
    Within,
    /// `ST_NearestD(point, polyline, d)` — point within distance `d` of
    /// the polyline. Emits *every* polyline within range (the semantics
    /// of the open-source SpatialSpark implementation).
    NearestD(f64),
    /// `ST_NEAREST(point, polyline, d)` — the *single* nearest polyline
    /// within distance `d` ("searching for nearest polyline within
    /// distance D", §II). Per-pair [`SpatialPredicate::eval`] behaves
    /// like `NearestD`; join layers apply the arg-min over candidates
    /// via [`RefinementEngine::distance`].
    Nearest(f64),
}

impl SpatialPredicate {
    /// How far right-side envelopes must be expanded during filtering
    /// so the envelope test never misses a refinement match.
    pub fn filter_radius(&self) -> f64 {
        match self {
            SpatialPredicate::Within => 0.0,
            SpatialPredicate::NearestD(d) | SpatialPredicate::Nearest(d) => *d,
        }
    }

    /// True for the arg-min variant, which join layers must post-process.
    pub fn is_nearest_one(&self) -> bool {
        matches!(self, SpatialPredicate::Nearest(_))
    }

    /// Evaluates the predicate through a refinement engine. For
    /// [`SpatialPredicate::Nearest`] this is the *range filter* only;
    /// the arg-min across candidates is the join layer's job.
    pub fn eval<E: RefinementEngine>(&self, engine: &E, p: Point, target: &E::Prepared) -> bool {
        match self {
            SpatialPredicate::Within => engine.within(p, target),
            SpatialPredicate::NearestD(d) | SpatialPredicate::Nearest(d) => {
                engine.within_distance(p, target, *d)
            }
        }
    }
}

/// A refinement engine evaluates the paper's two spatial predicates
/// against a pre-registered target geometry.
///
/// `prepare` is called once per right-side geometry when the broadcast
/// R-tree is built; `within` / `within_distance` run once per candidate
/// pair that survives filtering.
pub trait RefinementEngine: Send + Sync {
    /// Engine-specific prepared form of a target geometry.
    type Prepared: HasEnvelope + Send + Sync;

    /// Engine name for reports ("jts-like" / "geos-like").
    fn name(&self) -> &'static str;

    /// Converts a parsed geometry into the engine's working form.
    fn prepare(&self, geom: &Geometry) -> Self::Prepared;

    /// `ST_WITHIN(point, target)` — true when the point lies in the
    /// target polygon/multipolygon.
    fn within(&self, p: Point, target: &Self::Prepared) -> bool;

    /// `ST_NearestD(point, target, d)` — true when the point is within
    /// distance `d` of the target polyline.
    fn within_distance(&self, p: Point, target: &Self::Prepared, d: f64) -> bool;

    /// Exact distance from the point to the target geometry (0 inside a
    /// polygon). Drives the arg-min of nearest-one joins.
    fn distance(&self, p: Point, target: &Self::Prepared) -> f64;
}

/// Prepared form used by [`PreparedEngine`]: polygonal and linear targets
/// get dedicated index structures; anything else keeps the parsed
/// geometry.
pub enum FastPrepared {
    Polygon(PreparedPolygon),
    /// One prepared index per part: parts may overlap (scattered
    /// multipolygons), so even-odd over the union of their rings would
    /// be wrong — containment is the OR over parts.
    MultiPolygon(Vec<PreparedPolygon>),
    Line(PreparedLineString),
    Other(Geometry),
}

impl HasEnvelope for FastPrepared {
    fn envelope(&self) -> Envelope {
        match self {
            FastPrepared::Polygon(p) => p.envelope(),
            FastPrepared::MultiPolygon(parts) => parts
                .iter()
                .fold(Envelope::EMPTY, |e, p| e.union(&p.envelope())),
            FastPrepared::Line(l) => l.envelope(),
            FastPrepared::Other(g) => g.envelope(),
        }
    }
}

/// The JTS-like engine as the paper's SpatialSpark actually uses it:
/// geometry kept in flat coordinate arrays, predicates evaluated with a
/// full scan of the edges and **zero per-call allocation**. (Fig. 2
/// calls JTS's `geom.within(geom_)` directly, without prepared
/// geometries.)
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatEngine;

impl RefinementEngine for FlatEngine {
    type Prepared = Geometry;

    fn name(&self) -> &'static str {
        "jts-like"
    }

    fn prepare(&self, geom: &Geometry) -> Geometry {
        geom.clone()
    }

    // The predicate paths below run once per surviving candidate pair;
    // keeping them allocation-free is the whole point of the JTS-like
    // engine (vs the boxed temporaries of [`NaiveEngine`]). Each call
    // scans every edge of the target, so the edge-visit counter charges
    // the full vertex count.
    // tidy:alloc-free:start
    fn within(&self, p: Point, target: &Geometry) -> bool {
        obs::edge_visits(target.num_points() as u64);
        target.contains_point(p)
    }

    fn within_distance(&self, p: Point, target: &Geometry, d: f64) -> bool {
        use crate::algorithms::distance::point_within_distance_of_linestring;
        obs::edge_visits(target.num_points() as u64);
        match target {
            Geometry::LineString(ls) => point_within_distance_of_linestring(p, ls, d),
            Geometry::MultiLineString(ml) => ml
                .lines
                .iter()
                .any(|ls| point_within_distance_of_linestring(p, ls, d)),
            Geometry::Point(q) => p.distance(*q) <= d,
            _ => false,
        }
    }

    fn distance(&self, p: Point, target: &Geometry) -> f64 {
        obs::edge_visits(target.num_points() as u64);
        target.distance_to_point(p)
    }
    // tidy:alloc-free:end
}

/// The prepared-geometry engine: one-time edge-index construction, then
/// banded point-in-polygon tests and block-pruned distance queries.
/// This goes beyond both libraries in the paper (JTS has the machinery
/// but Fig. 2 does not use it); `benches/indexing.rs` quantifies the
/// gain over [`FlatEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PreparedEngine;

impl RefinementEngine for PreparedEngine {
    type Prepared = FastPrepared;

    fn name(&self) -> &'static str {
        "prepared"
    }

    fn prepare(&self, geom: &Geometry) -> FastPrepared {
        match geom {
            Geometry::Polygon(poly) => FastPrepared::Polygon(PreparedPolygon::new(poly)),
            Geometry::MultiPolygon(mp) => {
                FastPrepared::MultiPolygon(mp.polygons.iter().map(PreparedPolygon::new).collect())
            }
            _ => {
                if let Some(l) = PreparedLineString::from_geometry(geom) {
                    FastPrepared::Line(l)
                } else {
                    FastPrepared::Other(geom.clone())
                }
            }
        }
    }

    fn within(&self, p: Point, target: &FastPrepared) -> bool {
        match target {
            FastPrepared::Polygon(poly) => poly.contains_point(p),
            FastPrepared::MultiPolygon(parts) => parts.iter().any(|part| part.contains_point(p)),
            _ => false,
        }
    }

    fn within_distance(&self, p: Point, target: &FastPrepared, d: f64) -> bool {
        match target {
            FastPrepared::Line(line) => line.within_distance(p, d),
            FastPrepared::Other(Geometry::Point(q)) => p.distance(*q) <= d,
            _ => false,
        }
    }

    fn distance(&self, p: Point, target: &FastPrepared) -> f64 {
        match target {
            FastPrepared::Line(line) => line.distance_to_point(p),
            FastPrepared::Polygon(poly) => poly.distance_to_point(p),
            FastPrepared::MultiPolygon(parts) => parts
                .iter()
                .map(|part| part.distance_to_point(p))
                .fold(f64::INFINITY, f64::min),
            FastPrepared::Other(g) => g.distance_to_point(p),
        }
    }
}

/// The GEOS-like engine: no preparation beyond keeping the parsed
/// geometry; every predicate call builds and destroys a boxed coordinate
/// graph (see [`crate::naive`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveEngine;

impl RefinementEngine for NaiveEngine {
    type Prepared = Geometry;

    fn name(&self) -> &'static str {
        "geos-like"
    }

    fn prepare(&self, geom: &Geometry) -> Geometry {
        geom.clone()
    }

    fn within(&self, p: Point, target: &Geometry) -> bool {
        obs::edge_visits(target.num_points() as u64);
        naive::geometry_contains_point(target, p)
    }

    fn within_distance(&self, p: Point, target: &Geometry, d: f64) -> bool {
        obs::edge_visits(target.num_points() as u64);
        naive::geometry_within_distance(target, p, d)
    }

    fn distance(&self, p: Point, target: &Geometry) -> f64 {
        obs::edge_visits(target.num_points() as u64);
        naive::geometry_distance(target, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    #[test]
    fn engines_agree_on_within() {
        let geom =
            wkt::parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))").unwrap();
        let fast = PreparedEngine;
        let slow = NaiveEngine;
        let fp = fast.prepare(&geom);
        let sp = slow.prepare(&geom);
        let flat = FlatEngine;
        let flp = flat.prepare(&geom);
        for &(x, y) in &[(0.5, 0.5), (2.0, 2.0), (4.5, 4.5), (0.0, 2.0), (3.5, 0.5)] {
            let p = Point::new(x, y);
            assert_eq!(fast.within(p, &fp), slow.within(p, &sp), "at ({x}, {y})");
            assert_eq!(fast.within(p, &fp), flat.within(p, &flp), "at ({x}, {y})");
        }
        assert_eq!(fast.name(), "prepared");
        assert_eq!(flat.name(), "jts-like");
        assert_eq!(slow.name(), "geos-like");
    }

    #[test]
    fn flat_engine_distance_agrees() {
        let geom = wkt::parse("LINESTRING (0 0, 10 0, 10 10)").unwrap();
        let flat = FlatEngine;
        let fast = PreparedEngine;
        let flp = flat.prepare(&geom);
        let fp = fast.prepare(&geom);
        for &(x, y, d) in &[(5.0, 2.0, 2.0), (5.0, 2.0, 1.9), (12.0, 12.0, 3.0)] {
            let p = Point::new(x, y);
            assert_eq!(
                flat.within_distance(p, &flp, d),
                fast.within_distance(p, &fp, d)
            );
        }
    }

    #[test]
    fn engines_agree_on_within_distance() {
        let geom = wkt::parse("LINESTRING (0 0, 10 0, 10 10)").unwrap();
        let fast = PreparedEngine;
        let slow = NaiveEngine;
        let fp = fast.prepare(&geom);
        let sp = slow.prepare(&geom);
        for &(x, y, d) in &[
            (5.0, 2.0, 2.0),
            (5.0, 2.0, 1.9),
            (12.0, 12.0, 3.0),
            (12.0, 12.0, 2.0),
        ] {
            let p = Point::new(x, y);
            assert_eq!(
                fast.within_distance(p, &fp, d),
                slow.within_distance(p, &sp, d),
                "at ({x}, {y}) d={d}"
            );
        }
    }

    #[test]
    fn within_is_false_for_lines_and_distance_false_for_polygons() {
        let line = wkt::parse("LINESTRING (0 0, 1 0)").unwrap();
        let poly = wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let fast = PreparedEngine;
        let p = Point::new(0.5, 0.0);
        assert!(!fast.within(p, &fast.prepare(&line)));
        assert!(!fast.within_distance(p, &fast.prepare(&poly), 10.0));
    }

    #[test]
    fn point_target_distance() {
        let pt = wkt::parse("POINT (3 4)").unwrap();
        let fast = PreparedEngine;
        let slow = NaiveEngine;
        let origin = Point::new(0.0, 0.0);
        assert!(fast.within_distance(origin, &fast.prepare(&pt), 5.0));
        assert!(!fast.within_distance(origin, &fast.prepare(&pt), 4.9));
        assert!(slow.within_distance(origin, &slow.prepare(&pt), 5.0));
        assert!(!slow.within_distance(origin, &slow.prepare(&pt), 4.9));
    }
}
