//! Axis-aligned minimum bounding boxes.
//!
//! Envelopes drive the *spatial filtering* phase of the filter-refine
//! pipeline: pairing objects by MBB approximation before the expensive
//! refinement predicates run (Jacox & Samet 2007, cited as [1] in the
//! paper).

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// The empty envelope is represented with `min > max` so that unioning
/// anything into it works without special cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Envelope {
    /// An empty envelope: the identity element for [`Envelope::union`].
    pub const EMPTY: Envelope = Envelope {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates an envelope from the two corner coordinates, normalising
    /// the argument order.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Envelope {
        Envelope {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// The degenerate envelope covering a single point.
    pub fn of_point(p: Point) -> Envelope {
        Envelope {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// Builds the tight envelope of a flat `[x0, y0, x1, y1, ...]`
    /// coordinate slice. Returns [`Envelope::EMPTY`] for an empty slice.
    pub fn of_coords(coords: &[f64]) -> Envelope {
        let mut env = Envelope::EMPTY;
        for pair in coords.chunks_exact(2) {
            env.expand_to(pair[0], pair[1]);
        }
        env
    }

    /// True when no point is contained (`min > max` on either axis).
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width of the envelope; zero when empty.
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height of the envelope; zero when empty.
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area; zero when empty or degenerate.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter margin, used by R-tree split heuristics.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point. Meaningless for empty envelopes.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Grows this envelope in place to cover `(x, y)`.
    pub fn expand_to(&mut self, x: f64, y: f64) {
        self.min_x = self.min_x.min(x);
        self.min_y = self.min_y.min(y);
        self.max_x = self.max_x.max(x);
        self.max_y = self.max_y.max(y);
    }

    /// Returns this envelope buffered outward by `distance` on every side.
    ///
    /// This is the `expandBy(radius)` used by SpatialSpark's broadcast join
    /// (Fig. 2 of the paper) to turn a `NearestD` search into an envelope
    /// intersection query.
    pub fn expanded_by(&self, distance: f64) -> Envelope {
        if self.is_empty() {
            return *self;
        }
        Envelope {
            min_x: self.min_x - distance,
            min_y: self.min_y - distance,
            max_x: self.max_x + distance,
            max_y: self.max_y + distance,
        }
    }

    /// Smallest envelope covering both inputs.
    pub fn union(&self, other: &Envelope) -> Envelope {
        Envelope {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Intersection of the two envelopes; empty when they do not overlap.
    pub fn intersection(&self, other: &Envelope) -> Envelope {
        Envelope {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        }
    }

    /// True when the envelopes share at least one point (boundaries
    /// touching counts as intersecting).
    pub fn intersects(&self, other: &Envelope) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// True when `other` lies entirely inside (or on the boundary of)
    /// this envelope.
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        !other.is_empty()
            && self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// True when the point lies inside or on the boundary.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    /// Minimum distance from the point to this envelope; zero when the
    /// point is inside. Used for R-tree distance pruning.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_corner_order() {
        let e = Envelope::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(e.min_x, 1.0);
        assert_eq!(e.max_x, 5.0);
        assert_eq!(e.min_y, 2.0);
        assert_eq!(e.max_y, 7.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let e = Envelope::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(Envelope::EMPTY.union(&e), e);
        assert_eq!(e.union(&Envelope::EMPTY), e);
        assert!(Envelope::EMPTY.is_empty());
        assert_eq!(Envelope::EMPTY.area(), 0.0);
    }

    #[test]
    fn of_coords_covers_all_points() {
        let e = Envelope::of_coords(&[0.0, 0.0, 3.0, -1.0, 2.0, 5.0]);
        assert_eq!(e, Envelope::new(0.0, -1.0, 3.0, 5.0));
        assert!(Envelope::of_coords(&[]).is_empty());
    }

    #[test]
    fn intersects_is_symmetric_and_boundary_inclusive() {
        let a = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let b = Envelope::new(1.0, 1.0, 2.0, 2.0); // touches at corner
        let c = Envelope::new(1.1, 1.1, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment() {
        let outer = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let inner = Envelope::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_envelope(&inner));
        assert!(!inner.contains_envelope(&outer));
        assert!(outer.contains(0.0, 10.0));
        assert!(!outer.contains(-0.1, 5.0));
        assert!(!outer.contains_envelope(&Envelope::EMPTY));
    }

    #[test]
    fn expanded_by_buffers_each_side() {
        let e = Envelope::new(0.0, 0.0, 1.0, 1.0).expanded_by(0.5);
        assert_eq!(e, Envelope::new(-0.5, -0.5, 1.5, 1.5));
        assert!(Envelope::EMPTY.expanded_by(1.0).is_empty());
    }

    #[test]
    fn point_distance_inside_is_zero() {
        let e = Envelope::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(e.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(e.distance_to_point(Point::new(5.0, 1.0)), 3.0);
        let d = e.distance_to_point(Point::new(5.0, 6.0));
        assert!((d - 5.0).abs() < 1e-12); // 3-4-5 triangle
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let b = Envelope::new(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersection(&b).is_empty());
        let c = Envelope::new(0.5, 0.5, 3.0, 3.0);
        assert_eq!(a.intersection(&c), Envelope::new(0.5, 0.5, 1.0, 1.0));
    }
}
