//! Error types for the geometry kernel.

use std::fmt;

/// Errors produced while parsing or validating geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// WKT text could not be tokenized or parsed. Carries a human-readable
    /// message and the byte offset where parsing failed.
    WktParse { message: String, offset: usize },
    /// A geometry failed a structural invariant (e.g. a ring with fewer
    /// than four points, or an unclosed ring).
    Invalid(String),
    /// The operation is not defined for the given geometry type.
    UnsupportedGeometry(&'static str),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::WktParse { message, offset } => {
                write!(f, "WKT parse error at byte {offset}: {message}")
            }
            GeomError::Invalid(msg) => write!(f, "invalid geometry: {msg}"),
            GeomError::UnsupportedGeometry(what) => {
                write!(f, "unsupported geometry type for this operation: {what}")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GeomError::WktParse {
            message: "expected number".into(),
            offset: 7,
        };
        assert_eq!(e.to_string(), "WKT parse error at byte 7: expected number");
        assert_eq!(
            GeomError::Invalid("ring not closed".into()).to_string(),
            "invalid geometry: ring not closed"
        );
        assert!(GeomError::UnsupportedGeometry("CURVE")
            .to_string()
            .contains("CURVE"));
    }
}
