//! The dynamic geometry type.

use crate::envelope::Envelope;
use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// Any geometry readable from WKT. Mirrors the subset of the OGC simple
/// features model the paper's workloads use.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    Point(Point),
    LineString(LineString),
    Polygon(Polygon),
    MultiPoint(MultiPoint),
    MultiLineString(MultiLineString),
    MultiPolygon(MultiPolygon),
}

impl Geometry {
    /// The WKT keyword for this geometry's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::LineString(_) => "LINESTRING",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::MultiPoint(_) => "MULTIPOINT",
            Geometry::MultiLineString(_) => "MULTILINESTRING",
            Geometry::MultiPolygon(_) => "MULTIPOLYGON",
        }
    }

    /// Total vertex count — the refinement-cost driver the paper reports
    /// per dataset.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.num_points(),
            Geometry::Polygon(p) => p.num_points(),
            Geometry::MultiPoint(m) => m.points.len(),
            Geometry::MultiLineString(m) => m.num_points(),
            Geometry::MultiPolygon(m) => m.num_points(),
        }
    }

    /// Downcast helpers used by the join layers.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            Geometry::Point(p) => Some(*p),
            _ => None,
        }
    }

    pub fn as_polygon(&self) -> Option<&Polygon> {
        match self {
            Geometry::Polygon(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_linestring(&self) -> Option<&LineString> {
        match self {
            Geometry::LineString(l) => Some(l),
            _ => None,
        }
    }

    /// `Within` semantics for a point against this geometry: polygons and
    /// multipolygons test containment; anything else is false (a point is
    /// never within a line in the paper's joins).
    pub fn contains_point(&self, p: Point) -> bool {
        match self {
            Geometry::Polygon(poly) => poly.contains_point(p),
            Geometry::MultiPolygon(mp) => mp.contains_point(p),
            _ => false,
        }
    }

    /// Minimum distance from a point to this geometry.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        match self {
            Geometry::Point(q) => p.distance(*q),
            Geometry::LineString(l) => l.distance_to_point(p),
            Geometry::Polygon(poly) => crate::algorithms::distance::point_to_polygon(p, poly),
            Geometry::MultiPoint(m) => m
                .points
                .iter()
                .map(|q| p.distance(*q))
                .fold(f64::INFINITY, f64::min),
            Geometry::MultiLineString(m) => m.distance_to_point(p),
            Geometry::MultiPolygon(m) => m
                .polygons
                .iter()
                .map(|poly| crate::algorithms::distance::point_to_polygon(p, poly))
                .fold(f64::INFINITY, f64::min),
        }
    }
}

impl HasEnvelope for Geometry {
    fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => p.envelope(),
            Geometry::LineString(l) => l.envelope(),
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPoint(m) => m.envelope(),
            Geometry::MultiLineString(m) => m.envelope(),
            Geometry::MultiPolygon(m) => m.envelope(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Geometry::Point(Point::new(0.0, 0.0)).type_name(), "POINT");
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(Geometry::Polygon(poly).type_name(), "POLYGON");
    }

    #[test]
    fn contains_point_dispatch() {
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 2.0, 2.0));
        let g = Geometry::Polygon(poly);
        assert!(g.contains_point(Point::new(1.0, 1.0)));
        assert!(!g.contains_point(Point::new(3.0, 1.0)));
        // A line never contains a point under Within-join semantics.
        let line = LineString::new(vec![0.0, 0.0, 2.0, 0.0]).unwrap();
        assert!(!Geometry::LineString(line).contains_point(Point::new(1.0, 0.0)));
    }

    #[test]
    fn distance_dispatch() {
        let line = LineString::new(vec![0.0, 0.0, 10.0, 0.0]).unwrap();
        assert_eq!(
            Geometry::LineString(line).distance_to_point(Point::new(5.0, 4.0)),
            4.0
        );
        assert_eq!(
            Geometry::Point(Point::new(3.0, 4.0)).distance_to_point(Point::new(0.0, 0.0)),
            5.0
        );
    }

    #[test]
    fn num_points_dispatch() {
        let poly = Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(Geometry::Polygon(poly.clone()).num_points(), 5);
        let mp = MultiPolygon::new(vec![poly.clone(), poly]);
        assert_eq!(Geometry::MultiPolygon(mp).num_points(), 10);
    }
}
