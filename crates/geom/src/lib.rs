//! # geom — computational geometry kernel
//!
//! A from-scratch geometry library providing everything the spatial join
//! systems in this workspace need:
//!
//! * a geometry model ([`Point`], [`LineString`], [`Polygon`],
//!   [`MultiPolygon`], [`MultiLineString`], [`Geometry`]) backed by flat
//!   `f64` coordinate arrays,
//! * axis-aligned bounding boxes ([`Envelope`]) with the usual algebra,
//! * a Well-Known Text reader and writer ([`wkt`]),
//! * the computational-geometry predicates used by the paper's two join
//!   types: point-in-polygon tests (`Within`) and point-to-polyline
//!   distance (`NearestD`),
//! * two interchangeable *refinement engines* (see [`engine`]):
//!   [`engine::PreparedEngine`] models JTS (flat arrays, prepared
//!   geometries, no per-call allocation) and [`engine::NaiveEngine`]
//!   models GEOS as characterised by the paper — it "frequently creates
//!   and destroys small objects", which is exactly what makes it slow.
//!
//! Both engines produce bit-identical predicate results; they differ only
//! in memory discipline and therefore speed. The paper attributes most of
//! SpatialSpark's advantage over ISP-MC to this difference (§V.B).

pub mod algorithms;
pub mod binary;
pub mod engine;
pub mod envelope;
pub mod error;
pub mod geometry;
pub mod linestring;
pub mod multi;
pub mod naive;
pub mod point;
pub mod polygon;
pub mod prepared;
pub mod trajectory;
pub mod wkt;

pub use envelope::Envelope;
pub use error::GeomError;
pub use geometry::Geometry;
pub use linestring::LineString;
pub use multi::{MultiLineString, MultiPoint, MultiPolygon};
pub use point::Point;
pub use polygon::Polygon;
pub use prepared::{PreparedLineString, PreparedPolygon};
pub use trajectory::Trajectory;

/// Anything with a minimum bounding box.
///
/// Spatial filtering (the first phase of the filter-refine pipeline) works
/// purely on envelopes, so every indexable type implements this.
pub trait HasEnvelope {
    /// The minimum bounding box of the object.
    fn envelope(&self) -> Envelope;
}

impl HasEnvelope for Envelope {
    fn envelope(&self) -> Envelope {
        *self
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use crate::point::Point;

    /// Deterministic pseudo-random points without a rand dependency in
    /// the library itself (LCG-based).
    pub fn pseudo_random_points(n: usize, spread: f64) -> Vec<Point> {
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64 - 0.5) * 2.0 * spread
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }
}
