//! Polylines (LINESTRING in WKT).

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::point::Point;
use crate::HasEnvelope;

/// A polyline stored as a flat `[x0, y0, x1, y1, ...]` coordinate array.
///
/// The flat layout keeps all vertices of one geometry contiguous in
/// memory, which is the cache-friendly representation the paper's JTS-side
/// analysis favours (as opposed to GEOS's per-coordinate heap objects).
#[derive(Debug, Clone, PartialEq)]
pub struct LineString {
    coords: Vec<f64>,
    env: Envelope,
}

impl LineString {
    /// Builds a polyline from a flat coordinate array.
    ///
    /// # Errors
    /// Fails when the array has an odd length or fewer than two points.
    pub fn new(coords: Vec<f64>) -> Result<LineString, GeomError> {
        if !coords.len().is_multiple_of(2) {
            return Err(GeomError::Invalid(
                "coordinate array must have even length".into(),
            ));
        }
        if coords.len() < 4 {
            return Err(GeomError::Invalid(
                "a LineString needs at least two points".into(),
            ));
        }
        let env = Envelope::of_coords(&coords);
        Ok(LineString { coords, env })
    }

    /// Builds a polyline from a list of points.
    pub fn from_points(points: &[Point]) -> Result<LineString, GeomError> {
        let mut coords = Vec::with_capacity(points.len() * 2);
        for p in points {
            coords.push(p.x);
            coords.push(p.y);
        }
        LineString::new(coords)
    }

    /// Number of vertices.
    pub fn num_points(&self) -> usize {
        self.coords.len() / 2
    }

    /// Vertex `i` (panics when out of range).
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.coords[2 * i], self.coords[2 * i + 1])
    }

    /// The flat coordinate array.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Iterator over the segments `(start, end)` of the polyline.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        (0..self.num_points().saturating_sub(1)).map(move |i| (self.point(i), self.point(i + 1)))
    }

    /// Total length of the polyline.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Minimum distance from a point to this polyline.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        crate::algorithms::distance::point_to_linestring(p, self)
    }
}

impl HasEnvelope for LineString {
    fn envelope(&self) -> Envelope {
        self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert!(LineString::new(vec![0.0, 0.0]).is_err());
        assert!(LineString::new(vec![0.0, 0.0, 1.0]).is_err());
        assert!(LineString::new(vec![0.0, 0.0, 1.0, 1.0]).is_ok());
    }

    #[test]
    fn length_sums_segments() {
        let ls = LineString::new(vec![0.0, 0.0, 3.0, 0.0, 3.0, 4.0]).unwrap();
        assert_eq!(ls.length(), 7.0);
        assert_eq!(ls.num_points(), 3);
        assert_eq!(ls.point(2), Point::new(3.0, 4.0));
    }

    #[test]
    fn envelope_covers_vertices() {
        let ls = LineString::new(vec![-1.0, 2.0, 5.0, -3.0]).unwrap();
        assert_eq!(ls.envelope(), Envelope::new(-1.0, -3.0, 5.0, 2.0));
    }

    #[test]
    fn segments_iterates_consecutive_pairs() {
        let ls = LineString::new(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0]).unwrap();
        let segs: Vec<_> = ls.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], (Point::new(0.0, 0.0), Point::new(1.0, 0.0)));
        assert_eq!(segs[1], (Point::new(1.0, 0.0), Point::new(2.0, 0.0)));
    }

    #[test]
    fn from_points_round_trips() {
        let pts = [Point::new(0.0, 1.0), Point::new(2.0, 3.0)];
        let ls = LineString::from_points(&pts).unwrap();
        assert_eq!(ls.point(0), pts[0]);
        assert_eq!(ls.point(1), pts[1]);
    }
}
