//! Multi-part geometries.

use crate::envelope::Envelope;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// A collection of points (MULTIPOINT).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPoint {
    pub points: Vec<Point>,
}

impl MultiPoint {
    pub fn new(points: Vec<Point>) -> MultiPoint {
        MultiPoint { points }
    }
}

impl HasEnvelope for MultiPoint {
    fn envelope(&self) -> Envelope {
        self.points
            .iter()
            .fold(Envelope::EMPTY, |e, p| e.union(&p.envelope()))
    }
}

/// A collection of polylines (MULTILINESTRING). The LION street network
/// contains a few of these.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLineString {
    pub lines: Vec<LineString>,
}

impl MultiLineString {
    pub fn new(lines: Vec<LineString>) -> MultiLineString {
        MultiLineString { lines }
    }

    /// Total vertex count across all parts.
    pub fn num_points(&self) -> usize {
        self.lines.iter().map(LineString::num_points).sum()
    }

    /// Minimum distance from the point to any part.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.lines
            .iter()
            .map(|l| l.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

impl HasEnvelope for MultiLineString {
    fn envelope(&self) -> Envelope {
        self.lines
            .iter()
            .fold(Envelope::EMPTY, |e, l| e.union(&l.envelope()))
    }
}

/// A collection of polygons (MULTIPOLYGON). WWF ecoregions are mostly
/// multipolygons (archipelagos, disjoint ranges).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPolygon {
    pub polygons: Vec<Polygon>,
}

impl MultiPolygon {
    pub fn new(polygons: Vec<Polygon>) -> MultiPolygon {
        MultiPolygon { polygons }
    }

    /// Total vertex count across all parts.
    pub fn num_points(&self) -> usize {
        self.polygons.iter().map(Polygon::num_points).sum()
    }

    /// Total enclosed area.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }

    /// True when any part contains the point.
    pub fn contains_point(&self, p: Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains_point(p))
    }
}

impl HasEnvelope for MultiPolygon {
    fn envelope(&self) -> Envelope {
        self.polygons
            .iter()
            .fold(Envelope::EMPTY, |e, p| e.union(&p.envelope()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipolygon_contains_any_part() {
        let a = Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0));
        let b = Polygon::rectangle(Envelope::new(5.0, 5.0, 6.0, 6.0));
        let mp = MultiPolygon::new(vec![a, b]);
        assert!(mp.contains_point(Point::new(0.5, 0.5)));
        assert!(mp.contains_point(Point::new(5.5, 5.5)));
        assert!(!mp.contains_point(Point::new(3.0, 3.0)));
        assert_eq!(mp.area(), 2.0);
        assert_eq!(mp.envelope(), Envelope::new(0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn multilinestring_distance_is_min_over_parts() {
        let l1 = LineString::new(vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        let l2 = LineString::new(vec![0.0, 10.0, 1.0, 10.0]).unwrap();
        let ml = MultiLineString::new(vec![l1, l2]);
        assert_eq!(ml.distance_to_point(Point::new(0.5, 2.0)), 2.0);
        assert_eq!(ml.distance_to_point(Point::new(0.5, 9.0)), 1.0);
        assert_eq!(ml.num_points(), 4);
    }

    #[test]
    fn multipoint_envelope() {
        let mp = MultiPoint::new(vec![Point::new(1.0, 2.0), Point::new(-3.0, 4.0)]);
        assert_eq!(mp.envelope(), Envelope::new(-3.0, 2.0, 1.0, 4.0));
        assert!(MultiPoint::default().envelope().is_empty());
    }
}
