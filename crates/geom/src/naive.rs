//! The GEOS-like naive refinement path.
//!
//! §V.B of the paper explains why ISP-MC loses to SpatialSpark despite
//! being native C++: "GEOS frequently creates and destroys small objects
//! to minimize memory footprint … The operations are cache unfriendly
//! and are very expensive on modern CPUs." This module reproduces that
//! memory discipline: every predicate call copies the geometry's
//! coordinates into a fresh [`CoordinateSequence`] (GEOS's
//! `CoordinateArraySequence` temporaries), then walks the ring
//! allocating and destroying a boxed [`LineSegment`] object *per edge
//! visit* (the `Coordinate`/`LineSegment` temporaries of GEOS's
//! locate/relate machinery). The churn costs a near-constant factor per
//! vertex over the flat scan, matching the paper's standalone
//! measurement (3.3×–3.9× across small and large polygons).
//!
//! The *algorithms* are identical to the fast path — only the memory
//! behaviour differs — so all engines always agree on results (verified
//! by the cross-engine tests and proptests).

use std::hint::black_box;

use crate::algorithms::segment::{point_on_segment, point_segment_distance_sq};
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// A coordinate object, mirroring GEOS's `Coordinate`.
#[derive(Debug, Clone, PartialEq)]
pub struct Coordinate {
    pub x: f64,
    pub y: f64,
}

/// A freshly allocated copy of a geometry's coordinates, mirroring the
/// `CoordinateArraySequence` temporaries GEOS creates per operation.
#[derive(Debug)]
pub struct CoordinateSequence {
    coords: Vec<Coordinate>,
}

impl CoordinateSequence {
    /// Copies a flat coordinate slice into a fresh sequence.
    pub fn from_flat(flat: &[f64]) -> CoordinateSequence {
        let coords = flat
            .chunks_exact(2)
            .map(|c| Coordinate { x: c[0], y: c[1] })
            .collect();
        CoordinateSequence { coords }
    }

    pub fn len(&self) -> usize {
        self.coords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinate access *by copy*, modelling GEOS's virtual
    /// `getAt(size_t, Coordinate&)` which cannot be inlined across the
    /// ABI boundary.
    #[inline(never)]
    pub fn get_at(&self, i: usize) -> Coordinate {
        self.coords[i].clone()
    }
}

/// The per-edge temporary object: GEOS's locate/relate loops construct
/// `LineSegment`/`Coordinate` helpers on the heap as they walk a ring.
#[derive(Debug)]
pub struct LineSegment {
    pub p0: Coordinate,
    pub p1: Coordinate,
}

/// Materialises the boxed per-edge temporary. `black_box` keeps the
/// optimiser from eliding the allocation — the allocation *is* the
/// behaviour being modelled.
#[inline]
fn edge_temp(seq: &CoordinateSequence, i: usize) -> Box<LineSegment> {
    black_box(Box::new(LineSegment {
        p0: seq.get_at(i),
        p1: seq.get_at(i + 1),
    }))
}

/// Ray-casting over a coordinate sequence — the same algorithm as
/// [`crate::algorithms::pip::point_in_ring`], but allocating and
/// destroying a segment object per edge, exactly the churn the paper
/// describes.
fn point_in_sequence(p: Point, seq: &CoordinateSequence) -> bool {
    let n = seq.len();
    let mut inside = false;
    for i in 0..n.saturating_sub(1) {
        let seg = edge_temp(seq, i);
        let pa = Point::new(seg.p0.x, seg.p0.y);
        let pb = Point::new(seg.p1.x, seg.p1.y);
        if point_on_segment(p, pa, pb) {
            return true;
        }
        if (pa.y > p.y) != (pb.y > p.y) {
            let x_int = pa.x + (p.y - pa.y) * (pb.x - pa.x) / (pb.y - pa.y);
            if p.x < x_int {
                inside = !inside;
            }
        }
        // seg dropped here: one allocation + one free per edge visit.
    }
    inside
}

fn point_on_sequence(p: Point, seq: &CoordinateSequence) -> bool {
    let n = seq.len();
    for i in 0..n.saturating_sub(1) {
        let seg = edge_temp(seq, i);
        if point_on_segment(
            p,
            Point::new(seg.p0.x, seg.p0.y),
            Point::new(seg.p1.x, seg.p1.y),
        ) {
            return true;
        }
    }
    false
}

/// Point-in-polygon through the naive object model. Per call: a fresh
/// coordinate-sequence copy per ring plus a boxed segment temporary per
/// edge, all freed on return.
pub fn contains_point(poly: &Polygon, p: Point) -> bool {
    if !poly.envelope().contains(p.x, p.y) {
        return false;
    }
    let shell = CoordinateSequence::from_flat(poly.exterior().coords());
    if !point_in_sequence(p, &shell) {
        return false;
    }
    for h in poly.holes() {
        let ring = CoordinateSequence::from_flat(h.coords());
        if point_in_sequence(p, &ring) && !point_on_sequence(p, &ring) {
            return false;
        }
    }
    true
}

/// Within-distance test through the naive object model. GEOS's
/// `DistanceOp` computes the full minimum distance and only then
/// compares — no envelope shortcut, no early exit — which is why the
/// paper's ISP-MC degrades so sharply as the search distance grows
/// (taxi-lion-500 vs taxi-lion-100 in Table 1).
pub fn within_distance_of_linestring(ls: &LineString, p: Point, distance: f64) -> bool {
    distance_to_linestring(ls, p) <= distance
}

/// Minimum distance from a point to a polyline through the naive model.
pub fn distance_to_linestring(ls: &LineString, p: Point) -> f64 {
    let seq = CoordinateSequence::from_flat(ls.coords());
    let mut best = f64::INFINITY;
    let n = seq.len();
    for i in 0..n.saturating_sub(1) {
        let seg = edge_temp(&seq, i);
        let a = Point::new(seg.p0.x, seg.p0.y);
        let b = Point::new(seg.p1.x, seg.p1.y);
        let d = point_segment_distance_sq(p, a, b);
        if d < best {
            best = d;
        }
    }
    best.sqrt()
}

/// `Within` for a point against any geometry, naive path.
pub fn geometry_contains_point(geom: &Geometry, p: Point) -> bool {
    match geom {
        Geometry::Polygon(poly) => contains_point(poly, p),
        Geometry::MultiPolygon(mp) => mp.polygons.iter().any(|poly| contains_point(poly, p)),
        _ => false,
    }
}

/// Exact distance for a point against any geometry, naive path:
/// line-ish targets go through the object-churn distance op; other
/// targets fall back to the shared algorithms (GEOS's point/polygon
/// distance paths are not the bottleneck the paper measures).
pub fn geometry_distance(geom: &Geometry, p: Point) -> f64 {
    match geom {
        Geometry::LineString(ls) => distance_to_linestring(ls, p),
        Geometry::MultiLineString(ml) => ml
            .lines
            .iter()
            .map(|ls| distance_to_linestring(ls, p))
            .fold(f64::INFINITY, f64::min),
        other => other.distance_to_point(p),
    }
}

/// `NearestD` for a point against any geometry, naive path.
pub fn geometry_within_distance(geom: &Geometry, p: Point, distance: f64) -> bool {
    match geom {
        Geometry::LineString(ls) => within_distance_of_linestring(ls, p, distance),
        Geometry::MultiLineString(ml) => ml
            .lines
            .iter()
            .any(|ls| within_distance_of_linestring(ls, p, distance)),
        Geometry::Point(q) => p.distance(*q) <= distance,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    #[test]
    fn naive_agrees_with_fast_pip() {
        let poly = Polygon::from_coords(
            vec![0.0, 0.0, 4.0, 0.0, 4.0, 4.0, 0.0, 4.0],
            vec![vec![1.0, 1.0, 3.0, 1.0, 3.0, 3.0, 1.0, 3.0]],
        )
        .unwrap();
        for &(x, y) in &[
            (0.5, 0.5),
            (2.0, 2.0),
            (5.0, 5.0),
            (0.0, 0.0),
            (1.0, 2.0),
            (3.5, 3.5),
        ] {
            let p = Point::new(x, y);
            assert_eq!(
                contains_point(&poly, p),
                poly.contains_point(p),
                "mismatch at ({x}, {y})"
            );
        }
    }

    #[test]
    fn naive_distance_agrees_with_fast() {
        let ls = LineString::new(vec![0.0, 0.0, 10.0, 0.0, 10.0, 10.0]).unwrap();
        for &(x, y) in &[(5.0, 3.0), (12.0, 5.0), (-1.0, -1.0), (10.0, 10.0)] {
            let p = Point::new(x, y);
            assert!((distance_to_linestring(&ls, p) - ls.distance_to_point(p)).abs() < 1e-12);
            let d = ls.distance_to_point(p);
            assert!(within_distance_of_linestring(&ls, p, d + 1e-9));
            if d > 0.0 {
                assert!(!within_distance_of_linestring(&ls, p, d - 1e-9));
            }
        }
    }

    #[test]
    fn geometry_dispatch() {
        let poly = Geometry::Polygon(Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0)));
        assert!(geometry_contains_point(&poly, Point::new(0.5, 0.5)));
        assert!(!geometry_contains_point(&poly, Point::new(2.0, 0.5)));
        let line = Geometry::LineString(LineString::new(vec![0.0, 0.0, 1.0, 0.0]).unwrap());
        assert!(geometry_within_distance(&line, Point::new(0.5, 0.3), 0.5));
        assert!(!geometry_within_distance(&line, Point::new(0.5, 0.6), 0.5));
        // Within is false for non-areal geometry; distance false for areal.
        assert!(!geometry_contains_point(&line, Point::new(0.5, 0.0)));
        assert!(!geometry_within_distance(&poly, Point::new(0.5, 0.5), 1.0));
    }

    #[test]
    fn coordinate_sequence_copies_vertices() {
        let seq = CoordinateSequence::from_flat(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        assert_eq!(seq.get_at(1), Coordinate { x: 3.0, y: 4.0 });
    }
}
