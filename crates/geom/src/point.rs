//! Points in the plane.

use crate::envelope::Envelope;
use crate::HasEnvelope;

/// A 2-D point. Coordinates are `f64` (longitude/latitude in the paper's
/// datasets, but the kernel is unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — cheaper when only comparisons are
    /// needed (e.g. nearest-neighbour pruning).
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl HasEnvelope for Point {
    fn envelope(&self) -> Envelope {
        Envelope::of_point(*self)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn envelope_is_degenerate() {
        let p = Point::new(2.0, -1.0);
        let e = p.envelope();
        assert_eq!(e.min_x, 2.0);
        assert_eq!(e.max_x, 2.0);
        assert_eq!(e.area(), 0.0);
        assert!(e.contains(2.0, -1.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
    }
}
