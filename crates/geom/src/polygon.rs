//! Polygons with optional holes (POLYGON in WKT).

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::point::Point;
use crate::HasEnvelope;

/// A closed linear ring stored as a flat `[x0, y0, ...]` array.
///
/// Invariants enforced at construction: at least four points and the
/// first point equals the last point.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    coords: Vec<f64>,
    env: Envelope,
}

impl Ring {
    /// Builds a ring, closing it automatically if the input is not closed.
    ///
    /// # Errors
    /// Fails on odd-length arrays or rings with fewer than three distinct
    /// points.
    pub fn new(mut coords: Vec<f64>) -> Result<Ring, GeomError> {
        if !coords.len().is_multiple_of(2) {
            return Err(GeomError::Invalid(
                "coordinate array must have even length".into(),
            ));
        }
        if coords.len() < 6 {
            return Err(GeomError::Invalid(
                "a ring needs at least three points".into(),
            ));
        }
        let n = coords.len();
        let closed = coords[0] == coords[n - 2] && coords[1] == coords[n - 1];
        if !closed {
            coords.push(coords[0]);
            coords.push(coords[1]);
        }
        if coords.len() < 8 {
            return Err(GeomError::Invalid(
                "a closed ring needs at least four points".into(),
            ));
        }
        let env = Envelope::of_coords(&coords);
        Ok(Ring { coords, env })
    }

    /// Number of vertices, including the repeated closing vertex.
    pub fn num_points(&self) -> usize {
        self.coords.len() / 2
    }

    /// Vertex `i` (panics when out of range).
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.coords[2 * i], self.coords[2 * i + 1])
    }

    /// The flat coordinate array (closed: first point == last point).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Signed area: positive for counter-clockwise rings.
    pub fn signed_area(&self) -> f64 {
        let c = &self.coords;
        let n = c.len() / 2;
        let mut sum = 0.0;
        for i in 0..n - 1 {
            let (x1, y1) = (c[2 * i], c[2 * i + 1]);
            let (x2, y2) = (c[2 * i + 2], c[2 * i + 3]);
            sum += x1 * y2 - x2 * y1;
        }
        sum * 0.5
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Point-in-ring test by ray casting (boundary points count as inside).
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.env.contains(p.x, p.y) {
            return false;
        }
        crate::algorithms::pip::point_in_ring(p, &self.coords)
    }
}

impl HasEnvelope for Ring {
    fn envelope(&self) -> Envelope {
        self.env
    }
}

/// A polygon: one exterior ring plus zero or more interior rings (holes).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Builds a polygon from an exterior ring and holes.
    pub fn new(exterior: Ring, holes: Vec<Ring>) -> Polygon {
        Polygon { exterior, holes }
    }

    /// Convenience constructor from flat coordinate arrays.
    pub fn from_coords(exterior: Vec<f64>, holes: Vec<Vec<f64>>) -> Result<Polygon, GeomError> {
        let exterior = Ring::new(exterior)?;
        let holes = holes.into_iter().map(Ring::new).collect::<Result<_, _>>()?;
        Ok(Polygon { exterior, holes })
    }

    /// An axis-aligned rectangle polygon, handy in tests and generators.
    pub fn rectangle(env: Envelope) -> Polygon {
        let Envelope {
            min_x,
            min_y,
            max_x,
            max_y,
        } = env;
        // Built directly: five closed points always satisfy the ring
        // invariants, so no fallible constructor is needed.
        let exterior = Ring {
            coords: vec![
                min_x, min_y, max_x, min_y, max_x, max_y, min_x, max_y, min_x, min_y,
            ],
            env,
        };
        Polygon {
            exterior,
            holes: vec![],
        }
    }

    /// The exterior ring.
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior rings (holes).
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Total vertex count across all rings. The paper reports this per
    /// dataset (nycb ≈ 9, wwf ≈ 279) because refinement cost scales with
    /// it.
    pub fn num_points(&self) -> usize {
        self.exterior.num_points() + self.holes.iter().map(Ring::num_points).sum::<usize>()
    }

    /// Enclosed area (exterior minus holes).
    pub fn area(&self) -> f64 {
        self.exterior.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    /// Point-in-polygon test: inside the exterior and outside every hole.
    /// Boundary points count as inside.
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.exterior.contains_point(p) {
            return false;
        }
        // A point on a hole's boundary is still part of the polygon, so
        // only strictly-interior hole hits exclude the point. Ray casting
        // treats boundary as inside, which matches "not contained" only
        // for interior points; the boundary subtlety is handled in the
        // shared pip routine.
        !self
            .holes
            .iter()
            .any(|h| h.contains_point(p) && !crate::algorithms::pip::point_on_ring(p, h.coords()))
    }
}

impl HasEnvelope for Polygon {
    fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn ring_auto_closes() {
        let r = Ring::new(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(r.num_points(), 4);
        assert_eq!(r.point(0), r.point(3));
    }

    #[test]
    fn ring_rejects_too_few_points() {
        assert!(Ring::new(vec![0.0, 0.0, 1.0, 1.0]).is_err());
        assert!(Ring::new(vec![0.0, 0.0, 1.0]).is_err());
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = Ring::new(vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0]).unwrap();
        assert!(ccw.signed_area() > 0.0);
        let cw = Ring::new(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(cw.signed_area() < 0.0);
        assert_eq!(ccw.area(), 1.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn square_contains_interior_and_boundary() {
        let sq = unit_square();
        assert!(sq.contains_point(Point::new(0.5, 0.5)));
        assert!(sq.contains_point(Point::new(0.0, 0.5))); // edge
        assert!(sq.contains_point(Point::new(1.0, 1.0))); // corner
        assert!(!sq.contains_point(Point::new(1.5, 0.5)));
        assert!(!sq.contains_point(Point::new(0.5, -0.0001)));
    }

    #[test]
    fn hole_excludes_interior_but_not_its_boundary() {
        let outer = vec![0.0, 0.0, 4.0, 0.0, 4.0, 4.0, 0.0, 4.0];
        let hole = vec![1.0, 1.0, 3.0, 1.0, 3.0, 3.0, 1.0, 3.0];
        let poly = Polygon::from_coords(outer, vec![hole]).unwrap();
        assert!(!poly.contains_point(Point::new(2.0, 2.0))); // inside hole
        assert!(poly.contains_point(Point::new(0.5, 0.5))); // in shell
        assert!(poly.contains_point(Point::new(1.0, 2.0))); // on hole boundary
        assert_eq!(poly.area(), 16.0 - 4.0);
    }

    #[test]
    fn num_points_counts_all_rings() {
        let outer = vec![0.0, 0.0, 4.0, 0.0, 4.0, 4.0, 0.0, 4.0];
        let hole = vec![1.0, 1.0, 3.0, 1.0, 3.0, 3.0, 1.0, 3.0];
        let poly = Polygon::from_coords(outer, vec![hole]).unwrap();
        assert_eq!(poly.num_points(), 5 + 5);
    }

    #[test]
    fn concave_polygon_containment() {
        // L-shape: big square minus top-right quadrant.
        let l = Polygon::from_coords(
            vec![0.0, 0.0, 2.0, 0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0, 0.0, 2.0],
            vec![],
        )
        .unwrap();
        assert!(l.contains_point(Point::new(0.5, 1.5)));
        assert!(l.contains_point(Point::new(1.5, 0.5)));
        assert!(!l.contains_point(Point::new(1.5, 1.5)));
    }
}
