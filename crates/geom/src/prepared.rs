//! Prepared geometries — the JTS-like fast refinement path.
//!
//! Preparation pays a one-time cost to build a small edge index per
//! geometry, after which every predicate evaluation runs allocation-free
//! over flat arrays. This models what JTS's `PreparedGeometry` /
//! `IndexedPointInAreaLocator` do, and is the representation used by the
//! SpatialSpark side of the reproduction.

use crate::algorithms::segment::{point_on_segment, point_segment_distance_sq};
use crate::envelope::Envelope;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// Upper bound on the number of horizontal bands in the edge index.
const MAX_BANDS: usize = 512;

/// A polygon preprocessed for fast point-in-polygon tests.
///
/// All edges (exterior and holes) are bucketed into horizontal bands by
/// their y-interval; a query only scans the edges of the band containing
/// the query point. For the paper's wwf ecoregions (279 vertices on
/// average, some with thousands) this turns an O(n) scan into a handful
/// of edge tests.
#[derive(Debug, Clone)]
pub struct PreparedPolygon {
    env: Envelope,
    /// Edge coordinates, flattened: `[x1, y1, x2, y2]` per edge.
    edges: Vec<f64>,
    /// CSR layout of the band index: edges of band `b` are
    /// `band_edges[band_offsets[b]..band_offsets[b + 1]]`. Small
    /// polygons use a single band (the index would cost more than the
    /// scan it saves).
    band_offsets: Vec<u32>,
    band_edges: Vec<u32>,
    band_height: f64,
    num_points: usize,
}

impl PreparedPolygon {
    /// Prepares a polygon (exterior ring plus holes).
    pub fn new(poly: &Polygon) -> PreparedPolygon {
        let mut edges = Vec::with_capacity(poly.num_points() * 4);
        push_ring_edges(poly.exterior().coords(), &mut edges);
        for h in poly.holes() {
            push_ring_edges(h.coords(), &mut edges);
        }
        Self::from_edges(poly.envelope(), edges, poly.num_points())
    }

    /// Prepares every part of a multipolygon into one index. Even-odd
    /// crossing parity over the union of all rings yields the same
    /// containment answer as testing parts separately, provided the parts
    /// do not overlap (true for the datasets modelled here).
    pub fn from_multi(polys: &[Polygon]) -> PreparedPolygon {
        let mut edges = Vec::new();
        let mut env = Envelope::EMPTY;
        let mut num_points = 0;
        for poly in polys {
            push_ring_edges(poly.exterior().coords(), &mut edges);
            for h in poly.holes() {
                push_ring_edges(h.coords(), &mut edges);
            }
            env = env.union(&poly.envelope());
            num_points += poly.num_points();
        }
        Self::from_edges(env, edges, num_points)
    }

    /// Prepares any polygonal [`Geometry`]; returns `None` for
    /// non-polygonal input.
    pub fn from_geometry(geom: &Geometry) -> Option<PreparedPolygon> {
        match geom {
            Geometry::Polygon(p) => Some(PreparedPolygon::new(p)),
            Geometry::MultiPolygon(mp) => Some(PreparedPolygon::from_multi(&mp.polygons)),
            _ => None,
        }
    }

    fn from_edges(env: Envelope, edges: Vec<f64>, num_points: usize) -> PreparedPolygon {
        let num_edges = edges.len() / 4;
        // Below ~32 edges a full scan beats any index; use one band.
        let num_bands = if num_edges <= 32 {
            1
        } else {
            (num_edges / 4).clamp(2, MAX_BANDS)
        };
        let height = env.height();
        let band_height = if height > 0.0 && num_bands > 1 {
            height / num_bands as f64
        } else {
            f64::INFINITY
        };

        // Two-pass CSR construction: count entries per band, prefix-sum
        // into offsets, then fill — three allocations total regardless
        // of polygon size.
        let mut counts = vec![0u32; num_bands];
        let band_span = |e: usize| {
            let y1 = edges[4 * e + 1];
            let y2 = edges[4 * e + 3];
            let lo = band_of(y1.min(y2), env.min_y, band_height, num_bands);
            let hi = band_of(y1.max(y2), env.min_y, band_height, num_bands);
            (lo, hi)
        };
        for e in 0..num_edges {
            let (lo, hi) = band_span(e);
            for c in counts.iter_mut().take(hi + 1).skip(lo) {
                *c += 1;
            }
        }
        let mut band_offsets = Vec::with_capacity(num_bands + 1);
        let mut acc = 0u32;
        band_offsets.push(0);
        for c in &counts {
            acc += c;
            band_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = band_offsets[..num_bands].to_vec();
        let mut band_edges = vec![0u32; acc as usize];
        for e in 0..num_edges {
            let (lo, hi) = band_span(e);
            for b in lo..=hi {
                band_edges[cursor[b] as usize] = e as u32;
                cursor[b] += 1;
            }
        }

        PreparedPolygon {
            env,
            edges,
            band_offsets,
            band_edges,
            band_height,
            num_points,
        }
    }

    /// The polygon's envelope.
    pub fn envelope(&self) -> Envelope {
        self.env
    }

    /// Total vertex count of the source polygon(s).
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Minimum distance from the point to the polygon: 0 inside,
    /// otherwise distance to the nearest stored edge.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges.chunks_exact(4) {
            let d = point_segment_distance_sq(p, Point::new(e[0], e[1]), Point::new(e[2], e[3]));
            if d < best {
                best = d;
            }
        }
        best.sqrt()
    }

    /// Point-in-polygon test (boundary counts as inside). Allocation-free.
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.env.contains(p.x, p.y) {
            return false;
        }
        let num_bands = self.band_offsets.len() - 1;
        let band = band_of(p.y, self.env.min_y, self.band_height, num_bands);
        let start = self.band_offsets[band] as usize;
        let end = self.band_offsets[band + 1] as usize;
        let mut inside = false;
        for &e in &self.band_edges[start..end] {
            let i = 4 * e as usize;
            let (x1, y1) = (self.edges[i], self.edges[i + 1]);
            let (x2, y2) = (self.edges[i + 2], self.edges[i + 3]);
            if point_on_segment(p, Point::new(x1, y1), Point::new(x2, y2)) {
                return true;
            }
            if (y1 > p.y) != (y2 > p.y) {
                let x_int = x1 + (p.y - y1) * (x2 - x1) / (y2 - y1);
                if p.x < x_int {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

impl HasEnvelope for PreparedPolygon {
    fn envelope(&self) -> Envelope {
        self.env
    }
}

fn push_ring_edges(coords: &[f64], edges: &mut Vec<f64>) {
    let n = coords.len() / 2;
    for i in 0..n.saturating_sub(1) {
        edges.push(coords[2 * i]);
        edges.push(coords[2 * i + 1]);
        edges.push(coords[2 * i + 2]);
        edges.push(coords[2 * i + 3]);
    }
}

#[inline]
fn band_of(y: f64, min_y: f64, band_height: f64, num_bands: usize) -> usize {
    let idx = ((y - min_y) / band_height) as isize;
    idx.clamp(0, num_bands as isize - 1) as usize
}

/// A polyline preprocessed for fast within-distance queries.
///
/// Segments are grouped into fixed-size blocks with precomputed block
/// envelopes so a query can skip whole blocks whose envelope is farther
/// than the search distance.
#[derive(Debug, Clone)]
pub struct PreparedLineString {
    env: Envelope,
    /// `[x1, y1, x2, y2]` per segment, in input order.
    segments: Vec<f64>,
    /// One envelope per block of [`SEGS_PER_BLOCK`] segments.
    block_envs: Vec<Envelope>,
    num_points: usize,
}

const SEGS_PER_BLOCK: usize = 8;

impl PreparedLineString {
    /// Prepares a polyline.
    pub fn new(ls: &LineString) -> PreparedLineString {
        Self::from_parts(std::slice::from_ref(ls))
    }

    /// Prepares several polylines (a MULTILINESTRING) into one structure.
    pub fn from_parts(parts: &[LineString]) -> PreparedLineString {
        let mut segments = Vec::new();
        let mut env = Envelope::EMPTY;
        let mut num_points = 0;
        for ls in parts {
            for (a, b) in ls.segments() {
                segments.extend_from_slice(&[a.x, a.y, b.x, b.y]);
            }
            env = env.union(&ls.envelope());
            num_points += ls.num_points();
        }
        let num_segs = segments.len() / 4;
        let mut block_envs = Vec::with_capacity(num_segs.div_ceil(SEGS_PER_BLOCK));
        for block in segments.chunks(SEGS_PER_BLOCK * 4) {
            block_envs.push(Envelope::of_coords(block));
        }
        PreparedLineString {
            env,
            segments,
            block_envs,
            num_points,
        }
    }

    /// Prepares any line-ish [`Geometry`]; returns `None` otherwise.
    pub fn from_geometry(geom: &Geometry) -> Option<PreparedLineString> {
        match geom {
            Geometry::LineString(l) => Some(PreparedLineString::new(l)),
            Geometry::MultiLineString(ml) => Some(PreparedLineString::from_parts(&ml.lines)),
            _ => None,
        }
    }

    /// The polyline's envelope.
    pub fn envelope(&self) -> Envelope {
        self.env
    }

    /// Total vertex count of the source polyline(s).
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// True when `p` is within `distance` of the polyline.
    pub fn within_distance(&self, p: Point, distance: f64) -> bool {
        if self.env.distance_to_point(p) > distance {
            return false;
        }
        let d_sq = distance * distance;
        for (bi, benv) in self.block_envs.iter().enumerate() {
            if benv.distance_to_point(p) > distance {
                continue;
            }
            let start = bi * SEGS_PER_BLOCK * 4;
            let end = (start + SEGS_PER_BLOCK * 4).min(self.segments.len());
            for s in self.segments[start..end].chunks_exact(4) {
                let a = Point::new(s[0], s[1]);
                let b = Point::new(s[2], s[3]);
                if point_segment_distance_sq(p, a, b) <= d_sq {
                    return true;
                }
            }
        }
        false
    }

    /// Minimum distance from `p` to the polyline.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let mut best = f64::INFINITY;
        for (bi, benv) in self.block_envs.iter().enumerate() {
            let lower = benv.distance_to_point(p);
            if lower * lower >= best {
                continue;
            }
            let start = bi * SEGS_PER_BLOCK * 4;
            let end = (start + SEGS_PER_BLOCK * 4).min(self.segments.len());
            for s in self.segments[start..end].chunks_exact(4) {
                let a = Point::new(s[0], s[1]);
                let b = Point::new(s[2], s[3]);
                let d = point_segment_distance_sq(p, a, b);
                if d < best {
                    best = d;
                }
            }
        }
        best.sqrt()
    }
}

impl HasEnvelope for PreparedLineString {
    fn envelope(&self) -> Envelope {
        self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    #[test]
    fn prepared_matches_plain_polygon() {
        let wkt_str = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))";
        let geom = wkt::parse(wkt_str).unwrap();
        let poly = geom.as_polygon().unwrap();
        let prep = PreparedPolygon::new(poly);
        for &(x, y) in &[
            (0.5, 0.5),
            (2.0, 2.0),
            (5.0, 5.0),
            (0.0, 0.0),
            (1.0, 2.0),
            (3.999, 3.999),
            (-0.001, 2.0),
        ] {
            let p = Point::new(x, y);
            assert_eq!(
                prep.contains_point(p),
                poly.contains_point(p),
                "mismatch at ({x}, {y})"
            );
        }
        assert_eq!(prep.num_points(), poly.num_points());
    }

    #[test]
    fn prepared_multi_handles_disjoint_parts() {
        let a = Polygon::rectangle(Envelope::new(0.0, 0.0, 1.0, 1.0));
        let b = Polygon::rectangle(Envelope::new(5.0, 5.0, 6.0, 6.0));
        let prep = PreparedPolygon::from_multi(&[a, b]);
        assert!(prep.contains_point(Point::new(0.5, 0.5)));
        assert!(prep.contains_point(Point::new(5.5, 5.5)));
        assert!(!prep.contains_point(Point::new(3.0, 3.0)));
    }

    #[test]
    fn prepared_linestring_distance_matches_plain() {
        let ls = LineString::new(vec![0.0, 0.0, 3.0, 0.0, 3.0, 4.0, 10.0, 4.0]).unwrap();
        let prep = PreparedLineString::new(&ls);
        for &(x, y) in &[(1.0, 1.0), (3.0, 2.0), (12.0, 4.0), (-1.0, -1.0)] {
            let p = Point::new(x, y);
            let plain = ls.distance_to_point(p);
            let fast = prep.distance_to_point(p);
            assert!((plain - fast).abs() < 1e-12, "mismatch at ({x}, {y})");
            assert!(
                prep.within_distance(p, plain + 1e-9),
                "should be within its own distance"
            );
            if plain > 0.0 {
                assert!(!prep.within_distance(p, plain - 1e-9));
            }
        }
    }

    #[test]
    fn from_geometry_dispatch() {
        let poly = wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        assert!(PreparedPolygon::from_geometry(&poly).is_some());
        assert!(PreparedLineString::from_geometry(&poly).is_none());
        let line = wkt::parse("LINESTRING (0 0, 1 1)").unwrap();
        assert!(PreparedLineString::from_geometry(&line).is_some());
        assert!(PreparedPolygon::from_geometry(&line).is_none());
    }

    #[test]
    fn degenerate_flat_polygon_does_not_panic() {
        // Zero-height envelope exercises the band_height fallback.
        let poly =
            Polygon::from_coords(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 0.0], vec![]).unwrap();
        let prep = PreparedPolygon::new(&poly);
        assert!(prep.contains_point(Point::new(1.0, 0.0)));
        assert!(!prep.contains_point(Point::new(1.0, 1.0)));
    }
}
