//! Timestamped trajectories — the paper's closing future-work item
//! ("we would like to apply similar designs to other non-relational
//! data types, such as trajectory data").
//!
//! A trajectory is a time-ordered sequence of `(point, timestamp)`
//! samples. The record format extends the workspace's tab-separated
//! layout with a third column of comma-separated timestamps:
//!
//! ```text
//! id \t LINESTRING (x0 y0, x1 y1, ...) \t t0,t1,...
//! ```

use crate::algorithms::intersects::linestring_intersects_polygon;
use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::HasEnvelope;

/// A time-ordered sequence of positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    path: LineString,
    /// One timestamp per vertex, non-decreasing, in seconds.
    times: Vec<f64>,
}

impl Trajectory {
    /// Builds a trajectory from a path and matching timestamps.
    ///
    /// # Errors
    /// Fails when lengths differ or timestamps decrease.
    pub fn new(path: LineString, times: Vec<f64>) -> Result<Trajectory, GeomError> {
        if times.len() != path.num_points() {
            return Err(GeomError::Invalid(format!(
                "trajectory has {} points but {} timestamps",
                path.num_points(),
                times.len()
            )));
        }
        if times.windows(2).any(|w| w[1] < w[0]) {
            return Err(GeomError::Invalid(
                "trajectory timestamps must be non-decreasing".into(),
            ));
        }
        Ok(Trajectory { path, times })
    }

    /// The spatial path.
    pub fn path(&self) -> &LineString {
        &self.path
    }

    /// The timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.times.len()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        match (self.times.first(), self.times.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Travelled distance (path length).
    pub fn length(&self) -> f64 {
        self.path.length()
    }

    /// Average speed in units/second; 0 for zero-duration trajectories.
    pub fn average_speed(&self) -> f64 {
        let d = self.duration();
        if d > 0.0 {
            self.length() / d
        } else {
            0.0
        }
    }

    /// Position at time `t`, linearly interpolated between samples.
    /// Clamps to the endpoints outside the time range.
    pub fn position_at(&self, t: f64) -> Point {
        let n = self.num_samples();
        if t <= self.times[0] {
            return self.path.point(0);
        }
        if t >= self.times[n - 1] {
            return self.path.point(n - 1);
        }
        // Find the surrounding samples.
        let mut i = 0;
        while self.times[i + 1] < t {
            i += 1;
        }
        let (t0, t1) = (self.times[i], self.times[i + 1]);
        let (a, b) = (self.path.point(i), self.path.point(i + 1));
        if t1 == t0 {
            return a;
        }
        let f = (t - t0) / (t1 - t0);
        Point::new(a.x + f * (b.x - a.x), a.y + f * (b.y - a.y))
    }

    /// True when the trajectory's path shares at least one point with
    /// the polygon — the predicate of the trajectory-zone join.
    pub fn passes_through(&self, zone: &Polygon) -> bool {
        linestring_intersects_polygon(&self.path, zone)
    }

    /// Seconds spent inside the polygon, estimated by sampling each
    /// segment at its midpoint and endpoints (exact for zones large
    /// relative to the sampling interval).
    pub fn dwell_time(&self, zone: &Polygon) -> f64 {
        let mut total = 0.0;
        for i in 0..self.num_samples().saturating_sub(1) {
            let a = self.path.point(i);
            let b = self.path.point(i + 1);
            let mid = Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
            let dt = self.times[i + 1] - self.times[i];
            // Fraction of the segment inside, by 3-point sampling.
            let inside = [a, mid, b]
                .iter()
                .filter(|p| zone.contains_point(**p))
                .count();
            total += dt * inside as f64 / 3.0;
        }
        total
    }

    /// Serialises to the `LINESTRING … \t t0,t1,…` record columns.
    pub fn to_record(&self, id: i64) -> String {
        let mut out = format!("{id}\t");
        crate::wkt::write_into(
            &crate::geometry::Geometry::LineString(self.path.clone()),
            &mut out,
        );
        out.push('\t');
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{t}"));
        }
        out
    }

    /// Parses a `id \t wkt \t times` record.
    ///
    /// # Errors
    /// Fails on malformed WKT, timestamps, or mismatched counts.
    pub fn from_record(line: &str) -> Result<(i64, Trajectory), GeomError> {
        let mut cols = line.split('\t');
        let id = cols
            .next()
            .and_then(|c| c.trim().parse::<i64>().ok())
            .ok_or_else(|| GeomError::Invalid("missing trajectory id".into()))?;
        let wkt = cols
            .next()
            .ok_or_else(|| GeomError::Invalid("missing trajectory wkt".into()))?;
        let times_col = cols
            .next()
            .ok_or_else(|| GeomError::Invalid("missing trajectory timestamps".into()))?;
        let geom = crate::wkt::parse(wkt)?;
        let path = match geom {
            crate::geometry::Geometry::LineString(l) => l,
            other => {
                return Err(GeomError::Invalid(format!(
                    "trajectory path must be a LINESTRING, got {}",
                    other.type_name()
                )))
            }
        };
        let times = times_col
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| GeomError::Invalid(format!("bad timestamp '{t}'")))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        Ok((id, Trajectory::new(path, times)?))
    }
}

impl HasEnvelope for Trajectory {
    fn envelope(&self) -> Envelope {
        self.path.envelope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            LineString::new(vec![0.0, 0.0, 10.0, 0.0, 10.0, 10.0]).unwrap(),
            vec![0.0, 10.0, 30.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_invariants() {
        let path = LineString::new(vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!(Trajectory::new(path.clone(), vec![0.0]).is_err()); // count mismatch
        assert!(Trajectory::new(path.clone(), vec![5.0, 1.0]).is_err()); // decreasing
        assert!(Trajectory::new(path, vec![1.0, 1.0]).is_ok()); // equal ok (stopped)
    }

    #[test]
    fn kinematics() {
        let t = traj();
        assert_eq!(t.duration(), 30.0);
        assert_eq!(t.length(), 20.0);
        assert!((t.average_speed() - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(t.position_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(t.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(t.position_at(20.0), Point::new(10.0, 5.0));
        assert_eq!(t.position_at(99.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn zone_predicates() {
        let t = traj();
        let crossed = Polygon::rectangle(Envelope::new(4.0, -1.0, 6.0, 1.0));
        assert!(t.passes_through(&crossed));
        let missed = Polygon::rectangle(Envelope::new(20.0, 20.0, 30.0, 30.0));
        assert!(!t.passes_through(&missed));
        // Dwell time: the segment 0→10 s crosses x∈[4,6]; about 2/10 of
        // that segment is inside, sampled as 1/3 (midpoint only).
        let dwell = t.dwell_time(&crossed);
        assert!(dwell > 0.0 && dwell < 10.0, "dwell {dwell}");
    }

    #[test]
    fn record_round_trip() {
        let t = traj();
        let line = t.to_record(42);
        let (id, back) = Trajectory::from_record(&line).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_records_error() {
        assert!(Trajectory::from_record("notanid\tLINESTRING (0 0, 1 1)\t0,1").is_err());
        assert!(Trajectory::from_record("1\tPOINT (0 0)\t0").is_err());
        assert!(Trajectory::from_record("1\tLINESTRING (0 0, 1 1)\t0,abc").is_err());
        assert!(Trajectory::from_record("1\tLINESTRING (0 0, 1 1)").is_err());
        assert!(Trajectory::from_record("1\tLINESTRING (0 0, 1 1)\t0,1,2").is_err());
    }
}
