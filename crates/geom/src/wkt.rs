//! Well-Known Text reader and writer.
//!
//! Both prototype systems in the paper store geometry as WKT strings in
//! HDFS text files and parse them at run time ("we represent geometry as
//! strings in the Well-Known-Text format", §IV), so the parser here is a
//! hot path and written as a single-pass recursive-descent scanner over
//! the input bytes with no intermediate token vector.

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

/// Parses one WKT geometry from `input`.
///
/// Accepts the six types used by the paper's datasets, case-insensitively,
/// plus `EMPTY` collections.
///
/// # Errors
/// Returns [`GeomError::WktParse`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Geometry, GeomError> {
    let mut p = Parser::new(input);
    let geom = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after geometry"));
    }
    Ok(geom)
}

/// Serialises a geometry to WKT.
pub fn write(geom: &Geometry) -> String {
    let mut out = String::with_capacity(geom.num_points() * 16 + 16);
    write_into(geom, &mut out);
    out
}

/// Serialises a geometry to WKT, appending to an existing buffer (lets
/// callers reuse one allocation per record batch).
pub fn write_into(geom: &Geometry, out: &mut String) {
    use std::fmt::Write;
    match geom {
        Geometry::Point(p) => {
            let _ = write!(out, "POINT ({} {})", p.x, p.y);
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            write_coord_list(l.coords(), out);
        }
        Geometry::Polygon(poly) => {
            out.push_str("POLYGON ");
            write_polygon_body(poly, out);
        }
        Geometry::MultiPoint(mp) => {
            if mp.points.is_empty() {
                out.push_str("MULTIPOINT EMPTY");
                return;
            }
            out.push_str("MULTIPOINT (");
            for (i, p) in mp.points.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "({} {})", p.x, p.y);
            }
            out.push(')');
        }
        Geometry::MultiLineString(ml) => {
            if ml.lines.is_empty() {
                out.push_str("MULTILINESTRING EMPTY");
                return;
            }
            out.push_str("MULTILINESTRING (");
            for (i, l) in ml.lines.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_coord_list(l.coords(), out);
            }
            out.push(')');
        }
        Geometry::MultiPolygon(mp) => {
            if mp.polygons.is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
                return;
            }
            out.push_str("MULTIPOLYGON (");
            for (i, poly) in mp.polygons.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_polygon_body(poly, out);
            }
            out.push(')');
        }
    }
}

fn write_coord_list(coords: &[f64], out: &mut String) {
    use std::fmt::Write;
    out.push('(');
    for (i, pair) in coords.chunks_exact(2).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", pair[0], pair[1]);
    }
    out.push(')');
}

fn write_polygon_body(poly: &Polygon, out: &mut String) {
    out.push('(');
    write_coord_list(poly.exterior().coords(), out);
    for h in poly.holes() {
        out.push_str(", ");
        write_coord_list(h.coords(), out);
    }
    out.push(')');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> GeomError {
        GeomError::WktParse {
            message: message.into(),
            offset: self.pos,
        }
    }

    // The per-coordinate scanning primitives. Every coordinate of every
    // record funnels through these, so they must never touch the
    // allocator; the allocating helpers (`consume`'s error message,
    // `keyword`'s owned string) live below, outside the region.
    // tidy:alloc-free:start
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume_if(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True (and consumed) when the next keyword is `EMPTY`.
    fn try_empty(&mut self) -> bool {
        self.skip_ws();
        let rest = &self.bytes[self.pos..];
        if rest.len() >= 5 && rest[..5].eq_ignore_ascii_case(b"EMPTY") {
            self.pos += 5;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<f64, GeomError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' => self.pos += 1,
                _ => break,
            }
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("number is not ASCII"))?
            .parse::<f64>()
            .map_err(|_| GeomError::WktParse {
                message: "malformed number".into(),
                offset: start,
            })
    }
    // tidy:alloc-free:end

    fn consume(&mut self, b: u8) -> Result<(), GeomError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    /// Reads the next alphabetic keyword, upper-cased.
    fn keyword(&mut self) -> Result<String, GeomError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a keyword"));
        }
        let word = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("keyword is not ASCII"))?;
        Ok(word.to_ascii_uppercase())
    }

    /// `( x y, x y, ... )` — a parenthesised coordinate list, returned flat.
    fn coord_list(&mut self) -> Result<Vec<f64>, GeomError> {
        self.consume(b'(')?;
        let mut coords = Vec::with_capacity(16);
        loop {
            let x = self.number()?;
            let y = self.number()?;
            coords.push(x);
            coords.push(y);
            if !self.consume_if(b',') {
                break;
            }
        }
        self.consume(b')')?;
        Ok(coords)
    }

    /// `( (ring), (ring), ... )` — a polygon body.
    fn polygon_body(&mut self) -> Result<Polygon, GeomError> {
        self.consume(b'(')?;
        let exterior = Ring::new(self.coord_list()?)?;
        let mut holes = Vec::new();
        while self.consume_if(b',') {
            holes.push(Ring::new(self.coord_list()?)?);
        }
        self.consume(b')')?;
        Ok(Polygon::new(exterior, holes))
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeomError> {
        let kw = self.keyword()?;
        match kw.as_str() {
            "POINT" => {
                self.consume(b'(')?;
                let x = self.number()?;
                let y = self.number()?;
                self.consume(b')')?;
                Ok(Geometry::Point(Point::new(x, y)))
            }
            "LINESTRING" => {
                let coords = self.coord_list()?;
                Ok(Geometry::LineString(LineString::new(coords)?))
            }
            "POLYGON" => Ok(Geometry::Polygon(self.polygon_body()?)),
            "MULTIPOINT" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPoint(MultiPoint::new(vec![])));
                }
                self.consume(b'(')?;
                let mut points = Vec::new();
                loop {
                    // Both `(x y)` and bare `x y` member syntax are legal WKT.
                    let parenthesised = self.consume_if(b'(');
                    let x = self.number()?;
                    let y = self.number()?;
                    if parenthesised {
                        self.consume(b')')?;
                    }
                    points.push(Point::new(x, y));
                    if !self.consume_if(b',') {
                        break;
                    }
                }
                self.consume(b')')?;
                Ok(Geometry::MultiPoint(MultiPoint::new(points)))
            }
            "MULTILINESTRING" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiLineString(MultiLineString::new(vec![])));
                }
                self.consume(b'(')?;
                let mut lines = Vec::new();
                loop {
                    lines.push(LineString::new(self.coord_list()?)?);
                    if !self.consume_if(b',') {
                        break;
                    }
                }
                self.consume(b')')?;
                Ok(Geometry::MultiLineString(MultiLineString::new(lines)))
            }
            "MULTIPOLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(MultiPolygon::new(vec![])));
                }
                self.consume(b'(')?;
                let mut polygons = Vec::new();
                loop {
                    polygons.push(self.polygon_body()?);
                    if !self.consume_if(b',') {
                        break;
                    }
                }
                self.consume(b')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polygons)))
            }
            other => Err(GeomError::WktParse {
                message: format!("unknown geometry type '{other}'"),
                offset: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HasEnvelope;

    #[test]
    fn point_round_trip() {
        let g = parse("POINT (-73.97 40.75)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-73.97, 40.75)));
        assert_eq!(write(&g), "POINT (-73.97 40.75)");
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let g = parse("  point(1 2)  ").unwrap();
        assert_eq!(g.as_point(), Some(Point::new(1.0, 2.0)));
        let g2 = parse("LineString ( 0 0 , 1 1 )").unwrap();
        assert_eq!(g2.type_name(), "LINESTRING");
    }

    #[test]
    fn polygon_with_hole_round_trip() {
        let wkt = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))";
        let g = parse(wkt).unwrap();
        let poly = g.as_polygon().unwrap();
        assert_eq!(poly.holes().len(), 1);
        let back = write(&g);
        assert_eq!(parse(&back).unwrap(), g);
    }

    #[test]
    fn multipolygon_parses() {
        let wkt = "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))";
        let g = parse(wkt).unwrap();
        match &g {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.polygons.len(), 2),
            _ => panic!("expected MultiPolygon"),
        }
        assert_eq!(parse(&write(&g)).unwrap(), g);
    }

    #[test]
    fn multipoint_both_member_syntaxes() {
        let a = parse("MULTIPOINT ((1 2), (3 4))").unwrap();
        let b = parse("MULTIPOINT (1 2, 3 4)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_collections() {
        assert_eq!(
            parse("MULTIPOLYGON EMPTY").unwrap(),
            Geometry::MultiPolygon(MultiPolygon::new(vec![]))
        );
        assert!(parse("MULTIPOINT EMPTY").unwrap().envelope().is_empty());
    }

    #[test]
    fn scientific_notation() {
        let g = parse("POINT (1.5e2 -2.5E-1)").unwrap();
        assert_eq!(g.as_point(), Some(Point::new(150.0, -0.25)));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("POINT (1 )").unwrap_err();
        match err {
            GeomError::WktParse { offset, .. } => assert!(offset >= 8),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("CIRCLE (0 0)").is_err());
        assert!(parse("POINT (1 2) junk").is_err());
        assert!(parse("").is_err());
        assert!(parse("POLYGON ((0 0, 1 1))").is_err()); // ring too short
    }

    #[test]
    fn multilinestring_round_trip() {
        let wkt = "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))";
        let g = parse(wkt).unwrap();
        assert_eq!(g.num_points(), 5);
        assert_eq!(parse(&write(&g)).unwrap(), g);
    }
}
