//! # hadooplet — a miniature Hadoop/MapReduce engine
//!
//! §II of the paper frames the prior art: "SpatialHadoop, HadoopGIS and
//! ESRI Spatial Framework for Hadoop … all spatially partition spatial
//! data to apply the MapReduce computing model", and §II's closing
//! paragraph criticises Hadoop for "outputting intermediate results to
//! disks, … excessive disk I/Os". This crate builds those baselines so
//! the in-memory systems have something to be compared against:
//!
//! * [`mapreduce`] — a generic MapReduce engine over minihdfs: per-block
//!   map tasks with locality, a sort/shuffle that **materialises
//!   intermediate results** through a disk cost model, and reduce
//!   tasks. Measured tasks replay on the simulated cluster exactly like
//!   the other engines.
//! * [`spatial`] — the two §II join strategies on top of it:
//!   - `spatialhadoop_join`: both sides pre-partitioned by a shared STR
//!     partitioner; the join is a **map-only** job over cell pairs
//!     (SpatialHadoop's custom `FileInputFormat` approach);
//!   - `hadoopgis_join`: a **reduce-side** join where map emits
//!     `(cell, text record)` for both sides — intermediate data is
//!     tab-separated *text*, as Hadoop streaming requires — and each
//!     reducer runs an indexed join for its cell.

pub mod mapreduce;
pub mod spatial;

pub use mapreduce::{DiskModel, HadoopConf, JobMetrics, MapReduce};
pub use spatial::{hadoopgis_join, spatialhadoop_join, HadoopJoinRun};
