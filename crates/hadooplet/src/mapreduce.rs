//! The generic MapReduce engine.

use std::collections::BTreeMap;

use cluster::{simulate, ClusterSpec, NetworkModel, ScheduleMode, Scheduler, TaskSpec};
use minihdfs::{DfsError, MiniDfs};

/// Disk throughput model for intermediate materialisation — the cost
/// Hadoop pays that the in-memory systems avoid. Defaults model the
/// paper-era magnetic disks on EC2.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
}

impl DiskModel {
    /// ~100 MB/s magnetic disk.
    pub fn ec2_magnetic() -> DiskModel {
        DiskModel {
            write_bw: 90.0e6,
            read_bw: 110.0e6,
        }
    }

    /// Seconds to spill and re-read `bytes` of intermediate data
    /// (written once by mappers, read once by reducers).
    pub fn round_trip_cost(&self, bytes: u64) -> f64 {
        bytes as f64 / self.write_bw + bytes as f64 / self.read_bw
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct HadoopConf {
    /// Local worker threads for real execution.
    pub threads: usize,
    /// Simulated cluster for replay.
    pub cluster: ClusterSpec,
    /// Network model (same wire as the other engines).
    pub network: NetworkModel,
    /// Disk model for intermediate spills.
    pub disk: DiskModel,
    /// Per-job JVM/container startup cost, seconds. Hadoop launches a
    /// JVM per task wave; modelled as a flat job cost plus a per-task
    /// cost folded into scheduling.
    pub job_startup: f64,
}

impl Default for HadoopConf {
    fn default() -> HadoopConf {
        HadoopConf {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cluster: ClusterSpec::ec2_paper_cluster(),
            network: NetworkModel::ec2_impala(), // plain wire, no Spark actor overheads
            disk: DiskModel::ec2_magnetic(),
            job_startup: 8.0, // JVM + job setup; Hadoop jobs start slowly
        }
    }
}

/// What one job measured, for cluster replay.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Measured per-map-task costs with block locality.
    pub map_tasks: Vec<TaskSpec>,
    /// Measured per-reduce-task costs.
    pub reduce_tasks: Vec<TaskSpec>,
    /// Bytes of intermediate `(key, value)` data spilled between the
    /// phases.
    pub intermediate_bytes: u64,
}

impl JobMetrics {
    /// Total measured CPU seconds.
    pub fn total_work(&self) -> f64 {
        self.map_tasks.iter().map(|t| t.cost).sum::<f64>()
            + self.reduce_tasks.iter().map(|t| t.cost).sum::<f64>()
    }

    /// Replays the job on `num_nodes` nodes: startup, the map wave
    /// (dynamic with locality preference, like Hadoop's scheduler), the
    /// disk + network cost of the shuffle barrier, then the reduce wave.
    pub fn simulate_runtime(&self, conf: &HadoopConf, num_nodes: usize) -> f64 {
        let spec = ClusterSpec {
            num_nodes,
            ..conf.cluster
        };
        let mut total = conf.job_startup;
        total += simulate(&self.map_tasks, &spec, Scheduler::Dynamic).makespan;
        // Intermediates are written by mappers, shuffled, read by
        // reducers. Disk bandwidth is per node; the cluster spills in
        // parallel.
        let per_node_bytes = self.intermediate_bytes / num_nodes.max(1) as u64;
        total += conf.disk.round_trip_cost(per_node_bytes);
        total += conf
            .network
            .shuffle_cost(self.intermediate_bytes, num_nodes);
        total += simulate(&self.reduce_tasks, &spec, Scheduler::Dynamic).makespan;
        total
    }

    /// Merges another job's metrics (for multi-job pipelines such as
    /// partition-then-join).
    pub fn merge(&mut self, other: &JobMetrics) {
        self.map_tasks.extend_from_slice(&other.map_tasks);
        self.reduce_tasks.extend_from_slice(&other.reduce_tasks);
        self.intermediate_bytes += other.intermediate_bytes;
    }
}

/// The result of one job.
pub struct JobResult<R> {
    /// Reduce outputs, in key order.
    pub output: Vec<R>,
    /// Measured metrics.
    pub metrics: JobMetrics,
}

/// The engine: runs map/reduce jobs over minihdfs files.
pub struct MapReduce {
    conf: HadoopConf,
    dfs: MiniDfs,
}

impl MapReduce {
    /// Creates an engine over a file system.
    pub fn new(conf: HadoopConf, dfs: MiniDfs) -> MapReduce {
        MapReduce { conf, dfs }
    }

    /// The configuration.
    pub fn conf(&self) -> &HadoopConf {
        &self.conf
    }

    /// The file system.
    pub fn dfs(&self) -> &MiniDfs {
        &self.dfs
    }

    /// Runs one MapReduce job.
    ///
    /// * `map` receives each input line and emits `(key, value)` pairs.
    /// * `value_bytes` estimates a value's serialized size (intermediate
    ///   accounting).
    /// * `reduce` receives each key with a slice of all its values,
    ///   grouped and sorted by key, and emits output records.
    ///
    /// A map-only job is expressed with a `reduce` that forwards values.
    ///
    /// # Errors
    /// Fails when an input path is missing.
    pub fn run_job<K, V, R, M, B, Red>(
        &self,
        inputs: &[&str],
        map: M,
        value_bytes: B,
        reduce: Red,
    ) -> Result<JobResult<R>, DfsError>
    where
        K: Ord + Clone + Send + Sync,
        V: Send + Sync,
        R: Send,
        M: Fn(&str, &mut Vec<(K, V)>) + Sync,
        B: Fn(&K, &V) -> u64,
        Red: Fn(&K, &[V]) -> Vec<R> + Sync,
    {
        // --- map phase: one task per block, locality preserved ---
        let mut blocks = Vec::new();
        for path in inputs {
            blocks.extend(self.dfs.blocks(path)?);
        }
        let localities: Vec<Option<usize>> = blocks.iter().map(|b| Some(b.primary_node)).collect();
        let (map_outputs, map_timings) =
            cluster::run_tasks(blocks, self.conf.threads, ScheduleMode::Dynamic, |block| {
                let mut emitted = Vec::new();
                for line in block.lines() {
                    map(line, &mut emitted);
                }
                emitted
            });
        let map_tasks: Vec<TaskSpec> = map_timings
            .iter()
            .map(|t| TaskSpec {
                cost: t.secs,
                locality: localities[t.index].map(|n| n % self.conf.cluster.num_nodes),
            })
            .collect();

        // --- shuffle: group by key (the sort phase), count bytes ---
        let mut intermediate_bytes = 0u64;
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for out in map_outputs {
            for (k, v) in out {
                intermediate_bytes += value_bytes(&k, &v) + 8;
                grouped.entry(k).or_default().push(v);
            }
        }

        // --- reduce phase: one task per key group ---
        let groups: Vec<(K, Vec<V>)> = grouped.into_iter().collect();
        let (reduce_outputs, reduce_timings) = cluster::run_tasks(
            groups,
            self.conf.threads,
            ScheduleMode::Dynamic,
            |(k, vs)| reduce(k, vs),
        );
        let reduce_tasks: Vec<TaskSpec> = reduce_timings
            .iter()
            .map(|t| TaskSpec::of_cost(t.secs))
            .collect();

        let output = reduce_outputs.into_iter().flatten().collect();
        Ok(JobResult {
            output,
            metrics: JobMetrics {
                map_tasks,
                reduce_tasks,
                intermediate_bytes,
            },
        })
    }

    /// Runs a **map-only** job whose task unit is a whole file — the
    /// shape of SpatialHadoop's spatial join, where a custom
    /// `FileInputFormat` hands one partition (pair) to one map task.
    /// No shuffle, no reduce, no intermediate spill.
    ///
    /// # Errors
    /// Fails when an input path is missing.
    pub fn run_file_job<R, F>(&self, inputs: &[&str], f: F) -> Result<JobResult<R>, DfsError>
    where
        R: Send,
        F: Fn(&str, &[String]) -> Vec<R> + Sync,
    {
        let mut files: Vec<(String, Vec<String>, Option<usize>)> = Vec::with_capacity(inputs.len());
        for path in inputs {
            let blocks = self.dfs.blocks(path)?;
            let locality = blocks.first().map(|b| b.primary_node);
            let lines = self.dfs.read_all_lines(path)?;
            files.push((path.to_string(), lines, locality));
        }
        let localities: Vec<Option<usize>> = files.iter().map(|(_, _, l)| *l).collect();
        let (outputs, timings) = cluster::run_tasks(
            files,
            self.conf.threads,
            ScheduleMode::Dynamic,
            |(path, lines, _)| f(path, lines),
        );
        let map_tasks: Vec<TaskSpec> = timings
            .iter()
            .map(|t| TaskSpec {
                cost: t.secs,
                locality: localities[t.index].map(|n| n % self.conf.cluster.num_nodes),
            })
            .collect();
        Ok(JobResult {
            output: outputs.into_iter().flatten().collect(),
            metrics: JobMetrics {
                map_tasks,
                reduce_tasks: Vec::new(),
                intermediate_bytes: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_text(lines: &[&str]) -> MapReduce {
        let dfs = MiniDfs::new(4, 64).unwrap();
        dfs.write_lines("/in", lines).unwrap();
        MapReduce::new(HadoopConf::default(), dfs)
    }

    #[test]
    fn word_count_end_to_end() {
        let mr = engine_with_text(&["a b a", "b c", "a"]);
        let result = mr
            .run_job(
                &["/in"],
                |line, out| {
                    for w in line.split_whitespace() {
                        out.push((w.to_string(), 1u64));
                    }
                },
                |k, _| k.len() as u64 + 8,
                |k, vs| vec![(k.clone(), vs.iter().sum::<u64>())],
            )
            .unwrap();
        // BTreeMap grouping → output sorted by key.
        assert_eq!(
            result.output,
            vec![("a".into(), 3u64), ("b".into(), 2), ("c".into(), 1)]
        );
        assert!(result.metrics.intermediate_bytes > 0);
        assert!(!result.metrics.map_tasks.is_empty());
        assert_eq!(result.metrics.reduce_tasks.len(), 3);
    }

    #[test]
    fn missing_input_errors() {
        let mr = engine_with_text(&["x"]);
        assert!(mr
            .run_job(
                &["/nope"],
                |_, _: &mut Vec<(u8, u8)>| {},
                |_, _| 1,
                |_, _| Vec::<u8>::new(),
            )
            .is_err());
    }

    #[test]
    fn multiple_inputs_are_concatenated() {
        let dfs = MiniDfs::new(2, 64).unwrap();
        dfs.write_lines("/a", ["1", "2"]).unwrap();
        dfs.write_lines("/b", ["3"]).unwrap();
        let mr = MapReduce::new(HadoopConf::default(), dfs);
        let result = mr
            .run_job(
                &["/a", "/b"],
                |line, out| out.push(((), line.parse::<i64>().unwrap())),
                |_, _| 8,
                |_, vs| vec![vs.iter().sum::<i64>()],
            )
            .unwrap();
        assert_eq!(result.output, vec![6]);
    }

    #[test]
    fn simulated_runtime_includes_disk_and_startup() {
        let mr = engine_with_text(&["a"; 50]);
        let result = mr
            .run_job(
                &["/in"],
                |line, out| out.push((line.to_string(), 1u64)),
                |_, _| 1 << 20, // pretend values are 1 MiB to exercise disk cost
                |k, vs| vec![(k.clone(), vs.len())],
            )
            .unwrap();
        let t = result.metrics.simulate_runtime(&HadoopConf::default(), 10);
        // 50 MiB of intermediates through ~100 MB/s disks plus 8 s
        // startup dominates this tiny job.
        assert!(t > 8.0, "runtime {t} must include startup and spill");
        // More nodes split the spill.
        let t4 = result.metrics.simulate_runtime(&HadoopConf::default(), 4);
        assert!(t4 >= t);
    }

    #[test]
    fn metrics_merge_accumulates() {
        let mut a = JobMetrics {
            intermediate_bytes: 10,
            ..Default::default()
        };
        a.map_tasks.push(TaskSpec::of_cost(1.0));
        let mut b = JobMetrics {
            intermediate_bytes: 5,
            ..Default::default()
        };
        b.reduce_tasks.push(TaskSpec::of_cost(2.0));
        a.merge(&b);
        assert_eq!(a.intermediate_bytes, 15);
        assert_eq!(a.total_work(), 3.0);
    }

    #[test]
    fn disk_model_round_trip() {
        let d = DiskModel::ec2_magnetic();
        assert_eq!(d.round_trip_cost(0), 0.0);
        let one_gb = d.round_trip_cost(1 << 30);
        assert!(
            one_gb > 15.0,
            "1 GiB round trip {one_gb} takes tens of seconds"
        );
    }
}
