//! The two §II Hadoop-based spatial-join strategies, as baselines.
//!
//! Both share a sampled STR partitioner (SpatialHadoop's default). They
//! differ exactly where the paper says they differ:
//!
//! * **SpatialHadoop**: "both sides in a spatial join are partitioned
//!   and spatial join is implemented as a map-only job" — a separate
//!   partitioning job spills both datasets to per-cell files, then the
//!   join job pairs up co-located cell files and joins each pair in one
//!   map task. Refinement uses the JTS-like [`FlatEngine`] (it is a
//!   Java system).
//! * **HadoopGIS**: a reduce-side join using "the Hadoop streaming
//!   technique which requires all intermediate results to be
//!   represented as text" — map emits `(cell, text record)` for both
//!   sides, every reducer re-parses the WKT of its cell and joins.
//!   Refinement uses the GEOS-like [`NaiveEngine`] (HadoopGIS wraps
//!   GEOS).

use geom::engine::{FlatEngine, NaiveEngine, SpatialPredicate};
use geom::{HasEnvelope, Point};
use minihdfs::DfsError;
use rtree::{SpatialPartitioner, StrPartitioner};
use spatialjoin::join::{self, parse_geom_records, parse_point_record};
use spatialjoin::JoinPair;

use crate::mapreduce::{HadoopConf, JobMetrics, MapReduce};

/// A completed Hadoop-based join.
pub struct HadoopJoinRun {
    /// Matched `(left id, right id)` pairs.
    pub pairs: Vec<JoinPair>,
    /// Metrics of the join job itself.
    pub metrics: JobMetrics,
    /// Metrics of the one-time partitioning job, when the strategy has
    /// one (SpatialHadoop amortises this across queries).
    pub preprocessing: Option<JobMetrics>,
    conf: HadoopConf,
    /// Human-readable strategy name.
    pub strategy: &'static str,
}

impl HadoopJoinRun {
    /// Simulated runtime of the join job on `num_nodes` nodes.
    pub fn simulated_runtime(&self, num_nodes: usize) -> f64 {
        self.metrics.simulate_runtime(&self.conf, num_nodes)
    }

    /// Simulated runtime including any one-time partitioning job.
    pub fn simulated_runtime_with_preprocessing(&self, num_nodes: usize) -> f64 {
        let mut t = self.simulated_runtime(num_nodes);
        if let Some(pre) = &self.preprocessing {
            t += pre.simulate_runtime(&self.conf, num_nodes);
        }
        t
    }

    /// Number of result pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Builds the shared STR partitioner from the left side's points plus
/// the right side's (expanded) extent.
fn build_partitioner(
    mr: &MapReduce,
    left_path: &str,
    right_path: &str,
    radius: f64,
    target_cells: usize,
) -> Result<StrPartitioner, DfsError> {
    let left_lines = mr.dfs().read_all_lines(left_path)?;
    let right_lines = mr.dfs().read_all_lines(right_path)?;
    let mut extent = geom::Envelope::EMPTY;
    let stride = (left_lines.len() / 10_000).max(1);
    let mut sample: Vec<Point> = Vec::new();
    for line in left_lines.iter().step_by(stride) {
        if let Some((_, p)) = parse_point_record(line, 1) {
            sample.push(p);
        }
    }
    for line in &left_lines {
        if let Some((_, p)) = parse_point_record(line, 1) {
            extent.expand_to(p.x, p.y);
        }
    }
    for (_, g) in parse_geom_records(&right_lines, 1) {
        extent = extent.union(&g.envelope().expanded_by(radius));
    }
    Ok(StrPartitioner::build(extent, &sample, target_cells.max(1)))
}

/// The HadoopGIS-style reduce-side join.
///
/// # Errors
/// Fails when an input path is missing.
pub fn hadoopgis_join(
    mr: &MapReduce,
    left_path: &str,
    right_path: &str,
    predicate: SpatialPredicate,
    target_cells: usize,
) -> Result<HadoopJoinRun, DfsError> {
    let radius = predicate.filter_radius();
    let partitioner = build_partitioner(mr, left_path, right_path, radius, target_cells)?;
    let engine = NaiveEngine;

    // One job: map tags records with their cell(s) as *text* values;
    // reduce re-parses and joins per cell. The map distinguishes sides
    // by geometry type (points probe, everything else builds), which is
    // the shape of every join in the paper.
    let result = mr.run_job(
        &[left_path, right_path],
        |line, out: &mut Vec<(usize, String)>| {
            let Some(wkt) = line.split('\t').nth(1) else {
                return;
            };
            let Ok(g) = geom::wkt::parse(wkt) else { return };
            if let Some(p) = g.as_point() {
                if let Some(cell) = partitioner.cell_of(p) {
                    out.push((cell, format!("L\t{line}")));
                }
            } else {
                let env = g.envelope().expanded_by(radius);
                for cell in partitioner.cells_intersecting(&env) {
                    out.push((cell, format!("R\t{line}")));
                }
            }
        },
        // Hadoop-streaming text intermediates: full record length.
        |_, v| v.len() as u64,
        |_, records| {
            // Re-parse everything from text — the HadoopGIS overhead
            // the paper calls out ("data movement and parsing text are
            // expensive on modern hardware").
            let mut left = Vec::new();
            let mut right_lines = Vec::new();
            for r in records {
                if let Some(rest) = r.strip_prefix("L\t") {
                    if let Some(rec) = parse_point_record(rest, 1) {
                        left.push(rec);
                    }
                } else if let Some(rest) = r.strip_prefix("R\t") {
                    right_lines.push(rest.to_string());
                }
            }
            let right = parse_geom_records(&right_lines, 1);
            if left.is_empty() || right.is_empty() {
                return Vec::new();
            }
            join::broadcast_index_join(&left, &right, predicate, &engine)
        },
    )?;

    Ok(HadoopJoinRun {
        pairs: result.output,
        metrics: result.metrics,
        preprocessing: None,
        conf: mr.conf().clone(),
        strategy: "hadoopgis-reduce-side",
    })
}

/// The SpatialHadoop-style join: a partitioning job writes both sides
/// to per-cell files, then a map-only job joins each cell pair.
///
/// # Errors
/// Fails when an input path is missing.
pub fn spatialhadoop_join(
    mr: &MapReduce,
    left_path: &str,
    right_path: &str,
    predicate: SpatialPredicate,
    target_cells: usize,
) -> Result<HadoopJoinRun, DfsError> {
    let radius = predicate.filter_radius();
    let partitioner = build_partitioner(mr, left_path, right_path, radius, target_cells)?;
    let engine = FlatEngine;

    // --- Job 1: partition both datasets into per-cell files ---
    let partition_job = mr.run_job(
        &[left_path, right_path],
        |line, out: &mut Vec<(usize, String)>| {
            let Some(wkt) = line.split('\t').nth(1) else {
                return;
            };
            let Ok(g) = geom::wkt::parse(wkt) else { return };
            if let Some(p) = g.as_point() {
                if let Some(cell) = partitioner.cell_of(p) {
                    out.push((cell, format!("L\t{line}")));
                }
            } else {
                let env = g.envelope().expanded_by(radius);
                for cell in partitioner.cells_intersecting(&env) {
                    out.push((cell, format!("R\t{line}")));
                }
            }
        },
        |_, v| v.len() as u64,
        |cell, records| vec![(*cell, records.to_vec())],
    )?;
    let preprocessing = partition_job.metrics.clone();

    // Materialise the cell files (SpatialHadoop's partitioned layout).
    // A unique run id keeps repeated joins on one DFS from colliding.
    let run_id = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let mut cell_paths = Vec::new();
    for (cell, lines) in &partition_job.output {
        let path = format!("/tmp/shjoin-{run_id}/cell-{cell}");
        mr.dfs().write_lines(&path, lines)?;
        cell_paths.push(path);
    }

    // --- Job 2: map-only join over the cell files ---
    let input_refs: Vec<&str> = cell_paths.iter().map(String::as_str).collect();
    let join_job = mr.run_file_job(&input_refs, |_, lines| {
        let mut left = Vec::new();
        let mut right_lines = Vec::new();
        for l in lines {
            if let Some(rest) = l.strip_prefix("L\t") {
                if let Some(rec) = parse_point_record(rest, 1) {
                    left.push(rec);
                }
            } else if let Some(rest) = l.strip_prefix("R\t") {
                right_lines.push(rest.to_string());
            }
        }
        let right = parse_geom_records(&right_lines, 1);
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        join::broadcast_index_join(&left, &right, predicate, &engine)
    })?;
    // Clean the partitioned layout back up.
    for path in &cell_paths {
        let _ = mr.dfs().delete(path);
    }

    Ok(HadoopJoinRun {
        pairs: join_job.output,
        metrics: join_job.metrics,
        preprocessing: Some(preprocessing),
        conf: mr.conf().clone(),
        strategy: "spatialhadoop-map-only",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::engine::PreparedEngine;
    use minihdfs::MiniDfs;

    fn fixture() -> MapReduce {
        let dfs = MiniDfs::new(4, 16 * 1024).unwrap();
        datagen::write_dataset(&dfs, "/taxi", &datagen::taxi::geometries(3_000, 51)).unwrap();
        datagen::write_dataset(&dfs, "/nycb", &datagen::nycb::geometries(500, 51)).unwrap();
        datagen::write_dataset(&dfs, "/lion", &datagen::lion::geometries(1_500, 51)).unwrap();
        MapReduce::new(HadoopConf::default(), dfs)
    }

    fn reference(mr: &MapReduce, left: &str, right: &str, pred: SpatialPredicate) -> Vec<JoinPair> {
        let l = spatialjoin::join::parse_point_records(&mr.dfs().read_all_lines(left).unwrap(), 1);
        let r = parse_geom_records(&mr.dfs().read_all_lines(right).unwrap(), 1);
        spatialjoin::normalize_pairs(join::broadcast_index_join(&l, &r, pred, &PreparedEngine))
    }

    #[test]
    fn hadoopgis_matches_reference_within() {
        let mr = fixture();
        let run = hadoopgis_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 16).unwrap();
        assert_eq!(
            spatialjoin::normalize_pairs(run.pairs.clone()),
            reference(&mr, "/taxi", "/nycb", SpatialPredicate::Within)
        );
        assert!(
            run.metrics.intermediate_bytes > 0,
            "text shuffle must be charged"
        );
        assert_eq!(run.strategy, "hadoopgis-reduce-side");
    }

    #[test]
    fn spatialhadoop_matches_reference_within() {
        let mr = fixture();
        let run = spatialhadoop_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 16).unwrap();
        assert_eq!(
            spatialjoin::normalize_pairs(run.pairs.clone()),
            reference(&mr, "/taxi", "/nycb", SpatialPredicate::Within)
        );
        // The temporary cell files were cleaned up.
        assert!(mr.dfs().list().iter().all(|p| !p.contains("shjoin")));
        assert_eq!(run.strategy, "spatialhadoop-map-only");
    }

    #[test]
    fn both_strategies_match_on_nearestd() {
        let mr = fixture();
        let pred = SpatialPredicate::NearestD(400.0);
        let expected = reference(&mr, "/taxi", "/lion", pred);
        let gis = hadoopgis_join(&mr, "/taxi", "/lion", pred, 9).unwrap();
        let sh = spatialhadoop_join(&mr, "/taxi", "/lion", pred, 9).unwrap();
        assert_eq!(spatialjoin::normalize_pairs(gis.pairs.clone()), expected);
        assert_eq!(spatialjoin::normalize_pairs(sh.pairs.clone()), expected);
    }

    #[test]
    fn hadoop_runtime_includes_disk_penalty() {
        let mr = fixture();
        let run = hadoopgis_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 16).unwrap();
        let t10 = run.simulated_runtime(10);
        // Startup alone is 8 s; disk and shuffle add more.
        assert!(t10 > 8.0, "Hadoop runtime {t10} must carry its overheads");
    }
}
