//! Table catalog — the stand-in for the Hive metastore Impala consults
//! during planning.

use std::collections::BTreeMap;

use crate::error::ImpalaError;

/// Metadata of one HDFS-backed table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name used in SQL.
    pub name: String,
    /// Path of the backing text file in minihdfs.
    pub path: String,
    /// Column names, in file order. Column 0 is the record id.
    pub columns: Vec<String>,
    /// Index of the geometry (WKT) column.
    pub geom_col: usize,
}

impl TableDef {
    /// A conventional two-column `(id, geom)` table.
    pub fn id_geom(name: &str, path: &str) -> TableDef {
        TableDef {
            name: name.to_string(),
            path: path.to_string(),
            columns: vec!["id".into(), "geom".into()],
            geom_col: 1,
        }
    }
}

/// The catalog: table name → definition.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or replaces) a table definition.
    pub fn register(&mut self, def: TableDef) {
        self.tables.insert(def.name.clone(), def);
    }

    /// Looks a table up by name (case-insensitive, like Impala).
    ///
    /// # Errors
    /// Fails with [`ImpalaError::UnknownTable`] when absent.
    pub fn resolve(&self, name: &str) -> Result<&TableDef, ImpalaError> {
        let lower = name.to_ascii_lowercase();
        self.tables
            .get(&lower)
            .or_else(|| self.tables.get(name))
            .ok_or_else(|| ImpalaError::UnknownTable(name.to_string()))
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut c = Catalog::new();
        c.register(TableDef::id_geom("taxi", "/data/taxi"));
        assert_eq!(c.resolve("taxi").unwrap().path, "/data/taxi");
        assert_eq!(c.resolve("TAXI").unwrap().name, "taxi");
        assert!(matches!(
            c.resolve("nope"),
            Err(ImpalaError::UnknownTable(_))
        ));
        assert_eq!(c.table_names(), vec!["taxi"]);
    }

    #[test]
    fn id_geom_convention() {
        let t = TableDef::id_geom("x", "/p");
        assert_eq!(t.geom_col, 1);
        assert_eq!(t.columns, vec!["id", "geom"]);
    }
}
