//! Error types for the query engine.

use std::fmt;

/// Errors surfaced by parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImpalaError {
    /// SQL text failed to parse; carries a message and token position.
    Sql { message: String, position: usize },
    /// A table referenced in the query is not in the catalog.
    UnknownTable(String),
    /// A column alias does not match either joined table.
    UnknownAlias(String),
    /// The underlying file system failed.
    Dfs(String),
    /// A plan fragment failed at runtime. Impala has no lineage to
    /// recompute from — the plan is fixed before execution starts — so
    /// any fragment failure aborts the whole query; no partial result
    /// rows are ever returned.
    FragmentFailed {
        /// Which fragment died (`"scan"`, `"probe"`, `"read"`).
        fragment: String,
        /// The failure message of the fragment's final attempt.
        message: String,
    },
}

impl fmt::Display for ImpalaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpalaError::Sql { message, position } => {
                write!(f, "SQL parse error at token {position}: {message}")
            }
            ImpalaError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            ImpalaError::UnknownAlias(a) => write!(f, "unknown table alias: {a}"),
            ImpalaError::Dfs(msg) => write!(f, "storage error: {msg}"),
            ImpalaError::FragmentFailed { fragment, message } => write!(
                f,
                "query aborted: {fragment} fragment failed ({message}); no partial results"
            ),
        }
    }
}

impl std::error::Error for ImpalaError {}

impl From<minihdfs::DfsError> for ImpalaError {
    fn from(e: minihdfs::DfsError) -> Self {
        ImpalaError::Dfs(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = ImpalaError::Sql {
            message: "expected FROM".into(),
            position: 3,
        };
        assert!(e.to_string().contains("token 3"));
        let d: ImpalaError = minihdfs::DfsError::NotFound("/x".into()).into();
        assert!(matches!(d, ImpalaError::Dfs(_)));
        assert!(ImpalaError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        let frag = ImpalaError::FragmentFailed {
            fragment: "probe".into(),
            message: "worker died".into(),
        };
        let text = frag.to_string();
        assert!(text.contains("probe") && text.contains("no partial results"));
    }
}
