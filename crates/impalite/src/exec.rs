//! The backend: fragment execution, row batches, static scheduling.

use cluster::{
    simulate, Chaos, ChaosConfig, ChaosSite, ClusterSpec, NetworkModel, RetryPolicy, ScheduleMode,
    Scheduler, TaskFailure, TaskSpec,
};
use geom::engine::{NaiveEngine, RefinementEngine};
use geom::{Geometry, HasEnvelope};
use minihdfs::MiniDfs;
use rtree::RTree;
use std::time::Instant;

use crate::catalog::Catalog;
use crate::error::ImpalaError;
use crate::plan::{plan_query, PhysicalPlan};
use crate::row::{Row, RowBatch};
use crate::sql::parse_query;

/// Backend configuration.
#[derive(Debug, Clone)]
pub struct ImpaladConf {
    /// Local worker threads for real execution.
    pub threads: usize,
    /// Simulated cluster for replay.
    pub cluster: ClusterSpec,
    /// Network/coordination model (usually [`NetworkModel::ec2_impala`]).
    pub network: NetworkModel,
    /// Fault injection for the real execution paths. Disabled by
    /// default; when enabled, any fragment failure aborts the query
    /// (fail-fast — Impala has no lineage to recompute from).
    pub chaos: ChaosConfig,
}

impl Default for ImpaladConf {
    fn default() -> ImpaladConf {
        ImpaladConf {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cluster: ClusterSpec::ec2_paper_cluster(),
            network: NetworkModel::ec2_impala(),
            chaos: ChaosConfig::disabled(),
        }
    }
}

/// Multiplicative overhead of pushing rows through the engine's
/// exchange and row-batch machinery (buffering at sender and receiver,
/// pull-based operator dispatch) relative to a bare loop over the same
/// data. Calibrated to the 7–14 % infrastructure overhead the paper
/// measures between ISP-MC and its standalone twin (§V.B).
pub const ROW_BATCH_PIPELINE_TAX: f64 = 0.10;

/// One row batch's probe work: the measured cost of each static OpenMP
/// chunk, plus the batch's block locality.
///
/// The chunks of a batch run under a **barrier**: the batch is done when
/// its slowest chunk is done ("the workloads assigned to OpenMP threads
/// (within a row batch) can be unbalanced which hurts ISP-MC
/// performance quite a lot", §V.B). Batches stream through an instance
/// sequentially.
#[derive(Debug, Clone)]
pub struct ProbeBatch {
    /// Node holding the batch's source block.
    pub locality: Option<usize>,
    /// Measured seconds per static chunk (one chunk per core).
    pub chunk_costs: Vec<f64>,
}

impl ProbeBatch {
    /// The batch's barrier time: its slowest chunk.
    pub fn barrier_time(&self) -> f64 {
        self.chunk_costs.iter().cloned().fold(0.0, f64::max)
    }

    /// Total CPU seconds across chunks.
    pub fn total(&self) -> f64 {
        self.chunk_costs.iter().sum()
    }
}

/// Everything one query execution measured, for cluster replay.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// Per-block cost of scanning/splitting the left table into rows.
    pub scan_tasks: Vec<TaskSpec>,
    /// Seconds to scan + parse the right table and build the R-tree
    /// (paid by every instance after the broadcast).
    pub build_secs: f64,
    /// Bytes of the right table shipped to every instance.
    pub broadcast_bytes: u64,
    /// Per-batch probe work with intra-batch chunk structure.
    pub probe_batches: Vec<ProbeBatch>,
    /// Cores the chunks were produced for (OpenMP thread count).
    pub chunks_per_batch: usize,
    /// Join output cardinality.
    pub result_rows: usize,
}

impl QueryMetrics {
    /// The probe work flattened to independent tasks (used by the
    /// standalone replay, which has no row-batch barriers).
    pub fn probe_tasks(&self) -> Vec<TaskSpec> {
        self.probe_batches
            .iter()
            .flat_map(|b| {
                b.chunk_costs.iter().map(|&cost| TaskSpec {
                    cost,
                    locality: b.locality,
                })
            })
            .collect()
    }

    /// Replays the query on an explicit cluster: startup, right-side
    /// broadcast, per-instance R-tree build, statically-assigned scans,
    /// then the probe with **per-batch barriers** — each batch costs its
    /// slowest chunk, and an instance runs
    /// `cores / chunks_per_batch` batches concurrently.
    pub fn simulate_runtime_on(&self, conf: &ImpaladConf, spec: &ClusterSpec) -> f64 {
        let net = &conf.network;
        let num_nodes = spec.num_nodes;
        let mut total = net.job_startup_cost(num_nodes);
        total += net.broadcast_cost(self.broadcast_bytes, num_nodes);
        // Every instance builds its R-tree concurrently.
        total += self.build_secs;
        total += net.stage_coordination_cost(self.scan_tasks.len() + self.probe_batches.len());

        let scan = simulate(&self.scan_tasks, spec, Scheduler::StaticLocality).makespan;

        // Static inter-node assignment by locality, per-batch barriers
        // within a node.
        let concurrent_batches = (spec.cores_per_node / self.chunks_per_batch.max(1)).max(1) as f64;
        let mut node_time = vec![0.0f64; num_nodes];
        for (i, b) in self.probe_batches.iter().enumerate() {
            let node = b.locality.unwrap_or(i % num_nodes) % num_nodes;
            node_time[node] += b.barrier_time() / concurrent_batches;
        }
        let probe = node_time.iter().cloned().fold(0.0, f64::max);

        total += (scan + probe) * (1.0 + ROW_BATCH_PIPELINE_TAX);
        total
    }

    /// Replays the query on `num_nodes` nodes of the configured node
    /// type (the cloud deployment of Table 2 / Fig. 5).
    pub fn simulate_runtime(&self, conf: &ImpaladConf, num_nodes: usize) -> f64 {
        let spec = ClusterSpec {
            num_nodes,
            ..conf.cluster
        };
        self.simulate_runtime_on(conf, &spec)
    }

    /// Replays the same work as a standalone single-node program: no
    /// engine machinery, no exchange, no coordination, no row-batch
    /// barriers (one static OpenMP loop over everything) — the
    /// ISP-MC-standalone column of Table 1.
    pub fn simulate_standalone_on(&self, spec: &ClusterSpec) -> f64 {
        let single = ClusterSpec {
            num_nodes: 1,
            ..*spec
        };
        self.build_secs
            + simulate(&self.scan_tasks, &single, Scheduler::StaticChunked).makespan
            + simulate(&self.probe_tasks(), &single, Scheduler::StaticChunked).makespan
    }

    /// Standalone replay on the configured node type.
    pub fn simulate_standalone(&self, conf: &ImpaladConf) -> f64 {
        self.simulate_standalone_on(&conf.cluster)
    }

    /// Number of row batches the left side produced.
    pub fn num_batches(&self) -> usize {
        self.probe_batches.len()
    }

    /// Rebases the measured metrics onto the workspace observability
    /// layer: one child per fragment (scan, build, probe) carrying its
    /// measured seconds as spans, with broadcast bytes and row-batch
    /// counts in the counters. Hot-path counters (filter/refine/node
    /// visits) are *not* reconstructed here — they accumulate in the
    /// caller's thread cells while the query runs and belong to the
    /// snapshot delta the caller takes around [`Impalad::execute`].
    pub fn to_run_stats(&self) -> obs::RunStats {
        let mut root = obs::RunStats::new("ispmc");
        root.counters.bytes_broadcast = self.broadcast_bytes;

        let mut scan = obs::RunStats::new("scan");
        scan.spans.push(obs::SpanStat::from_secs(
            "tasks",
            self.scan_tasks.len() as u64,
            self.scan_tasks.iter().map(|t| t.cost).sum(),
        ));
        root.children.push(scan);

        let mut build = obs::RunStats::new("build");
        build
            .spans
            .push(obs::SpanStat::from_secs("rtree", 1, self.build_secs));
        root.children.push(build);

        let mut probe = obs::RunStats::new("probe");
        probe.counters.row_batches = self.probe_batches.len() as u64;
        probe.spans.push(obs::SpanStat::from_secs(
            "chunks",
            self.probe_batches
                .iter()
                .map(|b| b.chunk_costs.len() as u64)
                .sum(),
            self.probe_batches.iter().map(ProbeBatch::total).sum(),
        ));
        root.children.push(probe);
        root
    }

    /// Total measured CPU seconds (scan + build + probe).
    pub fn total_work(&self) -> f64 {
        self.build_secs
            + self.scan_tasks.iter().map(|t| t.cost).sum::<f64>()
            + self
                .probe_batches
                .iter()
                .map(ProbeBatch::total)
                .sum::<f64>()
    }
}

/// A completed query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched `(left id, right id)` pairs.
    pub pairs: Vec<(i64, i64)>,
    /// Measured execution metrics.
    pub metrics: QueryMetrics,
    /// The physical plan that ran.
    pub plan: PhysicalPlan,
}

/// Strips a leading `EXPLAIN` keyword, returning the remainder.
fn strip_explain(sql: &str) -> Option<&str> {
    let trimmed = sql.trim_start();
    if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
        Some(&trimmed[7..])
    } else {
        None
    }
}

/// Total attempts for a DFS read hit by transient faults before the
/// query gives up and fails fast.
const MAX_READ_ATTEMPTS: u32 = 3;

/// The fail-fast translation: the first fragment failure becomes the
/// query's error, partial results are dropped on the floor.
fn fragment_failed(fragment: &str, failures: &[TaskFailure]) -> ImpalaError {
    ImpalaError::FragmentFailed {
        fragment: fragment.into(),
        message: failures
            .first()
            .map(|f| f.message.clone())
            .unwrap_or_else(|| "unknown fragment failure".into()),
    }
}

/// One Impala daemon standing in for the whole backend.
pub struct Impalad {
    conf: ImpaladConf,
    dfs: MiniDfs,
    catalog: Catalog,
    chaos: Chaos,
}

impl Impalad {
    /// Creates a daemon over a file system and catalog.
    pub fn new(conf: ImpaladConf, dfs: MiniDfs, catalog: Catalog) -> Impalad {
        let chaos = Chaos::new(conf.chaos);
        Impalad {
            conf,
            dfs,
            catalog,
            chaos,
        }
    }

    /// The configuration.
    pub fn conf(&self) -> &ImpaladConf {
        &self.conf
    }

    /// The daemon's fault injector (for inspecting injected events).
    pub fn chaos(&self) -> &Chaos {
        &self.chaos
    }

    /// Runs a DFS read, retrying attempts the chaos layer fails
    /// transiently. A fault that persists past [`MAX_READ_ATTEMPTS`]
    /// aborts the query like any other fragment failure.
    fn read_retrying<R>(
        &self,
        read_id: u64,
        mut read: impl FnMut() -> Result<R, minihdfs::DfsError>,
    ) -> Result<R, ImpalaError> {
        let mut attempt = 0u32;
        loop {
            if self.chaos.read_fault_fires(read_id, attempt) {
                self.chaos.note_read_fault(read_id, attempt);
                attempt += 1;
                if attempt >= MAX_READ_ATTEMPTS {
                    return Err(ImpalaError::FragmentFailed {
                        fragment: "read".into(),
                        message: format!(
                            "transient read fault persisted for {MAX_READ_ATTEMPTS} attempts"
                        ),
                    });
                }
                continue;
            }
            return read().map_err(ImpalaError::from);
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses, plans and executes one spatial-join statement. An
    /// `EXPLAIN` prefix plans without executing (see
    /// [`Impalad::explain`]).
    ///
    /// # Errors
    /// Propagates SQL, catalog and storage errors.
    pub fn execute(&self, sql: &str) -> Result<QueryResult, ImpalaError> {
        let query = parse_query(strip_explain(sql).unwrap_or(sql))?;
        let plan = plan_query(&query, &self.catalog)?;
        if strip_explain(sql).is_some() {
            return Ok(QueryResult {
                pairs: Vec::new(),
                metrics: QueryMetrics {
                    scan_tasks: Vec::new(),
                    build_secs: 0.0,
                    broadcast_bytes: 0,
                    probe_batches: Vec::new(),
                    chunks_per_batch: 0,
                    result_rows: 0,
                },
                plan,
            });
        }
        self.run_plan(plan)
    }

    /// Plans a statement and returns its `EXPLAIN` rendering without
    /// executing it.
    ///
    /// # Errors
    /// Propagates SQL and catalog errors.
    pub fn explain(&self, sql: &str) -> Result<String, ImpalaError> {
        let query = parse_query(strip_explain(sql).unwrap_or(sql))?;
        Ok(plan_query(&query, &self.catalog)?.explain())
    }

    fn run_plan(&self, plan: PhysicalPlan) -> Result<QueryResult, ImpalaError> {
        let engine = NaiveEngine;
        let predicate = plan.predicate;
        let radius = predicate.filter_radius();

        // --- Fragment 0: scan right table, broadcast, build R-tree ---
        // In the real system every instance receives the broadcast WKT
        // row batches and parses + builds its own tree; the measured
        // build time below is that per-instance cost.
        let right_stat = self.dfs.stat(&plan.right_path)?;
        let right_lines = self.read_retrying(0, || self.dfs.read_all_lines(&plan.right_path))?;
        let t0 = Instant::now();
        let mut entries: Vec<(geom::Envelope, (i64, Geometry))> = Vec::new();
        for line in &right_lines {
            if let Some(row) = Row::from_line(line, plan.right_geom_col) {
                if let Ok(g) = geom::wkt::parse(&row.wkt) {
                    let env = g.envelope().expanded_by(radius);
                    entries.push((env, (row.id, engine.prepare(&g))));
                }
            }
        }
        let tree: RTree<(i64, Geometry)> = RTree::bulk_load_entries(entries);
        let build_secs = t0.elapsed().as_secs_f64();

        // --- Fragment 1: scan left table into row batches ---
        let blocks = self.read_retrying(1, || self.dfs.blocks(&plan.left_path))?;
        let localities: Vec<Option<usize>> = blocks.iter().map(|b| Some(b.primary_node)).collect();
        let geom_col = plan.left_geom_col;
        let scan_block = |block: &minihdfs::BlockRef| -> Vec<Row> {
            block
                .lines()
                .filter_map(|l| Row::from_line(l, geom_col))
                .collect()
        };
        let (block_rows, scan_timings) = if self.chaos.is_disabled() {
            cluster::run_tasks(blocks, self.conf.threads, ScheduleMode::Static, |block| {
                scan_block(block)
            })
        } else {
            // Fail-fast: any scan task dying aborts the query; Impala
            // fixes the plan before execution and cannot reschedule.
            let run = cluster::run_tasks_faulted(
                &blocks,
                self.conf.threads,
                ScheduleMode::Static,
                RetryPolicy::none(),
                |i, attempt, block| {
                    let rows = scan_block(block);
                    self.chaos.inject(ChaosSite::Fragment, i as u64, attempt);
                    rows
                },
            );
            obs::add_thread(&run.exec.worker_counters);
            if !run.failures.is_empty() {
                return Err(fragment_failed("scan", &run.failures));
            }
            let timings = run.timings;
            let rows: Vec<Vec<Row>> = run.results.into_iter().flatten().collect();
            (rows, timings)
        };
        let scan_tasks: Vec<TaskSpec> = scan_timings
            .iter()
            .map(|t| TaskSpec {
                cost: t.secs,
                locality: localities[t.index].map(|n| n % self.conf.cluster.num_nodes),
            })
            .collect();

        // Batch rows per block, then statically chunk every batch over
        // the node's cores — the OpenMP `schedule(static)` the paper was
        // forced into by GEOS thread-safety.
        let cores = self.conf.cluster.cores_per_node.max(1);
        let mut chunks: Vec<(Vec<Row>, Option<usize>)> = Vec::new();
        let mut chunk_batch: Vec<usize> = Vec::new();
        let mut batch_localities: Vec<Option<usize>> = Vec::new();
        for (rows, locality) in block_rows.into_iter().zip(&localities) {
            for batch in RowBatch::batches_from(rows) {
                let batch_id = batch_localities.len();
                batch_localities.push(*locality);
                let n = batch.len();
                let mut iter = batch.rows.into_iter();
                for c in 0..cores {
                    let start = (c * n) / cores;
                    let end = ((c + 1) * n) / cores;
                    if end > start {
                        chunks.push((iter.by_ref().take(end - start).collect(), *locality));
                        chunk_batch.push(batch_id);
                    }
                }
            }
        }

        obs::row_batches(batch_localities.len() as u64);

        // --- Probe: static chunking, naive (GEOS-like) refinement.
        // Each chunk is one morsel handed to the shared morsel driver;
        // the WKT parse stays inside the probe so chunk costs keep the
        // parse-per-row semantics the cost model was calibrated on. ---
        let chunk_slices: Vec<&[Row]> = chunks.iter().map(|(rows, _)| rows.as_slice()).collect();
        let probe_chunk = |rows: &[Row], out: &mut Vec<(i64, i64)>| {
            for row in rows {
                let Ok(g) = geom::wkt::parse(&row.wkt) else {
                    continue;
                };
                let Some(p) = g.as_point() else { continue };
                // Entry envelopes were expanded by the radius at
                // build time; query with radius zero.
                rtree::probe_with(
                    &tree,
                    predicate,
                    &engine,
                    row.id,
                    p,
                    |(rid, t)| (*rid, t),
                    out,
                );
            }
        };
        let (pairs_flat, probe_timings) = if self.chaos.is_disabled() {
            cluster::run_morsels(
                &chunk_slices,
                self.conf.threads,
                ScheduleMode::Static,
                probe_chunk,
            )
        } else {
            // Offset the index space so probe chunks draw faults
            // independently of scan tasks under the same seed.
            let run = cluster::run_morsels_faulted(
                &chunk_slices,
                &[],
                self.conf.threads,
                ScheduleMode::Static,
                RetryPolicy::none(),
                |i, attempt, rows, out| {
                    probe_chunk(rows, out);
                    self.chaos
                        .inject(ChaosSite::Fragment, (1u64 << 32) | i as u64, attempt);
                },
            );
            obs::add_thread(&run.exec.worker_counters);
            if !run.failures.is_empty() {
                // The rolled-back output in `run.out` is dropped here —
                // a failed query never surfaces partial pairs.
                return Err(fragment_failed("probe", &run.failures));
            }
            (run.out, run.timings)
        };
        let mut probe_batches: Vec<ProbeBatch> = batch_localities
            .iter()
            .map(|&locality| ProbeBatch {
                locality: locality.map(|n| n % self.conf.cluster.num_nodes),
                chunk_costs: Vec::with_capacity(cores),
            })
            .collect();
        for t in &probe_timings {
            probe_batches[chunk_batch[t.index]].chunk_costs.push(t.secs);
        }

        let mut pairs: Vec<(i64, i64)> = pairs_flat;
        if plan.group_count {
            // Hash aggregation at the coordinator: (right id, count).
            let mut counts: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
            for &(_, rid) in &pairs {
                *counts.entry(rid).or_insert(0) += 1;
            }
            pairs = counts.into_iter().collect();
            pairs.sort_unstable();
        }
        let result_rows = pairs.len();
        Ok(QueryResult {
            pairs,
            metrics: QueryMetrics {
                scan_tasks,
                build_secs,
                broadcast_bytes: right_stat.total_bytes as u64,
                probe_batches,
                chunks_per_batch: cores,
                result_rows,
            },
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;

    /// Points on a 10×10 integer grid; polygons = four 5×5 quadrant
    /// boxes, so every point matches exactly one polygon (boundary
    /// points may match more).
    fn fixture() -> (MiniDfs, Catalog) {
        let dfs = MiniDfs::new(4, 512).unwrap();
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(format!(
                    "{}\tPOINT ({} {})",
                    i * 10 + j,
                    i as f64 + 0.5,
                    j as f64 + 0.5
                ));
            }
        }
        dfs.write_lines("/pnt", &pts).unwrap();
        let polys = vec![
            "0\tPOLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))".to_string(),
            "1\tPOLYGON ((5 0, 10 0, 10 5, 5 5, 5 0))".to_string(),
            "2\tPOLYGON ((0 5, 5 5, 5 10, 0 10, 0 5))".to_string(),
            "3\tPOLYGON ((5 5, 10 5, 10 10, 5 10, 5 5))".to_string(),
        ];
        dfs.write_lines("/poly", &polys).unwrap();
        let mut catalog = Catalog::new();
        catalog.register(TableDef::id_geom("pnt", "/pnt"));
        catalog.register(TableDef::id_geom("poly", "/poly"));
        (dfs, catalog)
    }

    fn daemon() -> Impalad {
        let (dfs, catalog) = fixture();
        Impalad::new(ImpaladConf::default(), dfs, catalog)
    }

    #[test]
    fn within_join_end_to_end() {
        let d = daemon();
        let result = d
            .execute(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        // Interior points: each matches exactly one quadrant.
        assert_eq!(result.pairs.len(), 100);
        // Spot-check: point (0.5, 0.5), id 0, is in polygon 0.
        assert!(result.pairs.contains(&(0, 0)));
        // Point (5.5, 5.5) has id 55 and sits in polygon 3.
        assert!(result.pairs.contains(&(55, 3)));
        assert_eq!(result.metrics.result_rows, 100);
        assert!(result.metrics.build_secs > 0.0);
        assert!(result.metrics.broadcast_bytes > 0);
        assert!(!result.metrics.probe_batches.is_empty());
    }

    #[test]
    fn nearestd_join_end_to_end() {
        let (dfs, mut catalog) = fixture();
        dfs.write_lines(
            "/roads",
            ["0\tLINESTRING (0 0, 10 0)", "1\tLINESTRING (0 9, 10 9)"],
        )
        .unwrap();
        catalog.register(TableDef::id_geom("roads", "/roads"));
        let d = Impalad::new(ImpaladConf::default(), dfs, catalog);
        let result = d
            .execute(
                "SELECT pnt.id, roads.id FROM pnt SPATIAL JOIN roads \
                 WHERE ST_NearestD (pnt.geom, roads.geom, 0.6)",
            )
            .unwrap();
        // Points at y = 0.5 are 0.5 from road 0; y = 8.5 and 9.5 are
        // 0.5 from road 1. That's 10 + 20 = 30 matches.
        assert_eq!(result.pairs.len(), 30);
        assert!(result.pairs.iter().all(|&(_, rid)| rid == 0 || rid == 1));
    }

    #[test]
    fn simulate_runtime_shape() {
        let d = daemon();
        let result = d
            .execute(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        let standalone = result.metrics.simulate_standalone(d.conf());
        let one_node = result.metrics.simulate_runtime(d.conf(), 1);
        assert!(
            one_node > standalone,
            "engine machinery must cost something: {one_node} vs {standalone}"
        );
    }

    #[test]
    fn bad_rows_are_skipped_not_fatal() {
        let dfs = MiniDfs::new(2, 512).unwrap();
        dfs.write_lines(
            "/pnt",
            [
                "0\tPOINT (1 1)",
                "garbage line",
                "1\tNOT_WKT (2 2)",
                "2\tPOINT (3 3)",
            ],
        )
        .unwrap();
        dfs.write_lines("/poly", ["0\tPOLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"])
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(TableDef::id_geom("pnt", "/pnt"));
        catalog.register(TableDef::id_geom("poly", "/poly"));
        let d = Impalad::new(ImpaladConf::default(), dfs, catalog);
        let result = d
            .execute(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        assert_eq!(result.pairs, vec![(0, 0), (2, 0)]);
    }

    #[test]
    fn explain_plans_without_executing() {
        let d = daemon();
        let text = d
            .explain(
                "EXPLAIN SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        assert!(text.contains("SPATIAL_JOIN"));
        // execute() on an EXPLAIN statement returns no rows but a plan.
        let result = d
            .execute(
                "EXPLAIN SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        assert!(result.pairs.is_empty());
        assert!(result.plan.explain().contains("SPATIAL_JOIN"));
        assert!(d.explain("EXPLAIN SELECT broken").is_err());
    }

    #[test]
    fn count_group_by_aggregates() {
        let d = daemon();
        let result = d
            .execute(
                "SELECT poly.id, COUNT(*) FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom) GROUP BY poly.id",
            )
            .unwrap();
        // Four quadrants x 25 interior points each.
        assert_eq!(result.pairs, vec![(0, 25), (1, 25), (2, 25), (3, 25)]);
        assert!(result.plan.explain().contains("AGGREGATE"));
        // Malformed aggregates are rejected.
        assert!(
            d.execute(
                "SELECT poly.id, COUNT(*) FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)"
            )
            .is_err(),
            "missing GROUP BY"
        );
        assert!(
            d.execute(
                "SELECT pnt.id, COUNT(*) FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom) GROUP BY pnt.id"
            )
            .is_err(),
            "grouping by the probe side is unsupported"
        );
    }

    #[test]
    fn run_stats_carry_fragment_structure() {
        let d = daemon();
        let before = obs::thread_snapshot();
        let result = d
            .execute(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        // The hot-path counters land in this thread's cells (the pool
        // wrappers fold worker counts back into the caller).
        let delta = obs::thread_snapshot().minus(&before);
        assert!(delta.row_batches >= 1);
        assert!(delta.refine_calls >= result.pairs.len() as u64);
        let stats = result.metrics.to_run_stats();
        assert_eq!(stats.name, "ispmc");
        assert!(stats.child("probe").unwrap().counters.row_batches >= 1);
        assert!(stats.child("build").unwrap().span("rtree").is_some());
        assert!(stats.total_counters().bytes_broadcast > 0);
    }

    /// Suppresses panic-hook output while injected panics fly.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    fn daemon_with_chaos(chaos: ChaosConfig) -> Impalad {
        let (dfs, catalog) = fixture();
        let conf = ImpaladConf {
            chaos,
            ..ImpaladConf::default()
        };
        Impalad::new(conf, dfs, catalog)
    }

    const JOIN_SQL: &str = "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
         WHERE ST_WITHIN (pnt.geom, poly.geom)";

    #[test]
    fn chaos_at_rate_zero_is_bit_identical() {
        let baseline = daemon().execute(JOIN_SQL).unwrap();
        // A seeded but all-zero-rate config must take the exact same
        // path: same pairs in the same order, no faults recorded.
        let d = daemon_with_chaos(ChaosConfig {
            seed: 99,
            ..ChaosConfig::disabled()
        });
        let result = d.execute(JOIN_SQL).unwrap();
        assert_eq!(result.pairs, baseline.pairs);
        assert_eq!(d.chaos().fault_count(), 0);
    }

    #[test]
    fn fragment_failure_fails_fast_with_no_partial_rows() {
        let d = daemon_with_chaos(ChaosConfig {
            panic_rate: 1.0,
            ..ChaosConfig::uniform(7, 0.0)
        });
        let err = quiet_panics(|| d.execute(JOIN_SQL)).unwrap_err();
        // Every fragment attempt dies; the query aborts cleanly with a
        // typed error and surfaces zero result rows anywhere.
        match err {
            ImpalaError::FragmentFailed { fragment, .. } => {
                assert_eq!(fragment, "scan", "first fragment to die is the scan");
            }
            other => panic!("expected FragmentFailed, got {other:?}"),
        }
        assert!(d.chaos().fault_count() > 0);
    }

    #[test]
    fn persistent_transient_read_faults_abort_the_query() {
        let d = daemon_with_chaos(ChaosConfig {
            transient_read_rate: 1.0,
            ..ChaosConfig::uniform(3, 0.0)
        });
        let err = d.execute(JOIN_SQL).unwrap_err();
        assert!(matches!(
            err,
            ImpalaError::FragmentFailed { ref fragment, .. } if fragment == "read"
        ));
    }

    #[test]
    fn recovered_transient_read_is_bit_identical() {
        let baseline = daemon().execute(JOIN_SQL).unwrap();
        // Find a seed whose read faults all clear within the retry
        // budget (and fire at least once), then prove the retried run
        // returns the exact same pairs.
        let rate = 0.6;
        let seed = (0..10_000u64)
            .find(|&s| {
                let probe = Chaos::new(ChaosConfig {
                    transient_read_rate: rate,
                    ..ChaosConfig::uniform(s, 0.0)
                });
                let fired = (0..2).any(|id| probe.read_fault_fires(id, 0));
                let recovers =
                    (0..2).all(|id| (0..MAX_READ_ATTEMPTS).any(|a| !probe.read_fault_fires(id, a)));
                fired && recovers
            })
            .expect("some seed recovers");
        let d = daemon_with_chaos(ChaosConfig {
            transient_read_rate: rate,
            ..ChaosConfig::uniform(seed, 0.0)
        });
        let result = d.execute(JOIN_SQL).unwrap();
        assert_eq!(result.pairs, baseline.pairs);
        assert!(d.chaos().fault_count() > 0, "a read fault must have fired");
    }

    #[test]
    fn plan_is_attached_to_result() {
        let d = daemon();
        let result = d
            .execute(
                "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                 WHERE ST_WITHIN (pnt.geom, poly.geom)",
            )
            .unwrap();
        assert!(result.plan.explain().contains("SPATIAL_JOIN"));
    }
}
