//! # impalite — a SQL row-batch query engine
//!
//! A from-scratch stand-in for Cloudera Impala with the architecture the
//! paper's ISP-MC plugs into (§IV):
//!
//! * a **frontend** ([`sql`]) that parses the paper's SQL dialect —
//!   including the `SPATIAL JOIN` keyword extension and the
//!   `ST_WITHIN` / `ST_NearestD` predicates of Fig. 1 — against a
//!   [`catalog::Catalog`] of HDFS-backed tables;
//! * a **planner** ([`plan`]) that lowers the query to a physical plan:
//!   an AST of plan nodes (HDFS scans, a broadcast exchange for the
//!   right side, the `SpatialJoin` node, a sink) grouped into plan
//!   fragments, fixed before execution starts — Impala "makes the
//!   execution plan at the frontend … no changes on the plan are made
//!   after the plan starts to execute";
//! * a **backend** ([`exec`]) that scans the left table as row batches,
//!   builds an in-memory R-tree from the broadcast right side, probes it
//!   batch by batch with *static OpenMP-style chunking* across cores,
//!   and refines candidate pairs with the GEOS-like
//!   [`geom::engine::NaiveEngine`];
//! * recorded metrics that replay the query on any cluster size under
//!   Impala's **static scheduling** (scan ranges pinned to the node
//!   holding the block).
//!
//! A `standalone` mode runs the same join logic without the engine
//! machinery, reproducing the ISP-MC-standalone column of Table 1.

pub mod catalog;
pub mod error;
pub mod exec;
pub mod plan;
pub mod row;
pub mod sql;

pub use catalog::{Catalog, TableDef};
pub use error::ImpalaError;
/// The error a failed query surfaces — every fragment failure under
/// fault injection aborts with one of these (fail-fast, §III).
pub use error::ImpalaError as QueryError;
pub use exec::{Impalad, ImpaladConf, QueryMetrics, QueryResult};
pub use plan::{ExchangeMode, PhysicalPlan, PlanNode};
pub use sql::{parse_query, Query};
