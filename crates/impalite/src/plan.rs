//! Query planning: the physical plan AST and its fragments.
//!
//! Impala's physical execution plan "is represented as an Abstract
//! Syntax Tree (AST) where each node corresponds to an action, e.g.,
//! reading data from HDFS, evaluating a … clause or exchanging data
//! among multiple distributed Impala instances. Multiple AST nodes can
//! be grouped as a plan fragment" (§IV). ISP-MC inserts a `SpatialJoin`
//! node, a subclass of BlockJoin, with the right side broadcast to all
//! instances.

use geom::engine::SpatialPredicate;

use crate::catalog::Catalog;
use crate::error::ImpalaError;
use crate::sql::Query;

/// How an exchange node moves row batches between instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Every batch goes to all instances (the spatial join's right side).
    Broadcast,
    /// Batches are hashed to one instance (unused by this join but part
    /// of the engine model).
    Partition,
}

/// One node of the physical plan AST.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan a table's HDFS blocks; scan ranges are assigned to the
    /// instance co-located with each block.
    HdfsScan { table: String, path: String },
    /// Move the child's output between instances.
    Exchange {
        mode: ExchangeMode,
        input: Box<PlanNode>,
    },
    /// The ISP-MC spatial join: build an R-tree from the (broadcast)
    /// right child, probe with the left child's row batches.
    SpatialJoin {
        predicate: SpatialPredicate,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Hash aggregation: `COUNT(*) GROUP BY` the right-side id.
    Aggregate { input: Box<PlanNode> },
    /// Return rows to the coordinator.
    Sink { input: Box<PlanNode> },
}

impl PlanNode {
    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::HdfsScan { table, path } => {
                out.push_str(&format!("{pad}HDFS_SCAN {table} [{path}]\n"));
            }
            PlanNode::Exchange { mode, input } => {
                out.push_str(&format!("{pad}EXCHANGE {mode:?}\n"));
                input.render(indent + 1, out);
            }
            PlanNode::SpatialJoin {
                predicate,
                left,
                right,
            } => {
                out.push_str(&format!("{pad}SPATIAL_JOIN {predicate:?}\n"));
                left.render(indent + 1, out);
                right.render(indent + 1, out);
            }
            PlanNode::Aggregate { input } => {
                out.push_str(&format!("{pad}AGGREGATE count(*) group by right.id\n"));
                input.render(indent + 1, out);
            }
            PlanNode::Sink { input } => {
                out.push_str(&format!("{pad}SINK\n"));
                input.render(indent + 1, out);
            }
        }
    }
}

/// A plan fragment: a subtree executed by a set of instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    pub id: usize,
    pub description: String,
    pub root: PlanNode,
}

/// The full physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    pub fragments: Vec<Fragment>,
    pub predicate: SpatialPredicate,
    /// True for `COUNT(*) GROUP BY` queries.
    pub group_count: bool,
    pub left_path: String,
    pub right_path: String,
    pub left_geom_col: usize,
    pub right_geom_col: usize,
}

impl PhysicalPlan {
    /// `EXPLAIN`-style rendering of the plan.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for f in &self.fragments {
            out.push_str(&format!("F{:02} ({}):\n", f.id, f.description));
            f.root.render(1, &mut out);
        }
        out
    }
}

/// Lowers a parsed query to the two-fragment broadcast spatial join plan
/// after resolving tables against the catalog (Impala's
/// frontend-consults-metastore step).
///
/// # Errors
/// Fails when a referenced table is not registered.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<PhysicalPlan, ImpalaError> {
    let left = catalog.resolve(&query.left_table)?;
    let right = catalog.resolve(&query.right_table)?;

    let right_scan = PlanNode::HdfsScan {
        table: right.name.clone(),
        path: right.path.clone(),
    };
    let broadcast = PlanNode::Exchange {
        mode: ExchangeMode::Broadcast,
        input: Box::new(right_scan.clone()),
    };
    let left_scan = PlanNode::HdfsScan {
        table: left.name.clone(),
        path: left.path.clone(),
    };
    let join = PlanNode::SpatialJoin {
        predicate: query.predicate,
        left: Box::new(left_scan),
        right: Box::new(broadcast),
    };
    let join_or_agg = if query.group_count {
        PlanNode::Aggregate {
            input: Box::new(join),
        }
    } else {
        join
    };
    let sink = PlanNode::Sink {
        input: Box::new(join_or_agg),
    };

    Ok(PhysicalPlan {
        fragments: vec![
            Fragment {
                id: 0,
                description: format!("scan {} and broadcast", right.name),
                root: right_scan,
            },
            Fragment {
                id: 1,
                description: format!(
                    "scan {}, build R-tree from broadcast, probe, sink",
                    left.name
                ),
                root: sink,
            },
        ],
        predicate: query.predicate,
        group_count: query.group_count,
        left_path: left.path.clone(),
        right_path: right.path.clone(),
        left_geom_col: left.geom_col,
        right_geom_col: right.geom_col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(TableDef::id_geom("pnt", "/data/pnt"));
        c.register(TableDef::id_geom("poly", "/data/poly"));
        c
    }

    #[test]
    fn plans_the_fig1_query() {
        let q = parse_query(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_WITHIN (pnt.geom, poly.geom)",
        )
        .unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        assert_eq!(plan.fragments.len(), 2);
        assert_eq!(plan.left_path, "/data/pnt");
        assert_eq!(plan.right_path, "/data/poly");
        let explain = plan.explain();
        assert!(explain.contains("SPATIAL_JOIN Within"));
        assert!(explain.contains("EXCHANGE Broadcast"));
        assert!(explain.contains("HDFS_SCAN pnt"));
        assert!(explain.contains("SINK"));
    }

    #[test]
    fn unknown_table_fails_at_planning() {
        let q = parse_query(
            "SELECT a.id, poly.id FROM a SPATIAL JOIN poly \
             WHERE ST_WITHIN (a.geom, poly.geom)",
        )
        .unwrap();
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(ImpalaError::UnknownTable(_))
        ));
    }

    #[test]
    fn nearestd_predicate_reaches_the_plan() {
        let q = parse_query(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_NearestD (pnt.geom, poly.geom, 100)",
        )
        .unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        assert_eq!(plan.predicate, SpatialPredicate::NearestD(100.0));
    }
}
