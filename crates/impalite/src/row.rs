//! Rows and row batches.
//!
//! "Tuples are sent, received and processed in row batches" (§IV); the
//! batch is the unit the backend pulls through operators and the unit
//! whose rows are statically chunked across cores during the join.

/// Rows per batch — Impala's default.
pub const BATCH_SIZE: usize = 1024;

/// One tuple: a record id plus the geometry column kept as a WKT string
/// (the paper's systems "represent geometry as strings" and parse on
/// use).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub id: i64,
    pub wkt: String,
}

impl Row {
    /// Parses a tab-separated text record: `id \t wkt [\t ...]`.
    /// Returns `None` for malformed records (both systems in the paper
    /// silently drop unparsable rows).
    pub fn from_line(line: &str, geom_col: usize) -> Option<Row> {
        let mut cols = line.split('\t');
        let id = cols.next()?.trim().parse::<i64>().ok()?;
        let wkt = if geom_col == 0 {
            return None; // column 0 is the id by convention
        } else {
            line.split('\t').nth(geom_col)?
        };
        Some(Row {
            id,
            wkt: wkt.to_string(),
        })
    }
}

/// A batch of rows.
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    pub rows: Vec<Row>,
}

impl RowBatch {
    /// Splits an iterator of rows into batches of [`BATCH_SIZE`].
    pub fn batches_from<I: IntoIterator<Item = Row>>(rows: I) -> Vec<RowBatch> {
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(BATCH_SIZE);
        for row in rows {
            current.push(row);
            if current.len() == BATCH_SIZE {
                out.push(RowBatch {
                    rows: std::mem::replace(&mut current, Vec::with_capacity(BATCH_SIZE)),
                });
            }
        }
        if !current.is_empty() {
            out.push(RowBatch { rows: current });
        }
        out
    }

    /// Number of rows in this batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tab_separated_records() {
        let r = Row::from_line("42\tPOINT (1 2)", 1).unwrap();
        assert_eq!(r.id, 42);
        assert_eq!(r.wkt, "POINT (1 2)");
        // Extra columns are fine; geometry can sit anywhere but 0.
        let r2 = Row::from_line("7\tfoo\tPOINT (3 4)", 2).unwrap();
        assert_eq!(r2.wkt, "POINT (3 4)");
    }

    #[test]
    fn malformed_records_are_dropped() {
        assert!(Row::from_line("notanid\tPOINT (1 2)", 1).is_none());
        assert!(Row::from_line("42", 1).is_none());
        assert!(Row::from_line("42\tPOINT (1 2)", 0).is_none());
        assert!(Row::from_line("", 1).is_none());
    }

    #[test]
    fn batching_respects_batch_size() {
        let rows: Vec<Row> = (0..(BATCH_SIZE * 2 + 10) as i64)
            .map(|id| Row {
                id,
                wkt: String::new(),
            })
            .collect();
        let batches = RowBatch::batches_from(rows);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), BATCH_SIZE);
        assert_eq!(batches[2].len(), 10);
        assert!(!batches[2].is_empty());
        assert!(RowBatch::batches_from(Vec::new()).is_empty());
    }
}
