//! SQL frontend: tokenizer and parser for the paper's dialect.
//!
//! The grammar covers exactly the two statements of the paper's Fig. 1
//! (plus optional table aliases and a trailing semicolon):
//!
//! ```sql
//! SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly
//!   WHERE ST_WITHIN (pnt.geom, poly.geom)
//!
//! SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly
//!   WHERE ST_NearestD (pnt.geom, poly.geom, 5000)
//! ```
//!
//! `SPATIAL JOIN` is the keyword ISP-MC adds to the Impala frontend
//! (§IV: "we first add 'SpatialJoin' key word to the Impala frontend").

use geom::engine::SpatialPredicate;

use crate::error::ImpalaError;

/// A `table.column` reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

/// A parsed spatial-join query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected columns (the dialect requires exactly two, or one
    /// plus `COUNT(*)` for aggregates).
    pub select: Vec<ColRef>,
    /// True for `SELECT r.id, COUNT(*) … GROUP BY r.id` queries.
    pub group_count: bool,
    /// Left (probe/point) table name.
    pub left_table: String,
    /// Alias used for the left table in the statement.
    pub left_alias: String,
    /// Right (build/broadcast) table name.
    pub right_table: String,
    /// Alias used for the right table.
    pub right_alias: String,
    /// The join predicate.
    pub predicate: SpatialPredicate,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Semicolon,
}

fn tokenize(sql: &str) -> Result<Vec<Token>, ImpalaError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E')
                {
                    i += 1;
                }
                let text = &sql[start..i];
                let value = text.parse::<f64>().map_err(|_| ImpalaError::Sql {
                    message: format!("malformed number '{text}'"),
                    position: tokens.len(),
                })?;
                tokens.push(Token::Number(value));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(ImpalaError::Sql {
                    message: format!("unexpected character '{}'", other as char),
                    position: tokens.len(),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ImpalaError {
        ImpalaError::Sql {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ImpalaError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), ImpalaError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => Err(self.err(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ImpalaError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ImpalaError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, ImpalaError> {
        let table = self.ident()?;
        self.expect_token(Token::Dot)?;
        let column = self.ident()?;
        Ok(ColRef { table, column })
    }

    /// `table [alias]` — an alias is any identifier that is not one of
    /// the clause keywords.
    fn table_with_alias(&mut self) -> Result<(String, String), ImpalaError> {
        let table = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["SPATIAL", "JOIN", "WHERE"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw)) =>
            {
                let a = s.clone();
                self.pos += 1;
                a
            }
            _ => table.clone(),
        };
        Ok((table, alias))
    }
}

/// Parses one spatial-join statement.
///
/// # Errors
/// Returns [`ImpalaError::Sql`] on malformed input, including predicate
/// arguments that do not reference the joined tables in `(left, right)`
/// order.
pub fn parse_query(sql: &str) -> Result<Query, ImpalaError> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let first = p.col_ref()?;
    p.expect_token(Token::Comma)?;
    // Second projection: a column, or COUNT(*).
    let (second, group_count) = match p.peek() {
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("COUNT") => {
            p.pos += 1;
            p.expect_token(Token::LParen)?;
            p.expect_token(Token::Star)?;
            p.expect_token(Token::RParen)?;
            (None, true)
        }
        _ => (Some(p.col_ref()?), false),
    };
    p.expect_keyword("FROM")?;
    let (left_table, left_alias) = p.table_with_alias()?;
    p.expect_keyword("SPATIAL")?;
    p.expect_keyword("JOIN")?;
    let (right_table, right_alias) = p.table_with_alias()?;
    p.expect_keyword("WHERE")?;

    let func = p.ident()?;
    let predicate = if func.eq_ignore_ascii_case("ST_WITHIN") {
        p.expect_token(Token::LParen)?;
        let a = p.col_ref()?;
        p.expect_token(Token::Comma)?;
        let b = p.col_ref()?;
        p.expect_token(Token::RParen)?;
        check_sides(&p, &a, &b, &left_alias, &right_alias)?;
        SpatialPredicate::Within
    } else if func.eq_ignore_ascii_case("ST_NEARESTD") || func.eq_ignore_ascii_case("ST_NEAREST") {
        let nearest_one = func.eq_ignore_ascii_case("ST_NEAREST");
        p.expect_token(Token::LParen)?;
        let a = p.col_ref()?;
        p.expect_token(Token::Comma)?;
        let b = p.col_ref()?;
        p.expect_token(Token::Comma)?;
        let d = p.number()?;
        p.expect_token(Token::RParen)?;
        check_sides(&p, &a, &b, &left_alias, &right_alias)?;
        if d < 0.0 {
            return Err(p.err("ST_NearestD distance must be non-negative"));
        }
        if nearest_one {
            SpatialPredicate::Nearest(d)
        } else {
            SpatialPredicate::NearestD(d)
        }
    } else {
        return Err(p.err(format!("unknown spatial predicate {func}")));
    };

    // Optional GROUP BY for aggregate queries.
    if group_count {
        p.expect_keyword("GROUP")?;
        p.expect_keyword("BY")?;
        let g = p.col_ref()?;
        if g != first {
            return Err(p.err(format!(
                "GROUP BY column must match the projected column {}.{}",
                first.table, first.column
            )));
        }
    }

    // Optional trailing semicolon, then end of input.
    if p.peek() == Some(&Token::Semicolon) {
        p.pos += 1;
    }
    if p.peek().is_some() {
        return Err(p.err("trailing tokens after statement"));
    }

    // Validate the projection aliases.
    let mut select = vec![first];
    if let Some(second) = second {
        select.push(second);
    }
    for c in &select {
        if c.table != left_alias && c.table != right_alias {
            return Err(ImpalaError::UnknownAlias(c.table.clone()));
        }
    }
    if group_count && select[0].table != right_alias {
        return Err(ImpalaError::UnknownAlias(format!(
            "GROUP BY must reference the right (build) table, got {}",
            select[0].table
        )));
    }

    Ok(Query {
        select,
        left_table,
        left_alias,
        right_table,
        right_alias,
        predicate,
        group_count,
    })
}

fn check_sides(
    p: &Parser,
    a: &ColRef,
    b: &ColRef,
    left_alias: &str,
    right_alias: &str,
) -> Result<(), ImpalaError> {
    if a.table != left_alias || b.table != right_alias {
        return Err(p.err(format!(
            "predicate arguments must be ({left_alias}.geom, {right_alias}.geom)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_within() {
        let q = parse_query(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_WITHIN (pnt.geom, poly.geom)",
        )
        .unwrap();
        assert_eq!(q.left_table, "pnt");
        assert_eq!(q.right_table, "poly");
        assert_eq!(q.predicate, SpatialPredicate::Within);
        assert_eq!(q.select[0].column, "id");
    }

    #[test]
    fn parses_fig1_nearestd() {
        let q = parse_query(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_NearestD (pnt.geom, poly.geom, 5000);",
        )
        .unwrap();
        assert_eq!(q.predicate, SpatialPredicate::NearestD(5000.0));
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        let q = parse_query(
            "select t.id, b.id from taxi t spatial join nycb b \
             where st_within (t.geom, b.geom)",
        )
        .unwrap();
        assert_eq!(q.left_table, "taxi");
        assert_eq!(q.left_alias, "t");
        assert_eq!(q.right_alias, "b");
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_query("SELECT x FROM t").is_err());
        assert!(parse_query(
            "SELECT a.id, b.id FROM a SPATIAL JOIN b WHERE ST_TOUCHES (a.geom, b.geom)"
        )
        .is_err());
        assert!(
            parse_query("SELECT a.id, b.id FROM a SPATIAL JOIN b WHERE ST_WITHIN (b.geom, a.geom)")
                .is_err(),
            "swapped predicate sides must be rejected"
        );
        assert!(parse_query(
            "SELECT a.id, b.id FROM a SPATIAL JOIN b WHERE ST_NearestD (a.geom, b.geom, -5)"
        )
        .is_err());
        assert!(
            parse_query("SELECT c.id, b.id FROM a SPATIAL JOIN b WHERE ST_WITHIN (a.geom, b.geom)")
                .is_err(),
            "unknown projection alias"
        );
        assert!(parse_query(
            "SELECT a.id, b.id FROM a SPATIAL JOIN b WHERE ST_WITHIN (a.geom, b.geom) extra"
        )
        .is_err());
    }

    #[test]
    fn tokenizer_rejects_garbage() {
        assert!(parse_query("SELECT @ FROM x").is_err());
    }

    #[test]
    fn scientific_distance() {
        let q = parse_query(
            "SELECT a.id, b.id FROM a SPATIAL JOIN b WHERE ST_NearestD (a.geom, b.geom, 1.5e2)",
        )
        .unwrap();
        assert_eq!(q.predicate, SpatialPredicate::NearestD(150.0));
    }
}
