//! Cheap-to-clone immutable byte buffers for block payloads.
//!
//! A minimal in-tree replacement for the `bytes` crate: block payloads
//! are written once and then shared read-only between the namenode map
//! and every reader handle, so an `Arc<[u8]>` with slicing-free
//! semantics is all the file system needs.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.into() }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(String::from("hello\n"));
        assert_eq!(b.len(), 6);
        assert!(!b.is_empty());
        assert!(b.ends_with(b"\n")); // via Deref to [u8]
        assert_eq!(b.as_slice(), b"hello\n");
        assert_eq!(b, Bytes::from(b"hello\n".as_slice()));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
        assert_eq!(format!("{:?}", Bytes::new()), "Bytes(0 bytes)");
    }
}
