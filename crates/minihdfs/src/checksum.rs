//! Block checksums — the HDFS `DataChecksum` analogue.
//!
//! Real HDFS writes a CRC per 512-byte chunk into `.meta` sidecar
//! files and verifies on every read, failing over to another replica
//! on a mismatch. This module provides the same guarantee one level
//! coarser: one IEEE CRC-32 per block, computed by `write_lines` and
//! re-verified by every block read.

/// The reflected IEEE polynomial, as used by HDFS, zlib and ethernet.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let clean = b"some block payload\n".to_vec();
        let base = crc32(&clean);
        for i in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
