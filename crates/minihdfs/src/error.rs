//! Error types for the mini file system.

use std::fmt;

/// Errors returned by [`crate::MiniDfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The requested path does not exist.
    NotFound(String),
    /// A file already exists at the path (writes never overwrite).
    AlreadyExists(String),
    /// Invalid configuration (zero datanodes, zero block size, …).
    InvalidConfig(String),
    /// Every replica of a block failed checksum verification — the
    /// data is unrecoverable. Reads fail over silently while at least
    /// one replica still verifies.
    CorruptBlock {
        /// Path of the file holding the corrupt block.
        path: String,
        /// Index of the block within the file.
        block: usize,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "no such file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            DfsError::InvalidConfig(msg) => write!(f, "invalid DFS configuration: {msg}"),
            DfsError::CorruptBlock { path, block } => write!(
                f,
                "block {block} of {path}: all replicas failed checksum verification"
            ),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            DfsError::NotFound("/a".into()).to_string(),
            "no such file: /a"
        );
        assert!(DfsError::AlreadyExists("/b".into())
            .to_string()
            .contains("/b"));
        assert!(DfsError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }
}
