//! The in-memory file system: namenode metadata + block storage.

use std::collections::BTreeMap;
use std::sync::Arc;

use sync::RwLock;

use crate::bytes::Bytes;
use crate::checksum::crc32;
use crate::error::DfsError;

/// One stored block: payload plus placement plus integrity metadata.
#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    /// Datanodes holding a replica; the first is the primary.
    replicas: Vec<usize>,
    num_records: usize,
    /// CRC-32 of the payload, written once by `write_lines` and
    /// verified against each replica's bytes on every read.
    checksum: u32,
    /// Per-replica payload override: `None` serves the shared clean
    /// `data`; `Some` holds bytes that diverged from it (planted by
    /// [`MiniDfs::corrupt_replica`]) and will fail verification.
    replica_data: Vec<Option<Bytes>>,
}

impl Block {
    /// The bytes replica slot `r` would serve.
    fn replica_payload(&self, r: usize) -> &Bytes {
        match self.replica_data.get(r).and_then(|d| d.as_ref()) {
            Some(bytes) => bytes,
            None => &self.data,
        }
    }
}

#[derive(Debug, Clone)]
struct File {
    blocks: Vec<Block>,
    total_bytes: usize,
    total_records: usize,
}

/// A lightweight handle describing one block of a file, as returned to
/// readers. Cloning is cheap ([`Bytes`] is reference counted).
#[derive(Debug, Clone)]
pub struct BlockRef {
    /// Position of the block within its file.
    pub index: usize,
    /// Datanode holding the primary replica — the locality hint used by
    /// the schedulers.
    pub primary_node: usize,
    /// All datanodes holding a replica.
    pub replicas: Vec<usize>,
    /// The block payload (UTF-8 text, newline-separated records).
    pub data: Bytes,
    /// Number of records (lines) in the block.
    pub num_records: usize,
}

impl BlockRef {
    /// Iterates over the records (lines) of this block.
    ///
    /// Blocks are always valid UTF-8 because `write_lines` produces
    /// them; a corrupted block yields no records rather than panicking.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        std::str::from_utf8(&self.data).unwrap_or_default().lines()
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-byte block (never produced by `write_lines`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// File-level metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    pub path: String,
    pub num_blocks: usize,
    pub total_bytes: usize,
    pub total_records: usize,
}

/// The mini distributed file system.
///
/// Shareable across threads; all methods take `&self`.
#[derive(Debug, Clone)]
pub struct MiniDfs {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    num_datanodes: usize,
    block_size: usize,
    replication: usize,
    files: RwLock<BTreeMap<String, File>>,
    next_block_seq: RwLock<usize>,
}

impl MiniDfs {
    /// Creates a file system over `num_datanodes` simulated datanodes
    /// with the given block size and replication factor 1.
    pub fn new(num_datanodes: usize, block_size: usize) -> Result<MiniDfs, DfsError> {
        Self::with_replication(num_datanodes, block_size, 1)
    }

    /// Creates a file system with an explicit replication factor
    /// (clamped to the number of datanodes).
    pub fn with_replication(
        num_datanodes: usize,
        block_size: usize,
        replication: usize,
    ) -> Result<MiniDfs, DfsError> {
        if num_datanodes == 0 {
            return Err(DfsError::InvalidConfig("need at least one datanode".into()));
        }
        if block_size == 0 {
            return Err(DfsError::InvalidConfig(
                "block size must be positive".into(),
            ));
        }
        if replication == 0 {
            return Err(DfsError::InvalidConfig(
                "replication must be positive".into(),
            ));
        }
        Ok(MiniDfs {
            inner: Arc::new(Inner {
                num_datanodes,
                block_size,
                replication: replication.min(num_datanodes),
                files: RwLock::new(BTreeMap::new()),
                next_block_seq: RwLock::new(0),
            }),
        })
    }

    /// Number of simulated datanodes.
    pub fn num_datanodes(&self) -> usize {
        self.inner.num_datanodes
    }

    /// Configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    /// Writes a text file from an iterator of records (one line each).
    /// Blocks split at line boundaries once `block_size` is reached, so
    /// no record straddles two blocks (records larger than the block
    /// size get a block of their own).
    ///
    /// # Errors
    /// Fails with [`DfsError::AlreadyExists`] when the path is taken.
    pub fn write_lines<I, S>(&self, path: &str, lines: I) -> Result<FileStat, DfsError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        if self.inner.files.read().contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        let mut blocks = Vec::new();
        let mut buf = String::with_capacity(self.inner.block_size + 1024);
        let mut records_in_buf = 0usize;
        let mut total_bytes = 0usize;
        let mut total_records = 0usize;

        let flush = |buf: &mut String, records_in_buf: &mut usize, blocks: &mut Vec<Block>| {
            if buf.is_empty() {
                return;
            }
            let replicas = self.place_block();
            let data = Bytes::from(std::mem::take(buf));
            let checksum = crc32(&data);
            let replica_slots = replicas.len();
            blocks.push(Block {
                data,
                replicas,
                num_records: *records_in_buf,
                checksum,
                replica_data: vec![None; replica_slots],
            });
            *records_in_buf = 0;
        };

        for line in lines {
            let line = line.as_ref();
            buf.push_str(line);
            buf.push('\n');
            records_in_buf += 1;
            total_records += 1;
            total_bytes += line.len() + 1;
            if buf.len() >= self.inner.block_size {
                flush(&mut buf, &mut records_in_buf, &mut blocks);
            }
        }
        flush(&mut buf, &mut records_in_buf, &mut blocks);

        let stat = FileStat {
            path: path.to_string(),
            num_blocks: blocks.len(),
            total_bytes,
            total_records,
        };
        self.inner.files.write().insert(
            path.to_string(),
            File {
                blocks,
                total_bytes,
                total_records,
            },
        );
        Ok(stat)
    }

    /// Round-robin placement over datanodes, with replicas on the
    /// following nodes — the same rack-unaware policy as stock HDFS
    /// without topology information.
    fn place_block(&self) -> Vec<usize> {
        let mut seq = self.inner.next_block_seq.write();
        let primary = *seq % self.inner.num_datanodes;
        *seq += 1;
        (0..self.inner.replication)
            .map(|r| (primary + r) % self.inner.num_datanodes)
            .collect()
    }

    /// True when the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.files.read().contains_key(path)
    }

    /// Deletes a file.
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        self.inner
            .files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Lists all paths, sorted.
    pub fn list(&self) -> Vec<String> {
        self.inner.files.read().keys().cloned().collect()
    }

    /// File metadata.
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths.
    pub fn stat(&self, path: &str) -> Result<FileStat, DfsError> {
        let files = self.inner.files.read();
        let f = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        Ok(FileStat {
            path: path.to_string(),
            num_blocks: f.blocks.len(),
            total_bytes: f.total_bytes,
            total_records: f.total_records,
        })
    }

    /// All blocks of a file with their placement, in file order.
    ///
    /// Every block's payload is verified against its stored CRC-32
    /// before being handed out. A replica that fails verification is
    /// skipped and the read silently fails over to the next one
    /// (counted on `obs::blocks_failed_over`); the returned
    /// [`BlockRef::primary_node`] is the replica that actually served
    /// the read, so locality hints follow the surviving copy.
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths and with
    /// [`DfsError::CorruptBlock`] when *every* replica of some block
    /// fails verification.
    pub fn blocks(&self, path: &str) -> Result<Vec<BlockRef>, DfsError> {
        let files = self.inner.files.read();
        let f = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let mut out = Vec::with_capacity(f.blocks.len());
        for (index, b) in f.blocks.iter().enumerate() {
            let mut served = None;
            for r in 0..b.replicas.len() {
                let payload = b.replica_payload(r);
                if crc32(payload) == b.checksum {
                    served = Some((r, payload.clone()));
                    break;
                }
            }
            let Some((r, data)) = served else {
                return Err(DfsError::CorruptBlock {
                    path: path.to_string(),
                    block: index,
                });
            };
            if r > 0 {
                obs::block_failed_over();
            }
            out.push(BlockRef {
                index,
                primary_node: b.replicas[r],
                replicas: b.replicas.clone(),
                data,
                num_records: b.num_records,
            });
        }
        Ok(out)
    }

    /// Overwrites replica `replica` of block `block` of `path` with a
    /// bit-flipped copy of its payload, so subsequent reads of that
    /// replica fail checksum verification. A test/chaos hook — real
    /// corruption comes from disk, this one comes from the bench
    /// driver, but the read path cannot tell the difference.
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths and with
    /// [`DfsError::InvalidConfig`] for out-of-range block or replica
    /// indices.
    pub fn corrupt_replica(
        &self,
        path: &str,
        block: usize,
        replica: usize,
    ) -> Result<(), DfsError> {
        let mut files = self.inner.files.write();
        let f = files
            .get_mut(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let b = f.blocks.get_mut(block).ok_or_else(|| {
            DfsError::InvalidConfig(format!("block {block} out of range for {path}"))
        })?;
        if replica >= b.replicas.len() {
            return Err(DfsError::InvalidConfig(format!(
                "replica {replica} out of range for block {block} of {path}"
            )));
        }
        // Flip a byte of the *clean* payload, not whatever the replica
        // currently serves: corrupting an already-corrupt replica must
        // leave it corrupt, never accidentally restore it.
        let mut bad: Vec<u8> = b.data.as_slice().to_vec();
        match bad.first_mut() {
            Some(byte) => *byte ^= 0xFF,
            // A zero-byte payload cannot exist (write_lines never
            // flushes an empty buffer), but corrupt it anyway by
            // growing it — the CRC still changes.
            None => bad.push(0xFF),
        }
        b.replica_data[replica] = Some(Bytes::from(bad));
        Ok(())
    }

    /// Corrupts every replica of `block`, making it unrecoverable.
    ///
    /// # Errors
    /// Same conditions as [`MiniDfs::corrupt_replica`].
    pub fn corrupt_block(&self, path: &str, block: usize) -> Result<(), DfsError> {
        let replicas = {
            let files = self.inner.files.read();
            let f = files
                .get(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            let b = f.blocks.get(block).ok_or_else(|| {
                DfsError::InvalidConfig(format!("block {block} out of range for {path}"))
            })?;
            b.replicas.len()
        };
        for r in 0..replicas {
            self.corrupt_replica(path, block, r)?;
        }
        Ok(())
    }

    /// Restores every replica of every block of `path` to the clean
    /// payload (undoes [`MiniDfs::corrupt_replica`]).
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths.
    pub fn heal(&self, path: &str) -> Result<(), DfsError> {
        let mut files = self.inner.files.write();
        let f = files
            .get_mut(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        for b in &mut f.blocks {
            for slot in &mut b.replica_data {
                *slot = None;
            }
        }
        Ok(())
    }

    /// Reads the whole file back as owned lines (test / example helper;
    /// engines read block-wise for locality).
    ///
    /// # Errors
    /// Fails with [`DfsError::NotFound`] for unknown paths.
    pub fn read_all_lines(&self, path: &str) -> Result<Vec<String>, DfsError> {
        let blocks = self.blocks(path)?;
        let mut out = Vec::new();
        for b in blocks {
            out.extend(b.lines().map(str::to_string));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs() -> MiniDfs {
        MiniDfs::new(4, 64).unwrap() // tiny blocks to force splitting
    }

    #[test]
    fn rejects_bad_config() {
        assert!(MiniDfs::new(0, 64).is_err());
        assert!(MiniDfs::new(4, 0).is_err());
        assert!(MiniDfs::with_replication(4, 64, 0).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let dfs = dfs();
        let lines: Vec<String> = (0..100).map(|i| format!("record-{i}")).collect();
        let stat = dfs.write_lines("/data/test.txt", &lines).unwrap();
        assert_eq!(stat.total_records, 100);
        assert!(stat.num_blocks > 1, "64-byte blocks must split 100 lines");
        assert_eq!(dfs.read_all_lines("/data/test.txt").unwrap(), lines);
    }

    #[test]
    fn blocks_split_at_line_boundaries() {
        let dfs = dfs();
        let lines: Vec<String> = (0..50).map(|i| format!("{i:0>20}")).collect();
        dfs.write_lines("/f", &lines).unwrap();
        let blocks = dfs.blocks("/f").unwrap();
        let total: usize = blocks.iter().map(|b| b.num_records).sum();
        assert_eq!(total, 50);
        for b in &blocks {
            // Every block ends with a full record.
            assert!(b.data.ends_with(b"\n"));
            assert_eq!(b.lines().count(), b.num_records);
        }
    }

    #[test]
    fn placement_is_round_robin() {
        let dfs = dfs();
        let lines: Vec<String> = (0..64).map(|i| format!("{i:0>30}")).collect();
        dfs.write_lines("/f", &lines).unwrap();
        let blocks = dfs.blocks("/f").unwrap();
        assert!(blocks.len() >= 8);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.primary_node, i % 4);
        }
    }

    #[test]
    fn replication_wraps_nodes() {
        let dfs = MiniDfs::with_replication(3, 64, 2).unwrap();
        dfs.write_lines("/f", ["aaaa"]).unwrap();
        let blocks = dfs.blocks("/f").unwrap();
        assert_eq!(blocks[0].replicas.len(), 2);
        assert_ne!(blocks[0].replicas[0], blocks[0].replicas[1]);
        // Replication clamped to node count.
        let dfs2 = MiniDfs::with_replication(2, 64, 5).unwrap();
        dfs2.write_lines("/f", ["aaaa"]).unwrap();
        assert_eq!(dfs2.blocks("/f").unwrap()[0].replicas.len(), 2);
    }

    #[test]
    fn no_overwrite_and_delete() {
        let dfs = dfs();
        dfs.write_lines("/f", ["x"]).unwrap();
        assert_eq!(
            dfs.write_lines("/f", ["y"]),
            Err(DfsError::AlreadyExists("/f".into()))
        );
        assert!(dfs.exists("/f"));
        dfs.delete("/f").unwrap();
        assert!(!dfs.exists("/f"));
        assert_eq!(dfs.delete("/f"), Err(DfsError::NotFound("/f".into())));
        assert_eq!(dfs.stat("/f").unwrap_err(), DfsError::NotFound("/f".into()));
    }

    #[test]
    fn oversized_record_gets_own_block() {
        let dfs = dfs();
        let big = "z".repeat(500);
        dfs.write_lines("/f", [big.as_str(), "tail"]).unwrap();
        let blocks = dfs.blocks("/f").unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].num_records, 1);
        assert_eq!(blocks[1].lines().next(), Some("tail"));
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let dfs = dfs();
        let stat = dfs.write_lines("/empty", Vec::<String>::new()).unwrap();
        assert_eq!(stat.num_blocks, 0);
        assert_eq!(stat.total_records, 0);
        assert!(dfs.read_all_lines("/empty").unwrap().is_empty());
    }

    #[test]
    fn list_is_sorted() {
        let dfs = dfs();
        dfs.write_lines("/b", ["1"]).unwrap();
        dfs.write_lines("/a", ["1"]).unwrap();
        assert_eq!(dfs.list(), vec!["/a".to_string(), "/b".to_string()]);
    }

    #[test]
    fn corrupt_primary_fails_over_to_surviving_replica() {
        let dfs = MiniDfs::with_replication(4, 64, 3).unwrap();
        let lines: Vec<String> = (0..40).map(|i| format!("row-{i:0>16}")).collect();
        dfs.write_lines("/f", &lines).unwrap();
        let clean = dfs.blocks("/f").unwrap();
        // Corrupt the primary replica of block 0: reads must silently
        // serve replica 1 with identical bytes and a shifted hint.
        dfs.corrupt_replica("/f", 0, 0).unwrap();
        let after = dfs.blocks("/f").unwrap();
        assert_eq!(after[0].data, clean[0].data);
        assert_eq!(after[0].primary_node, clean[0].replicas[1]);
        assert_eq!(dfs.read_all_lines("/f").unwrap(), lines);
        // Corrupt replica 1 too: replica 2 still serves.
        dfs.corrupt_replica("/f", 0, 1).unwrap();
        assert_eq!(dfs.read_all_lines("/f").unwrap(), lines);
        // All three gone: the read reports the corrupt block.
        dfs.corrupt_replica("/f", 0, 2).unwrap();
        assert_eq!(
            dfs.blocks("/f").unwrap_err(),
            DfsError::CorruptBlock {
                path: "/f".into(),
                block: 0
            }
        );
        // Healing restores the clean payload everywhere.
        dfs.heal("/f").unwrap();
        assert_eq!(dfs.read_all_lines("/f").unwrap(), lines);
        let healed = dfs.blocks("/f").unwrap();
        assert_eq!(healed[0].primary_node, clean[0].primary_node);
    }

    #[test]
    fn corrupt_block_kills_every_replica() {
        let dfs = MiniDfs::with_replication(3, 64, 2).unwrap();
        dfs.write_lines("/f", ["payload"]).unwrap();
        dfs.corrupt_block("/f", 0).unwrap();
        assert!(matches!(
            dfs.blocks("/f"),
            Err(DfsError::CorruptBlock { block: 0, .. })
        ));
    }

    #[test]
    fn corruption_hooks_validate_indices() {
        let dfs = dfs();
        assert_eq!(
            dfs.corrupt_replica("/missing", 0, 0),
            Err(DfsError::NotFound("/missing".into()))
        );
        dfs.write_lines("/f", ["x"]).unwrap();
        assert!(matches!(
            dfs.corrupt_replica("/f", 9, 0),
            Err(DfsError::InvalidConfig(_))
        ));
        assert!(matches!(
            dfs.corrupt_replica("/f", 0, 5),
            Err(DfsError::InvalidConfig(_))
        ));
        assert!(matches!(
            dfs.corrupt_block("/f", 9),
            Err(DfsError::InvalidConfig(_))
        ));
    }

    #[test]
    fn failover_bumps_obs_counter() {
        std::thread::spawn(|| {
            let dfs = MiniDfs::with_replication(4, 64, 2).unwrap();
            dfs.write_lines("/f", ["some data"]).unwrap();
            let before = obs::thread_snapshot().blocks_failed_over;
            dfs.blocks("/f").unwrap();
            assert_eq!(obs::thread_snapshot().blocks_failed_over, before);
            dfs.corrupt_replica("/f", 0, 0).unwrap();
            dfs.blocks("/f").unwrap();
            assert_eq!(obs::thread_snapshot().blocks_failed_over, before + 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn shared_handle_sees_writes() {
        let dfs = dfs();
        let clone = dfs.clone();
        dfs.write_lines("/shared", ["v"]).unwrap();
        assert!(clone.exists("/shared"));
    }
}
