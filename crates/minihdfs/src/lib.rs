//! # minihdfs — a miniature distributed file system
//!
//! Both systems in the paper read their inputs as text files of WKT
//! records stored in HDFS. This crate provides the workspace's stand-in:
//! files are split into fixed-size blocks at line boundaries, blocks are
//! placed round-robin (with optional replication) across a set of
//! simulated datanodes, and readers can enumerate blocks with their
//! placement so the execution engines can schedule for locality exactly
//! like Hadoop's `FileInputFormat` does.
//!
//! Everything lives in memory ([`Bytes`] block payloads: shared,
//! immutable, O(1) to clone), which matches the in-memory orientation
//! of Spark and Impala that the paper targets.

pub mod bytes;
pub mod checksum;
pub mod error;
pub mod fs;

pub use bytes::Bytes;
pub use checksum::crc32;
pub use error::DfsError;
pub use fs::{BlockRef, FileStat, MiniDfs};

/// Default block size: 4 MiB. Real HDFS uses 128 MiB; the scale factor
/// of this reproduction's datasets is correspondingly smaller so that
/// files still split into many blocks.
pub const DEFAULT_BLOCK_SIZE: usize = 4 * 1024 * 1024;
