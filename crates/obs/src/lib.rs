//! # obs — workspace-wide observability
//!
//! The paper's whole evaluation is built from per-stage cost breakdowns
//! (parse vs. index vs. probe vs. refine, Figs. 2–5), and follow-up
//! systems like LocationSpark drive their schedulers from collected
//! runtime/selectivity statistics. This crate is the substrate both
//! need: a zero-dependency, allocation-free-in-hot-path counter and
//! span layer that every other crate in the workspace feeds.
//!
//! ## Design
//!
//! * **Hot path = thread-local [`Cell`]s.** Counter bumps go to a
//!   const-initialised thread-local [`Counters`] block — no atomics, no
//!   locks, no allocation, and therefore legal inside `tidy:alloc-free`
//!   regions. Instrumented loops accumulate into plain `u64` locals and
//!   flush **once** per probe/morsel via the free functions below
//!   ([`filter_refine`], [`node_visits`], [`edge_visits`], …), keeping
//!   the overhead under the ≤2 % budget on the parallel-join bench.
//! * **Collection = snapshot deltas.** There is deliberately *no*
//!   global sink. A collector records [`thread_snapshot`] before the
//!   work, again after, and subtracts; work done on scoped worker
//!   threads is returned explicitly as an [`ExecStats`] by the
//!   `cluster` pool's `*_observed` entry points (fresh threads start
//!   with zeroed cells, so worker counts are exact). The sum
//!   `driver delta + worker counters` is identical at any thread
//!   count, which is what makes the cross-thread-count invariants
//!   testable.
//! * **Reporting = [`RunStats`] trees.** Counters, per-worker
//!   busy/wait nanoseconds and span timings aggregate into a named
//!   tree that serialises to JSON next to the existing
//!   `results/BENCH_*.json` artifacts (hand-rolled writer, no serde).

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------

/// One full set of event counters. Plain data: snapshot, add and
/// subtract freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Candidates surviving the R-tree envelope filter.
    pub filter_hits: u64,
    /// Refinement evaluations (predicate or distance calls).
    pub refine_calls: u64,
    /// Refinement evaluations that accepted the candidate.
    pub refine_accepts: u64,
    /// Geometry edges scanned by flat/naive refinement engines.
    pub edge_visits: u64,
    /// R-tree nodes popped during index traversals.
    pub node_visits: u64,
    /// Morsels/tasks executed by the parallel pool.
    pub morsels_executed: u64,
    /// Pool items dispatched under dynamic scheduling.
    pub dispatch_dynamic: u64,
    /// Pool items dispatched under static chunking.
    pub dispatch_static: u64,
    /// Pool items dispatched under locality-hinted static assignment.
    pub dispatch_locality: u64,
    /// Input lines parsed into records.
    pub records_parsed: u64,
    /// Input lines skipped as malformed.
    pub records_skipped: u64,
    /// Row batches produced by the SQL engine.
    pub row_batches: u64,
    /// Bytes broadcast to every node.
    pub bytes_broadcast: u64,
    /// Bytes moved all-to-all (shuffle).
    pub bytes_shuffled: u64,
    /// Faults injected by the chaos layer (panics, corruptions,
    /// transient errors, straggler delays).
    pub faults_injected: u64,
    /// Task/morsel attempts re-dispatched after a captured panic.
    pub task_retries: u64,
    /// Block reads served by a non-primary replica after a checksum
    /// failure on an earlier replica.
    pub blocks_failed_over: u64,
    /// Partitions recomputed from lineage after an executor loss.
    pub partitions_recomputed: u64,
}

macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(filter_hits);
        $m!(refine_calls);
        $m!(refine_accepts);
        $m!(edge_visits);
        $m!(node_visits);
        $m!(morsels_executed);
        $m!(dispatch_dynamic);
        $m!(dispatch_static);
        $m!(dispatch_locality);
        $m!(records_parsed);
        $m!(records_skipped);
        $m!(row_batches);
        $m!(bytes_broadcast);
        $m!(bytes_shuffled);
        $m!(faults_injected);
        $m!(task_retries);
        $m!(blocks_failed_over);
        $m!(partitions_recomputed);
    };
}

impl Counters {
    /// `self + other`, saturating.
    #[must_use]
    pub fn plus(&self, other: &Counters) -> Counters {
        let mut out = *self;
        macro_rules! add {
            ($f:ident) => {
                out.$f = out.$f.saturating_add(other.$f);
            };
        }
        for_each_counter!(add);
        out
    }

    /// `self - other`, saturating (deltas against an earlier snapshot).
    #[must_use]
    pub fn minus(&self, other: &Counters) -> Counters {
        let mut out = *self;
        macro_rules! sub {
            ($f:ident) => {
                out.$f = out.$f.saturating_sub(other.$f);
            };
        }
        for_each_counter!(sub);
        out
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }

    /// `(name, value)` pairs in declaration order, for reports.
    pub fn fields(&self) -> [(&'static str, u64); 18] {
        [
            ("filter_hits", self.filter_hits),
            ("refine_calls", self.refine_calls),
            ("refine_accepts", self.refine_accepts),
            ("edge_visits", self.edge_visits),
            ("node_visits", self.node_visits),
            ("morsels_executed", self.morsels_executed),
            ("dispatch_dynamic", self.dispatch_dynamic),
            ("dispatch_static", self.dispatch_static),
            ("dispatch_locality", self.dispatch_locality),
            ("records_parsed", self.records_parsed),
            ("records_skipped", self.records_skipped),
            ("row_batches", self.row_batches),
            ("bytes_broadcast", self.bytes_broadcast),
            ("bytes_shuffled", self.bytes_shuffled),
            ("faults_injected", self.faults_injected),
            ("task_retries", self.task_retries),
            ("blocks_failed_over", self.blocks_failed_over),
            ("partitions_recomputed", self.partitions_recomputed),
        ]
    }
}

/// The thread-local cells behind the free functions. Const-initialised
/// so first access never allocates.
struct CounterCells {
    filter_hits: Cell<u64>,
    refine_calls: Cell<u64>,
    refine_accepts: Cell<u64>,
    edge_visits: Cell<u64>,
    node_visits: Cell<u64>,
    morsels_executed: Cell<u64>,
    dispatch_dynamic: Cell<u64>,
    dispatch_static: Cell<u64>,
    dispatch_locality: Cell<u64>,
    records_parsed: Cell<u64>,
    records_skipped: Cell<u64>,
    row_batches: Cell<u64>,
    bytes_broadcast: Cell<u64>,
    bytes_shuffled: Cell<u64>,
    faults_injected: Cell<u64>,
    task_retries: Cell<u64>,
    blocks_failed_over: Cell<u64>,
    partitions_recomputed: Cell<u64>,
}

thread_local! {
    static CELLS: CounterCells = const {
        CounterCells {
            filter_hits: Cell::new(0),
            refine_calls: Cell::new(0),
            refine_accepts: Cell::new(0),
            edge_visits: Cell::new(0),
            node_visits: Cell::new(0),
            morsels_executed: Cell::new(0),
            dispatch_dynamic: Cell::new(0),
            dispatch_static: Cell::new(0),
            dispatch_locality: Cell::new(0),
            records_parsed: Cell::new(0),
            records_skipped: Cell::new(0),
            row_batches: Cell::new(0),
            bytes_broadcast: Cell::new(0),
            bytes_shuffled: Cell::new(0),
            faults_injected: Cell::new(0),
            task_retries: Cell::new(0),
            blocks_failed_over: Cell::new(0),
            partitions_recomputed: Cell::new(0),
        }
    };
}

#[inline]
fn bump(cell: &Cell<u64>, by: u64) {
    cell.set(cell.get().saturating_add(by));
}

/// How the pool handed an item to its worker — mirrors
/// `cluster::ScheduleMode` without depending on it (obs sits at the
/// bottom of the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    Dynamic,
    Static,
    StaticLocality,
}

/// Records one probe's filter/refine outcome: `candidates` envelopes
/// survived the filter (each costing one refinement call), `accepts` of
/// them passed refinement. One thread-local access per probe.
#[inline]
pub fn filter_refine(candidates: u64, accepts: u64) {
    CELLS.with(|c| {
        bump(&c.filter_hits, candidates);
        bump(&c.refine_calls, candidates);
        bump(&c.refine_accepts, accepts);
    });
}

/// Records `n` R-tree nodes visited by one traversal.
#[inline]
pub fn node_visits(n: u64) {
    CELLS.with(|c| bump(&c.node_visits, n));
}

/// Records one full index probe — the `nodes` popped by the tree
/// traversal plus its filter/refine outcome — in a **single**
/// thread-local access. The R-tree probe loop uses this instead of
/// separate [`node_visits`] + [`filter_refine`] calls so each left
/// point pays for exactly one TLS access.
#[inline]
pub fn probe_counts(nodes: u64, candidates: u64, accepts: u64) {
    CELLS.with(|c| {
        bump(&c.node_visits, nodes);
        bump(&c.filter_hits, candidates);
        bump(&c.refine_calls, candidates);
        bump(&c.refine_accepts, accepts);
    });
}

/// Records `n` geometry edges scanned by one refinement call.
#[inline]
pub fn edge_visits(n: u64) {
    CELLS.with(|c| bump(&c.edge_visits, n));
}

/// Records one morsel/task executed under `mode`.
#[inline]
pub fn morsel(mode: DispatchMode) {
    CELLS.with(|c| {
        bump(&c.morsels_executed, 1);
        match mode {
            DispatchMode::Dynamic => bump(&c.dispatch_dynamic, 1),
            DispatchMode::Static => bump(&c.dispatch_static, 1),
            DispatchMode::StaticLocality => bump(&c.dispatch_locality, 1),
        }
    });
}

/// Records a batch of record-parse outcomes.
#[inline]
pub fn records(parsed: u64, skipped: u64) {
    CELLS.with(|c| {
        bump(&c.records_parsed, parsed);
        bump(&c.records_skipped, skipped);
    });
}

/// Records `n` row batches produced by the SQL engine.
#[inline]
pub fn row_batches(n: u64) {
    CELLS.with(|c| bump(&c.row_batches, n));
}

/// Records bytes broadcast / shuffled by a data-movement stage.
#[inline]
pub fn bytes_moved(broadcast: u64, shuffled: u64) {
    CELLS.with(|c| {
        bump(&c.bytes_broadcast, broadcast);
        bump(&c.bytes_shuffled, shuffled);
    });
}

/// Records `n` faults injected by the chaos layer.
#[inline]
pub fn faults_injected(n: u64) {
    CELLS.with(|c| bump(&c.faults_injected, n));
}

/// Records one task/morsel attempt re-dispatched after a captured
/// panic.
#[inline]
pub fn task_retry() {
    CELLS.with(|c| bump(&c.task_retries, 1));
}

/// Records one block read that failed over to a surviving replica.
#[inline]
pub fn block_failed_over() {
    CELLS.with(|c| bump(&c.blocks_failed_over, 1));
}

/// Records `n` partitions recomputed from lineage.
#[inline]
pub fn partitions_recomputed(n: u64) {
    CELLS.with(|c| bump(&c.partitions_recomputed, n));
}

/// Reads the calling thread's counters **without** resetting them.
/// Collectors take a snapshot before and after a region of work and
/// subtract.
pub fn thread_snapshot() -> Counters {
    CELLS.with(|c| Counters {
        filter_hits: c.filter_hits.get(),
        refine_calls: c.refine_calls.get(),
        refine_accepts: c.refine_accepts.get(),
        edge_visits: c.edge_visits.get(),
        node_visits: c.node_visits.get(),
        morsels_executed: c.morsels_executed.get(),
        dispatch_dynamic: c.dispatch_dynamic.get(),
        dispatch_static: c.dispatch_static.get(),
        dispatch_locality: c.dispatch_locality.get(),
        records_parsed: c.records_parsed.get(),
        records_skipped: c.records_skipped.get(),
        row_batches: c.row_batches.get(),
        bytes_broadcast: c.bytes_broadcast.get(),
        bytes_shuffled: c.bytes_shuffled.get(),
        faults_injected: c.faults_injected.get(),
        task_retries: c.task_retries.get(),
        blocks_failed_over: c.blocks_failed_over.get(),
        partitions_recomputed: c.partitions_recomputed.get(),
    })
}

/// Drains the calling thread's counters, returning them and resetting
/// every cell to zero. Worker threads call this once before exiting so
/// their counts travel back to the driver in an [`ExecStats`].
pub fn take_thread() -> Counters {
    let snap = thread_snapshot();
    CELLS.with(|c| {
        macro_rules! clear {
            ($f:ident) => {
                c.$f.set(0);
            };
        }
        for_each_counter!(clear);
    });
    snap
}

/// Adds `counters` into the calling thread's cells. The pool's plain
/// (non-observed) entry points use this to fold worker counts into the
/// driver thread, so an outer snapshot-delta still sees them.
pub fn add_thread(counters: &Counters) {
    CELLS.with(|c| {
        macro_rules! add {
            ($f:ident) => {
                bump(&c.$f, counters.$f);
            };
        }
        for_each_counter!(add);
    });
}

// ---------------------------------------------------------------------
// per-worker execution stats
// ---------------------------------------------------------------------

/// What one pool worker did during a parallel region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Items (tasks or morsels) the worker ran.
    pub items: u64,
    /// Nanoseconds spent inside item closures.
    pub busy_ns: u64,
    /// Nanoseconds the worker existed but was not inside an item —
    /// queue wait, scheduling gaps, stitch barriers.
    pub wait_ns: u64,
}

/// Everything a parallel region observed: the sum of its scoped
/// workers' counters (zero when the region ran inline on the calling
/// thread) plus per-worker busy/wait accounting.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Counters accumulated on scoped worker threads. Inline
    /// (single-thread) execution leaves this zero — those counts land
    /// in the calling thread's cells and surface through the caller's
    /// snapshot delta instead.
    pub worker_counters: Counters,
    /// One entry per worker that ran (inline execution reports itself
    /// as worker 0).
    pub workers: Vec<WorkerStats>,
}

impl ExecStats {
    /// Total busy nanoseconds across workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Total items across workers.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Merges another region's stats into this one (workers appended).
    pub fn absorb(&mut self, other: ExecStats) {
        self.worker_counters = self.worker_counters.plus(&other.worker_counters);
        self.workers.extend(other.workers);
    }
}

// ---------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------

/// One named timed region, possibly aggregated over `count` executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    pub name: String,
    /// Executions aggregated into `total_ns`.
    pub count: u64,
    pub total_ns: u64,
}

impl SpanStat {
    /// A span aggregated from `count` executions totalling `secs`.
    pub fn from_secs(name: &str, count: u64, secs: f64) -> SpanStat {
        SpanStat {
            name: name.to_string(),
            count,
            total_ns: secs_to_ns(secs),
        }
    }

    /// Total seconds as `f64` (for reports).
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Converts seconds to nanoseconds, saturating on overflow/negatives.
pub fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e9).min(u64::MAX as f64) as u64
    }
}

/// A lightweight started timer; [`SpanTimer::finish`] yields the
/// [`SpanStat`]. There is no global registry — the caller owns the
/// result and pushes it wherever it belongs.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing `name` now.
    pub fn start(name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            started: Instant::now(),
        }
    }

    /// Stops the timer, producing a single-execution span.
    pub fn finish(self) -> SpanStat {
        SpanStat {
            name: self.name.to_string(),
            count: 1,
            total_ns: self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

// ---------------------------------------------------------------------
// RunStats tree + JSON
// ---------------------------------------------------------------------

/// A named aggregation node: counters, worker accounting and spans for
/// one run (or one stage of a run), with nested children for
/// sub-stages. Serialises to the same hand-rolled JSON dialect the
/// bench artifacts use.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub name: String,
    pub counters: Counters,
    pub workers: Vec<WorkerStats>,
    pub spans: Vec<SpanStat>,
    pub children: Vec<RunStats>,
}

impl RunStats {
    /// An empty node named `name`.
    pub fn new(name: &str) -> RunStats {
        RunStats {
            name: name.to_string(),
            ..RunStats::default()
        }
    }

    /// This node's counters plus every descendant's.
    pub fn total_counters(&self) -> Counters {
        self.children
            .iter()
            .fold(self.counters, |acc, c| acc.plus(&c.total_counters()))
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&RunStats> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Finds a span on this node by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serialises the tree as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json_into(&mut out, 0);
        out
    }

    fn write_json_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{pad}  \"name\": \"{}\",", escape(&self.name));
        let _ = write!(out, "{pad}  \"counters\": {{");
        let fields = self.counters.fields();
        for (i, (name, value)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { ", " };
            let _ = write!(out, "\"{name}\": {value}{comma}");
        }
        let _ = writeln!(out, "}},");
        let _ = write!(out, "{pad}  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 == self.workers.len() {
                ""
            } else {
                ", "
            };
            let _ = write!(
                out,
                "{{\"worker\": {}, \"items\": {}, \"busy_ns\": {}, \"wait_ns\": {}}}{comma}",
                w.worker, w.items, w.busy_ns, w.wait_ns
            );
        }
        let _ = writeln!(out, "],");
        let _ = write!(out, "{pad}  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 == self.spans.len() { "" } else { ", " };
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}}}{comma}",
                escape(&s.name),
                s.count,
                s.total_ns
            );
        }
        let _ = writeln!(out, "],");
        if self.children.is_empty() {
            let _ = writeln!(out, "{pad}  \"children\": []");
        } else {
            let _ = writeln!(out, "{pad}  \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                c.write_json_into(out, depth + 2);
                // write_json_into ends without a newline terminator on
                // the closing brace line; add the separator here.
                let comma = if i + 1 == self.children.len() {
                    ""
                } else {
                    ","
                };
                let _ = writeln!(out, "{comma}");
            }
            let _ = writeln!(out, "{pad}  ]");
        }
        let _ = write!(out, "{pad}}}");
    }

    /// Writes the tree as a JSON file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_sub_roundtrip() {
        let mut a = Counters::default();
        a.filter_hits = 10;
        a.refine_calls = 10;
        a.refine_accepts = 7;
        let mut b = Counters::default();
        b.filter_hits = 3;
        b.refine_calls = 3;
        let sum = a.plus(&b);
        assert_eq!(sum.filter_hits, 13);
        assert_eq!(sum.minus(&b), a);
        // Saturating subtraction never wraps.
        assert_eq!(b.minus(&a).filter_hits, 0);
        assert!(Counters::default().is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn thread_cells_accumulate_and_drain() {
        // Run on a dedicated thread so parallel tests can't interleave
        // counts into our cells.
        std::thread::spawn(|| {
            assert!(thread_snapshot().is_zero());
            filter_refine(5, 2);
            node_visits(11);
            edge_visits(40);
            morsel(DispatchMode::Dynamic);
            morsel(DispatchMode::StaticLocality);
            records(9, 1);
            row_batches(3);
            bytes_moved(100, 200);
            faults_injected(4);
            task_retry();
            block_failed_over();
            partitions_recomputed(2);
            let snap = thread_snapshot();
            assert_eq!(snap.filter_hits, 5);
            assert_eq!(snap.refine_calls, 5);
            assert_eq!(snap.refine_accepts, 2);
            assert_eq!(snap.node_visits, 11);
            assert_eq!(snap.edge_visits, 40);
            assert_eq!(snap.morsels_executed, 2);
            assert_eq!(snap.dispatch_dynamic, 1);
            assert_eq!(snap.dispatch_locality, 1);
            assert_eq!(snap.dispatch_static, 0);
            assert_eq!(snap.records_parsed, 9);
            assert_eq!(snap.records_skipped, 1);
            assert_eq!(snap.row_batches, 3);
            assert_eq!(snap.bytes_broadcast, 100);
            assert_eq!(snap.bytes_shuffled, 200);
            assert_eq!(snap.faults_injected, 4);
            assert_eq!(snap.task_retries, 1);
            assert_eq!(snap.blocks_failed_over, 1);
            assert_eq!(snap.partitions_recomputed, 2);
            // Snapshot does not reset; take does.
            assert_eq!(thread_snapshot(), snap);
            assert_eq!(take_thread(), snap);
            assert!(thread_snapshot().is_zero());
            // add_thread folds counts back in.
            add_thread(&snap);
            assert_eq!(take_thread(), snap);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn fresh_threads_start_zeroed() {
        filter_refine(100, 100);
        let worker = std::thread::spawn(|| {
            assert!(thread_snapshot().is_zero());
            edge_visits(7);
            take_thread()
        })
        .join()
        .unwrap();
        assert_eq!(worker.edge_visits, 7);
        assert_eq!(worker.filter_hits, 0);
    }

    #[test]
    fn span_timer_measures_something() {
        let t = SpanTimer::start("probe");
        std::hint::black_box(0u64);
        let span = t.finish();
        assert_eq!(span.name, "probe");
        assert_eq!(span.count, 1);
        let agg = SpanStat::from_secs("scan", 4, 2.5);
        assert_eq!(agg.total_ns, 2_500_000_000);
        assert!((agg.total_secs() - 2.5).abs() < 1e-9);
        assert_eq!(secs_to_ns(-1.0), 0);
    }

    #[test]
    fn exec_stats_totals_and_absorb() {
        let mut a = ExecStats {
            worker_counters: Counters {
                refine_calls: 5,
                ..Counters::default()
            },
            workers: vec![WorkerStats {
                worker: 0,
                items: 3,
                busy_ns: 100,
                wait_ns: 10,
            }],
        };
        let b = ExecStats {
            worker_counters: Counters {
                refine_calls: 2,
                ..Counters::default()
            },
            workers: vec![WorkerStats {
                worker: 1,
                items: 1,
                busy_ns: 50,
                wait_ns: 5,
            }],
        };
        a.absorb(b);
        assert_eq!(a.worker_counters.refine_calls, 7);
        assert_eq!(a.total_busy_ns(), 150);
        assert_eq!(a.total_items(), 4);
    }

    #[test]
    fn runstats_tree_json_shape() {
        let mut root = RunStats::new("join");
        root.counters.refine_calls = 42;
        root.spans.push(SpanStat::from_secs("run", 1, 0.001));
        root.workers.push(WorkerStats {
            worker: 0,
            items: 2,
            busy_ns: 900,
            wait_ns: 100,
        });
        let mut child = RunStats::new("probe");
        child.counters.refine_calls = 40;
        root.children.push(child);
        let json = root.to_json();
        assert!(json.contains("\"name\": \"join\""));
        assert!(json.contains("\"refine_calls\": 42"));
        assert!(json.contains("\"name\": \"probe\""));
        assert!(json.contains("\"busy_ns\": 900"));
        // Total rolls children up.
        assert_eq!(root.total_counters().refine_calls, 82);
        assert_eq!(root.child("probe").unwrap().counters.refine_calls, 40);
        assert!(root.child("missing").is_none());
        assert_eq!(root.span("run").unwrap().count, 1);
        // Braces balance (a cheap structural sanity check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_quotes() {
        let s = RunStats::new("a\"b\\c");
        let json = s.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
