//! # proph — a small property-testing harness
//!
//! An in-tree replacement for the subset of `proptest` this workspace
//! used: random generation of structured values, a fixed case budget
//! per property, and shrink-on-failure.
//!
//! The design is choice-stream based (the approach of Hypothesis):
//! every generator draws `u64`s from a [`Data`] source. During normal
//! generation the draws come from a seeded PRNG and are *recorded*;
//! when a property fails, the recorded stream is mutated — values
//! zeroed, halved, decremented, the tail truncated — and replayed
//! through the same generator. Any mutated stream still decodes to a
//! *valid* value of the right type (draws past the end read as zero),
//! so shrinking needs no type-specific code and works through
//! [`GenExt::map`], [`vec_of`] and tuple composition automatically.
//! Zero is always the "smallest" choice, so generators are written so
//! that small draws decode to simple values (short vectors, range
//! minimums).
//!
//! ```
//! use proph::{check, f64_range, vec_of, GenExt};
//!
//! let small = vec_of(f64_range(0.0, 10.0), 0, 8);
//! check("sums are bounded", &small, |v| {
//!     assert!(v.iter().sum::<f64>() <= 10.0 * v.len() as f64);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------
// choice stream
// ---------------------------------------------------------------------

/// The source of randomness generators draw from: either a live PRNG
/// (recording every draw) or a replayed, possibly mutated stream.
pub struct Data {
    /// Replay buffer; draws beyond its end read as 0.
    stream: Vec<u64>,
    pos: usize,
    /// Live PRNG state; `None` when replaying a shrunk candidate.
    rng: Option<SplitMix>,
}

struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Data {
    fn fresh(seed: u64) -> Data {
        Data {
            stream: Vec::new(),
            pos: 0,
            rng: Some(SplitMix { state: seed }),
        }
    }

    fn replay(stream: Vec<u64>) -> Data {
        Data {
            stream,
            pos: 0,
            rng: None,
        }
    }

    /// Draws the next choice.
    pub fn draw_u64(&mut self) -> u64 {
        if self.pos < self.stream.len() {
            let v = self.stream[self.pos];
            self.pos += 1;
            return v;
        }
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next();
                self.stream.push(v);
                self.pos += 1;
                v
            }
            // Replaying past the end of a truncated stream: the
            // smallest choice.
            None => 0,
        }
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn draw_unit_f64(&mut self) -> f64 {
        (self.draw_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a `u64` in `[0, bound)`; `bound` 0 gives 0.
    pub fn draw_bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.draw_u64() % bound
    }
}

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

/// A generator of values of one type from a choice stream.
pub trait Gen {
    type Value;

    fn generate(&self, d: &mut Data) -> Self::Value;
}

/// Combinators available on every generator.
pub trait GenExt: Gen + Sized {
    /// Applies a pure function to generated values. Shrinking happens
    /// on the underlying choices, so mapped values shrink too.
    fn map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<G: Gen + Sized> GenExt for G {}

/// See [`GenExt::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, T, F: Fn(G::Value) -> T> Gen for Map<G, F> {
    type Value = T;

    fn generate(&self, d: &mut Data) -> T {
        (self.f)(self.inner.generate(d))
    }
}

/// Uniform `f64` in `[lo, hi)`. The zero choice decodes to `lo`.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    F64Range { lo, hi }
}

pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, d: &mut Data) -> f64 {
        let v = self.lo + d.draw_unit_f64() * (self.hi - self.lo);
        v.min(self.hi - (self.hi - self.lo) * f64::EPSILON)
    }
}

/// Uniform `usize` in `[lo, hi)` (half-open, like `lo..hi`).
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    UsizeRange { lo, hi }
}

pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, d: &mut Data) -> usize {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + d.draw_bounded((self.hi - self.lo) as u64) as usize
    }
}

/// Uniform `i64` in `[lo, hi)`.
pub fn i64_range(lo: i64, hi: i64) -> I64Range {
    I64Range { lo, hi }
}

pub struct I64Range {
    lo: i64,
    hi: i64,
}

impl Gen for I64Range {
    type Value = i64;

    fn generate(&self, d: &mut Data) -> i64 {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + d.draw_bounded((self.hi - self.lo) as u64) as i64
    }
}

/// A vector of `min..=max` values from `inner`. Short vectors decode
/// from small choices, so shrinking shortens the vector first.
pub fn vec_of<G: Gen>(inner: G, min: usize, max: usize) -> VecOf<G> {
    VecOf { inner, min, max }
}

pub struct VecOf<G> {
    inner: G,
    min: usize,
    max: usize,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, d: &mut Data) -> Vec<G::Value> {
        let span = (self.max - self.min) as u64 + 1;
        let len = self.min + d.draw_bounded(span) as usize;
        (0..len).map(|_| self.inner.generate(d)).collect()
    }
}

macro_rules! impl_gen_tuple {
    ($($g:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, d: &mut Data) -> Self::Value {
                ($(self.$idx.generate(d),)+)
            }
        }
    };
}

impl_gen_tuple!(A: 0, B: 1);
impl_gen_tuple!(A: 0, B: 1, C: 2);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------
// runner
// ---------------------------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: u32,
    /// Base seed; case `i` runs with `seed + i`.
    pub seed: u64,
    /// Maximum shrink candidates tried after a failure.
    pub max_shrink: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 128,
            seed: 0x5EED_CAFE,
            max_shrink: 400,
        }
    }
}

/// Runs `prop` against `cases` random values from `gen` with the
/// default configuration, shrinking on failure. The property signals
/// failure by panicking (use `assert!`).
///
/// # Panics
/// Panics with the minimal failing value when the property fails.
pub fn check<G, P>(name: &str, gen: &G, prop: P)
where
    G: Gen,
    G::Value: std::fmt::Debug,
    P: Fn(G::Value),
{
    check_with(Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with<G, P>(cfg: Config, name: &str, gen: &G, prop: P)
where
    G: Gen,
    G::Value: std::fmt::Debug,
    P: Fn(G::Value),
{
    for case in 0..cfg.cases {
        let mut data = Data::fresh(cfg.seed.wrapping_add(case as u64));
        let value = gen.generate(&mut data);
        let stream = std::mem::take(&mut data.stream);
        if run_one(gen, &prop, &stream).is_ok() {
            continue;
        }
        // Failure: shrink the recorded choice stream.
        let (minimal, attempts) = shrink(gen, &prop, stream, cfg.max_shrink);
        let shrunk = replay_value(gen, &minimal);
        std::panic::panic_any(format!(
            "property '{name}' failed (case {case}/{}, seed {:#x}).\n\
             original input: {value:?}\n\
             after {attempts} shrink attempts, minimal failing input: {shrunk:?}",
            cfg.cases, cfg.seed,
        ));
    }
}

fn replay_value<G: Gen>(gen: &G, stream: &[u64]) -> G::Value {
    gen.generate(&mut Data::replay(stream.to_vec()))
}

/// Runs the property on the value decoded from `stream`. `Err` means
/// the property panicked.
fn run_one<G, P>(gen: &G, prop: &P, stream: &[u64]) -> Result<(), ()>
where
    G: Gen,
    P: Fn(G::Value),
{
    let value = replay_value(gen, stream);
    catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(|_| ())
}

/// Greedy stream shrinking: repeatedly tries simpler mutations of the
/// failing stream, keeping any candidate that still fails, until no
/// mutation helps or the attempt budget is spent.
fn shrink<G, P>(gen: &G, prop: &P, mut stream: Vec<u64>, budget: u32) -> (Vec<u64>, u32)
where
    G: Gen,
    P: Fn(G::Value),
{
    let mut attempts = 0u32;
    let mut improved = true;
    while improved && attempts < budget {
        improved = false;

        // 1. Truncate the tail (drops whole trailing structure).
        let mut cut = stream.len() / 2;
        while cut > 0 && attempts < budget {
            let candidate: Vec<u64> = stream[..stream.len() - cut].to_vec();
            attempts += 1;
            if run_one(gen, prop, &candidate).is_err() {
                stream = candidate;
                improved = true;
            } else {
                cut /= 2;
            }
        }

        // 2. Zero, halve, then decrement each choice.
        for i in 0..stream.len() {
            if stream[i] == 0 {
                continue;
            }
            for replacement in [0, stream[i] / 2, stream[i] - 1] {
                if replacement == stream[i] || attempts >= budget {
                    continue;
                }
                let mut candidate = stream.clone();
                candidate[i] = replacement;
                attempts += 1;
                if run_one(gen, prop, &candidate).is_err() {
                    stream = candidate;
                    improved = true;
                    break;
                }
            }
        }
    }
    (stream, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        // Counts cases via a cell to prove the budget is honoured.
        let counter = std::cell::Cell::new(0u32);
        check("bounds hold", &f64_range(-5.0, 5.0), |v| {
            counter.set(counter.get() + 1);
            assert!((-5.0..5.0).contains(&v));
        });
        assert_eq!(counter.get(), Config::default().cases);
    }

    #[test]
    fn tuples_and_vecs_compose() {
        let gen = (
            usize_range(1, 10),
            vec_of(f64_range(0.0, 1.0), 0, 16),
            i64_range(-3, 3),
        );
        check("composite shapes", &gen, |(n, v, i)| {
            assert!((1..10).contains(&n));
            assert!(v.len() <= 16);
            assert!((-3..3).contains(&i));
        });
    }

    #[test]
    fn map_transforms_values() {
        let gen = vec_of(f64_range(1.0, 2.0), 2, 8).map(|v| v.into_iter().sum::<f64>());
        check("sum of 2..8 values in [1,2) is ≥ 2", &gen, |s| {
            assert!(s >= 2.0);
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vector() {
        // Property: vectors never contain a value ≥ 50. It fails;
        // shrinking should find a failing vector of length 1 (and
        // a value close to the threshold).
        let gen = vec_of(f64_range(0.0, 100.0), 0, 20);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("no large elements", &gen, |v| {
                assert!(v.iter().all(|&x| x < 50.0));
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
        };
        assert!(msg.contains("minimal failing input"), "message: {msg}");
        // The minimal counterexample is a single-element vector.
        let start = msg
            .find("minimal failing input: ")
            .map(|i| i + "minimal failing input: ".len());
        let tail = start.map(|i| &msg[i..]).unwrap_or_default();
        assert!(
            tail.starts_with('[') && tail.matches(',').count() == 0,
            "expected single-element vec, got: {tail}"
        );
    }

    #[test]
    fn replay_of_truncated_stream_is_valid() {
        let gen = vec_of(f64_range(-1.0, 1.0), 1, 8);
        let v = replay_value(&gen, &[]);
        // All-zero choices: minimum length, minimum values.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], -1.0);
    }
}
