//! Insertion-based R-tree (Guttman 1984, quadratic split).
//!
//! Kept as the ablation baseline against [`crate::RTree`]'s STR bulk
//! load: the paper's systems always bulk-build the broadcast index, and
//! `benches/indexing.rs` quantifies why.

use geom::{Envelope, HasEnvelope, Point};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
enum NodeBody {
    Leaf(Vec<u32>),    // entry ids
    Inner(Vec<usize>), // child node ids
}

impl NodeBody {
    /// Child node ids; empty for leaves, so callers need no match arm
    /// for the "wrong" variant.
    fn children(&self) -> &[usize] {
        match self {
            NodeBody::Inner(children) => children,
            NodeBody::Leaf(_) => &[],
        }
    }

    /// Takes the entry ids out of a leaf, leaving it empty; inner
    /// nodes yield no entries.
    fn take_leaf_entries(&mut self) -> Vec<u32> {
        match self {
            NodeBody::Leaf(entries) => std::mem::take(entries),
            NodeBody::Inner(_) => Vec::new(),
        }
    }

    /// Takes the child ids out of an inner node, leaving it empty;
    /// leaves yield no children.
    fn take_inner_children(&mut self) -> Vec<usize> {
        match self {
            NodeBody::Inner(children) => std::mem::take(children),
            NodeBody::Leaf(_) => Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    env: Envelope,
    body: NodeBody,
}

/// A mutable R-tree supporting one-at-a-time insertion.
#[derive(Debug, Clone)]
pub struct DynamicRTree<T> {
    items: Vec<(Envelope, T)>,
    nodes: Vec<Node>,
    root: usize,
}

impl<T> Default for DynamicRTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DynamicRTree<T> {
    /// Creates an empty tree.
    pub fn new() -> DynamicRTree<T> {
        DynamicRTree {
            items: Vec::new(),
            nodes: vec![Node {
                env: Envelope::EMPTY,
                body: NodeBody::Leaf(Vec::new()),
            }],
            root: 0,
        }
    }

    /// Number of items in the tree.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items have been inserted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts an item with an explicit envelope.
    pub fn insert_entry(&mut self, env: Envelope, item: T) {
        let id = self.items.len() as u32;
        self.items.push((env, item));
        if let Some((left, right)) = self.insert_rec(self.root, id, env) {
            // Root split: grow the tree by one level.
            let new_root = self.nodes.len();
            let env = self.nodes[left].env.union(&self.nodes[right].env);
            self.nodes.push(Node {
                env,
                body: NodeBody::Inner(vec![left, right]),
            });
            self.root = new_root;
        }
    }

    /// Inserts an item that knows its envelope.
    pub fn insert(&mut self, item: T)
    where
        T: HasEnvelope,
    {
        self.insert_entry(item.envelope(), item);
    }

    fn insert_rec(&mut self, node_id: usize, entry: u32, env: Envelope) -> Option<(usize, usize)> {
        self.nodes[node_id].env = self.nodes[node_id].env.union(&env);
        let is_leaf = matches!(self.nodes[node_id].body, NodeBody::Leaf(_));
        if is_leaf {
            if let NodeBody::Leaf(entries) = &mut self.nodes[node_id].body {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_leaf(node_id));
                }
            }
            return None;
        }

        // Choose the child needing the least enlargement. A childless
        // inner node cannot arise from insertion, but the accessor
        // keeps the path infallible: with nothing to descend into,
        // nothing splits.
        let Some(child) = self.nodes[node_id]
            .body
            .children()
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ea = enlargement(&self.nodes[a].env, &env);
                let eb = enlargement(&self.nodes[b].env, &env);
                ea.total_cmp(&eb).then_with(|| {
                    self.nodes[a]
                        .env
                        .area()
                        .total_cmp(&self.nodes[b].env.area())
                })
            })
        else {
            return None;
        };

        if let Some((left, right)) = self.insert_rec(child, entry, env) {
            if let NodeBody::Inner(children) = &mut self.nodes[node_id].body {
                children.retain(|&c| c != child);
                children.push(left);
                children.push(right);
                if children.len() > MAX_ENTRIES {
                    return Some(self.split_inner(node_id));
                }
            }
        }
        None
    }

    fn split_leaf(&mut self, node_id: usize) -> (usize, usize) {
        let entries = self.nodes[node_id].body.take_leaf_entries();
        let envs: Vec<Envelope> = entries.iter().map(|&e| self.items[e as usize].0).collect();
        let (ga, gb) = quadratic_partition(&envs);
        let (a_ids, a_env) = collect_group(&entries, &envs, &ga);
        let (b_ids, b_env) = collect_group(&entries, &envs, &gb);
        self.nodes[node_id] = Node {
            env: a_env,
            body: NodeBody::Leaf(a_ids),
        };
        let right = self.nodes.len();
        self.nodes.push(Node {
            env: b_env,
            body: NodeBody::Leaf(b_ids),
        });
        (node_id, right)
    }

    fn split_inner(&mut self, node_id: usize) -> (usize, usize) {
        let children = self.nodes[node_id].body.take_inner_children();
        let envs: Vec<Envelope> = children.iter().map(|&c| self.nodes[c].env).collect();
        let (ga, gb) = quadratic_partition(&envs);
        let a_children: Vec<usize> = ga.iter().map(|&i| children[i]).collect();
        let b_children: Vec<usize> = gb.iter().map(|&i| children[i]).collect();
        let a_env = a_children
            .iter()
            .fold(Envelope::EMPTY, |e, &c| e.union(&self.nodes[c].env));
        let b_env = b_children
            .iter()
            .fold(Envelope::EMPTY, |e, &c| e.union(&self.nodes[c].env));
        self.nodes[node_id] = Node {
            env: a_env,
            body: NodeBody::Inner(a_children),
        };
        let right = self.nodes.len();
        self.nodes.push(Node {
            env: b_env,
            body: NodeBody::Inner(b_children),
        });
        (node_id, right)
    }

    /// Calls `visit` for every item whose envelope intersects `query`.
    pub fn for_each_intersecting<'a, F: FnMut(&'a T)>(&'a self, query: &Envelope, mut visit: F) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.env.intersects(query) {
                continue;
            }
            match &node.body {
                NodeBody::Leaf(entries) => {
                    for &e in entries {
                        let (env, item) = &self.items[e as usize];
                        if env.intersects(query) {
                            visit(item);
                        }
                    }
                }
                NodeBody::Inner(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// Collects references to all items intersecting `query`.
    pub fn query(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |t| out.push(t));
        out
    }

    /// Calls `visit` for every item whose envelope lies within `distance`
    /// of `p`.
    pub fn for_each_within_distance<'a, F: FnMut(&'a T)>(
        &'a self,
        p: Point,
        distance: f64,
        mut visit: F,
    ) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.env.distance_to_point(p) > distance {
                continue;
            }
            match &node.body {
                NodeBody::Leaf(entries) => {
                    for &e in entries {
                        let (env, item) = &self.items[e as usize];
                        if env.distance_to_point(p) <= distance {
                            visit(item);
                        }
                    }
                }
                NodeBody::Inner(children) => stack.extend_from_slice(children),
            }
        }
    }
}

fn enlargement(node: &Envelope, added: &Envelope) -> f64 {
    node.union(added).area() - node.area()
}

fn collect_group(entries: &[u32], envs: &[Envelope], group: &[usize]) -> (Vec<u32>, Envelope) {
    let ids: Vec<u32> = group.iter().map(|&i| entries[i]).collect();
    let env = group
        .iter()
        .fold(Envelope::EMPTY, |e, &i| e.union(&envs[i]));
    (ids, env)
}

/// Guttman's quadratic split: pick the pair of seeds wasting the most
/// area together, then greedily assign the rest by least enlargement,
/// respecting the minimum fill.
fn quadratic_partition(envs: &[Envelope]) -> (Vec<usize>, Vec<usize>) {
    let n = envs.len();
    if n < 2 {
        return ((0..n).collect(), Vec::new());
    }
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let waste = envs[i].union(&envs[j]).area() - envs[i].area() - envs[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut ga = vec![seed_a];
    let mut gb = vec![seed_b];
    let mut env_a = envs[seed_a];
    let mut env_b = envs[seed_b];
    #[allow(clippy::needless_range_loop)] // index used for group membership, not just envs
    for i in 0..n {
        if i == seed_a || i == seed_b {
            continue;
        }
        let remaining = n - ga.len() - gb.len();
        // Force-assign to meet the minimum fill.
        if ga.len() + remaining <= MIN_ENTRIES {
            ga.push(i);
            env_a = env_a.union(&envs[i]);
            continue;
        }
        if gb.len() + remaining <= MIN_ENTRIES {
            gb.push(i);
            env_b = env_b.union(&envs[i]);
            continue;
        }
        let da = enlargement(&env_a, &envs[i]);
        let db = enlargement(&env_b, &envs[i]);
        if da < db || (da == db && ga.len() <= gb.len()) {
            ga.push(i);
            env_a = env_a.union(&envs[i]);
        } else {
            gb.push(i);
            env_b = env_b.union(&envs[i]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_match_linear_scan() {
        let mut tree = DynamicRTree::new();
        let mut boxes = Vec::new();
        // Deterministic pseudo-random boxes.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        for id in 0..500usize {
            let x = next();
            let y = next();
            let e = Envelope::new(x, y, x + next() * 0.05, y + next() * 0.05);
            boxes.push((e, id));
            tree.insert_entry(e, id);
        }
        assert_eq!(tree.len(), 500);
        for query in [
            Envelope::new(10.0, 10.0, 30.0, 30.0),
            Envelope::new(0.0, 0.0, 100.0, 100.0),
            Envelope::new(200.0, 200.0, 300.0, 300.0),
        ] {
            let mut expected: Vec<usize> = boxes
                .iter()
                .filter(|(e, _)| e.intersects(&query))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_and_small_trees() {
        let tree: DynamicRTree<u32> = DynamicRTree::new();
        assert!(tree.is_empty());
        assert!(tree.query(&Envelope::new(0.0, 0.0, 1.0, 1.0)).is_empty());

        let mut one = DynamicRTree::new();
        one.insert_entry(Envelope::new(0.0, 0.0, 1.0, 1.0), 7u32);
        assert_eq!(one.query(&Envelope::new(0.5, 0.5, 0.6, 0.6)), vec![&7]);
    }

    #[test]
    fn within_distance_matches_linear_scan() {
        let mut tree = DynamicRTree::new();
        let mut boxes = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let e = Envelope::new(i as f64, j as f64, i as f64 + 0.5, j as f64 + 0.5);
                boxes.push((e, i * 20 + j));
                tree.insert_entry(e, i * 20 + j);
            }
        }
        let p = Point::new(10.0, 10.0);
        for d in [0.1, 1.0, 3.0] {
            let mut expected: Vec<i32> = boxes
                .iter()
                .filter(|(e, _)| e.distance_to_point(p) <= d)
                .map(|&(_, id)| id)
                .collect();
            let mut got = Vec::new();
            tree.for_each_within_distance(p, d, |&id| got.push(id));
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }
}
