//! Uniform grid index.
//!
//! The simplest filtering structure: items are binned into every grid
//! cell their envelope overlaps; a query visits the cells it overlaps.
//! Fast to build, but skew-sensitive — used as a baseline in the
//! indexing ablation bench.

use geom::{Envelope, HasEnvelope, Point};

/// A uniform `cols × rows` grid over a fixed extent.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    extent: Envelope,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<u32>>,
    items: Vec<(Envelope, T)>,
    /// Query-time visited stamps to avoid reporting an item once per
    /// overlapped cell. Interior mutability is avoided by keeping the
    /// stamp vector separate and versioned.
    stamp: std::cell::RefCell<(u32, Vec<u32>)>,
}

impl<T> GridIndex<T> {
    /// Builds a grid over `extent` with the given resolution from
    /// `(envelope, item)` pairs.
    pub fn build(extent: Envelope, cols: usize, rows: usize, entries: Vec<(Envelope, T)>) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        let cell_w = (extent.width() / cols as f64).max(f64::MIN_POSITIVE);
        let cell_h = (extent.height() / rows as f64).max(f64::MIN_POSITIVE);
        let mut cells = vec![Vec::new(); cols * rows];
        for (id, (env, _)) in entries.iter().enumerate() {
            if env.is_empty() {
                continue;
            }
            let (c0, r0, c1, r1) = cell_range(extent, cell_w, cell_h, cols, rows, env);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(id as u32);
                }
            }
        }
        let n = entries.len();
        GridIndex {
            extent,
            cols,
            rows,
            cell_w,
            cell_h,
            cells,
            items: entries,
            stamp: std::cell::RefCell::new((0, vec![0; n])),
        }
    }

    /// Builds from items that know their envelope.
    pub fn build_from(extent: Envelope, cols: usize, rows: usize, items: Vec<T>) -> Self
    where
        T: HasEnvelope,
    {
        let entries = items.into_iter().map(|t| (t.envelope(), t)).collect();
        Self::build(extent, cols, rows, entries)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Calls `visit` once per item whose envelope intersects `query`.
    ///
    /// The probe path reuses the versioned stamp vector allocated at
    /// build time, so queries themselves never allocate.
    // tidy:alloc-free:start
    pub fn for_each_intersecting<'a, F: FnMut(&'a T)>(&'a self, query: &Envelope, mut visit: F) {
        if self.items.is_empty() || !self.extent.intersects(query) {
            return;
        }
        let clipped = self.extent.intersection(query);
        let (c0, r0, c1, r1) = cell_range(
            self.extent,
            self.cell_w,
            self.cell_h,
            self.cols,
            self.rows,
            &clipped,
        );
        let mut stamp = self.stamp.borrow_mut();
        stamp.0 += 1;
        let version = stamp.0;
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &id in &self.cells[r * self.cols + c] {
                    if stamp.1[id as usize] == version {
                        continue;
                    }
                    stamp.1[id as usize] = version;
                    let (env, item) = &self.items[id as usize];
                    if env.intersects(query) {
                        visit(item);
                    }
                }
            }
        }
    }
    // tidy:alloc-free:end

    /// Collects all items intersecting `query`.
    pub fn query(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |t| out.push(t));
        out
    }

    /// Calls `visit` once per item within `distance` of `p` (by envelope).
    pub fn for_each_within_distance<'a, F: FnMut(&'a T)>(
        &'a self,
        p: Point,
        distance: f64,
        visit: F,
    ) {
        let probe = Envelope::of_point(p).expanded_by(distance);
        self.for_each_intersecting(&probe, visit);
    }
}

#[allow(clippy::too_many_arguments)]
fn cell_range(
    extent: Envelope,
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    env: &Envelope,
) -> (usize, usize, usize, usize) {
    let clamp = |v: f64, hi: usize| (v as isize).clamp(0, hi as isize - 1) as usize;
    let c0 = clamp((env.min_x - extent.min_x) / cell_w, cols);
    let c1 = clamp((env.max_x - extent.min_x) / cell_w, cols);
    let r0 = clamp((env.min_y - extent.min_y) / cell_h, rows);
    let r1 = clamp((env.max_y - extent.min_y) / cell_h, rows);
    (c0, r0, c1, r1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_matches_linear_scan_and_dedups() {
        let extent = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let mut entries = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                // Boxes deliberately spanning multiple cells.
                let e = Envelope::new(i as f64, j as f64, i as f64 + 1.5, j as f64 + 1.5);
                entries.push((e, i * 10 + j));
            }
        }
        let grid = GridIndex::build(extent, 8, 8, entries.clone());
        assert_eq!(grid.len(), 100);
        for query in [
            Envelope::new(2.2, 2.2, 4.7, 4.7),
            Envelope::new(-5.0, -5.0, 0.5, 0.5),
            Envelope::new(9.9, 9.9, 20.0, 20.0),
        ] {
            let mut expected: Vec<i32> = entries
                .iter()
                .filter(|(e, _)| e.intersects(&query))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<i32> = grid.query(&query).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "query {query:?}");
        }
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let extent = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let grid = GridIndex::build(extent, 4, 4, vec![(Envelope::new(0.1, 0.1, 0.2, 0.2), 1u8)]);
        assert!(grid.query(&Envelope::new(5.0, 5.0, 6.0, 6.0)).is_empty());
        assert!(!grid.is_empty());
    }

    #[test]
    fn within_distance_via_expanded_probe() {
        let extent = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let entries = vec![
            (Envelope::new(1.0, 1.0, 2.0, 2.0), 'a'),
            (Envelope::new(8.0, 8.0, 9.0, 9.0), 'b'),
        ];
        let grid = GridIndex::build(extent, 5, 5, entries);
        let mut hits = Vec::new();
        grid.for_each_within_distance(Point::new(0.0, 0.0), 2.0, |&c| hits.push(c));
        assert_eq!(hits, vec!['a']);
    }
}
