//! # rtree — spatial indexing
//!
//! Index structures for the *spatial filtering* phase of the joins:
//!
//! * [`RTree`] — an STR (Sort-Tile-Recursive) bulk-loaded R-tree, the
//!   analogue of JTS's `STRtree` that SpatialSpark broadcasts (Fig. 2 of
//!   the paper) and of the in-memory R-tree ISP-MC builds from the
//!   broadcast right-side table (§IV).
//! * [`DynamicRTree`] — a Guttman-style insertion R-tree (quadratic
//!   split), used as an ablation baseline against bulk loading.
//! * [`GridIndex`] — a uniform grid, the simplest filtering structure.
//! * [`QuadTreePartitioner`] — a quadtree that splits space until every
//!   cell holds at most a target number of samples; used to derive
//!   balanced spatial partitions for partitioned joins.

pub mod dynamic;
pub mod grid;
pub mod partitioner;
pub mod probe;
pub mod quadtree;
pub mod str_tree;

pub use dynamic::DynamicRTree;
pub use grid::GridIndex;
pub use partitioner::{FixedGridPartitioner, SpatialPartitioner, StrPartitioner};
pub use probe::probe_with;
pub use quadtree::QuadTreePartitioner;
pub use str_tree::RTree;
