//! Spatial partitioners — the space-decomposition strategies of the
//! partitioned-join systems the paper discusses in §II (SpatialHadoop
//! partitions both sides; HadoopGIS reorders by partition key).
//!
//! All partitioners produce cells that **tile** their extent: every
//! point belongs to exactly one cell, so a point within distance `r` of
//! a geometry always lives in a cell intersecting that geometry's
//! `r`-expanded envelope — the invariant the partitioned joins rely on.

use geom::{Envelope, Point};

use crate::quadtree::QuadTreePartitioner;

/// A space decomposition into cells.
pub trait SpatialPartitioner {
    /// The cell rectangles.
    fn cells(&self) -> &[Envelope];

    /// The cell owning a point, if the point is inside the extent.
    fn cell_of(&self, p: Point) -> Option<usize>;

    /// All cells whose rectangle intersects the envelope (routing for
    /// replicated right-side geometries).
    fn cells_intersecting(&self, env: &Envelope) -> Vec<usize> {
        self.cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.intersects(env))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of cells.
    fn num_cells(&self) -> usize {
        self.cells().len()
    }
}

impl SpatialPartitioner for QuadTreePartitioner {
    fn cells(&self) -> &[Envelope] {
        self.partitions()
    }

    fn cell_of(&self, p: Point) -> Option<usize> {
        self.partition_of(p)
    }
}

/// A uniform `cols × rows` grid over a fixed extent — the simplest
/// decomposition, skew-oblivious.
#[derive(Debug, Clone)]
pub struct FixedGridPartitioner {
    extent: Envelope,
    cols: usize,
    rows: usize,
    cells: Vec<Envelope>,
}

impl FixedGridPartitioner {
    /// Builds a grid partitioner.
    pub fn new(extent: Envelope, cols: usize, rows: usize) -> FixedGridPartitioner {
        assert!(cols > 0 && rows > 0, "grid needs at least one cell");
        let w = extent.width() / cols as f64;
        let h = extent.height() / rows as f64;
        let mut cells = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                cells.push(Envelope::new(
                    extent.min_x + c as f64 * w,
                    extent.min_y + r as f64 * h,
                    if c == cols - 1 {
                        extent.max_x
                    } else {
                        extent.min_x + (c + 1) as f64 * w
                    },
                    if r == rows - 1 {
                        extent.max_y
                    } else {
                        extent.min_y + (r + 1) as f64 * h
                    },
                ));
            }
        }
        FixedGridPartitioner {
            extent,
            cols,
            rows,
            cells,
        }
    }
}

impl SpatialPartitioner for FixedGridPartitioner {
    fn cells(&self) -> &[Envelope] {
        &self.cells
    }

    fn cell_of(&self, p: Point) -> Option<usize> {
        if !self.extent.contains(p.x, p.y) {
            return None;
        }
        let w = self.extent.width() / self.cols as f64;
        let h = self.extent.height() / self.rows as f64;
        let c = (((p.x - self.extent.min_x) / w) as usize).min(self.cols - 1);
        let r = (((p.y - self.extent.min_y) / h) as usize).min(self.rows - 1);
        Some(r * self.cols + c)
    }
}

/// Sort-Tile-Recursive partitioner — SpatialHadoop's default strategy:
/// a sample is sorted by x into vertical slices; each slice is sorted
/// by y and cut into cells of roughly equal point counts. Slice and
/// cell boundaries are placed at sample midpoints and stretched to the
/// extent, so the cells tile space while adapting to skew.
#[derive(Debug, Clone)]
pub struct StrPartitioner {
    /// x-boundaries of the vertical slices (`num_slices + 1` entries).
    x_bounds: Vec<f64>,
    /// Per slice: its y-boundaries (`cells_in_slice + 1` entries).
    y_bounds: Vec<Vec<f64>>,
    /// Flattened cells, row-major within slices.
    cells: Vec<Envelope>,
    /// Start index of each slice's cells within `cells`.
    slice_offsets: Vec<usize>,
    extent: Envelope,
}

impl StrPartitioner {
    /// Builds an STR partitioner targeting `target_cells` cells from a
    /// point sample. Falls back to a single cell for tiny samples.
    pub fn build(extent: Envelope, sample: &[Point], target_cells: usize) -> StrPartitioner {
        let target_cells = target_cells.max(1);
        let num_slices = (target_cells as f64).sqrt().ceil() as usize;
        let cells_per_slice = target_cells.div_ceil(num_slices);

        let mut xs: Vec<Point> = sample.to_vec();
        xs.sort_by(|a, b| a.x.total_cmp(&b.x));

        let mut x_bounds = Vec::with_capacity(num_slices + 1);
        x_bounds.push(extent.min_x);
        let per_slice = xs.len().div_ceil(num_slices).max(1);
        for s in 1..num_slices {
            let i = s * per_slice;
            if i >= xs.len() {
                break;
            }
            // Midpoint between neighbouring sample points keeps every
            // sample strictly inside one slice.
            let b = (xs[i - 1].x + xs[i].x) * 0.5;
            let last = x_bounds.last().copied().unwrap_or(extent.min_x);
            x_bounds.push(b.max(last)); // monotone even with duplicates
        }
        x_bounds.push(extent.max_x);

        let actual_slices = x_bounds.len() - 1;
        let mut y_bounds = Vec::with_capacity(actual_slices);
        let mut cells = Vec::new();
        let mut slice_offsets = Vec::with_capacity(actual_slices);
        for s in 0..actual_slices {
            let (x0, x1) = (x_bounds[s], x_bounds[s + 1]);
            let mut ys: Vec<f64> = xs
                .iter()
                .filter(|p| p.x >= x0 && (p.x < x1 || s == actual_slices - 1))
                .map(|p| p.y)
                .collect();
            ys.sort_by(f64::total_cmp);
            let mut yb = Vec::with_capacity(cells_per_slice + 1);
            yb.push(extent.min_y);
            let per_cell = ys.len().div_ceil(cells_per_slice).max(1);
            for k in 1..cells_per_slice {
                let i = k * per_cell;
                if i >= ys.len() {
                    break;
                }
                let b = (ys[i - 1] + ys[i]) * 0.5;
                let last = yb.last().copied().unwrap_or(extent.min_y);
                yb.push(b.max(last));
            }
            yb.push(extent.max_y);

            slice_offsets.push(cells.len());
            for k in 0..yb.len() - 1 {
                cells.push(Envelope::new(x0, yb[k], x1, yb[k + 1]));
            }
            y_bounds.push(yb);
        }

        StrPartitioner {
            x_bounds,
            y_bounds,
            cells,
            slice_offsets,
            extent,
        }
    }

    fn slice_of(&self, x: f64) -> usize {
        // Binary search over monotone boundaries; boundary points go to
        // the right slice of the boundary, except the extent max.
        let n = self.x_bounds.len() - 1;
        let mut lo = 0usize;
        let mut hi = n - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if x >= self.x_bounds[mid] {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

impl SpatialPartitioner for StrPartitioner {
    fn cells(&self) -> &[Envelope] {
        &self.cells
    }

    fn cell_of(&self, p: Point) -> Option<usize> {
        if !self.extent.contains(p.x, p.y) {
            return None;
        }
        let s = self.slice_of(p.x);
        let yb = &self.y_bounds[s];
        let mut lo = 0usize;
        let mut hi = yb.len() - 2;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if p.y >= yb[mid] {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(self.slice_offsets[s] + lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Point> {
        // Skewed: dense cluster + sparse background.
        let mut pts = Vec::new();
        for i in 0..300 {
            pts.push(Point::new(
                10.0 + (i % 17) as f64 * 0.1,
                10.0 + (i % 23) as f64 * 0.1,
            ));
        }
        for i in 0..100 {
            pts.push(Point::new((i * 97 % 100) as f64, (i * 31 % 100) as f64));
        }
        pts
    }

    fn check_tiling<P: SpatialPartitioner>(p: &P, extent: Envelope) {
        // Cells tile the extent: areas sum and every probe point has
        // exactly one owner whose cell contains it.
        let total: f64 = p.cells().iter().map(Envelope::area).sum();
        assert!(
            (total - extent.area()).abs() < 1e-6 * extent.area().max(1.0),
            "cells must tile the extent: {total} vs {}",
            extent.area()
        );
        for i in 0..40 {
            for j in 0..40 {
                let pt = Point::new(
                    extent.min_x + extent.width() * (i as f64 + 0.5) / 40.0,
                    extent.min_y + extent.height() * (j as f64 + 0.5) / 40.0,
                );
                let owner = p.cell_of(pt).expect("interior point must have an owner");
                assert!(
                    p.cells()[owner].contains(pt.x, pt.y),
                    "owner cell must contain the point"
                );
            }
        }
    }

    #[test]
    fn fixed_grid_tiles_and_routes() {
        let extent = Envelope::new(0.0, 0.0, 100.0, 50.0);
        let g = FixedGridPartitioner::new(extent, 8, 4);
        assert_eq!(g.num_cells(), 32);
        check_tiling(&g, extent);
        assert_eq!(g.cell_of(Point::new(-1.0, 0.0)), None);
        // Envelope routing covers every overlapped cell.
        let hits = g.cells_intersecting(&Envelope::new(0.0, 0.0, 100.0, 50.0));
        assert_eq!(hits.len(), 32);
    }

    #[test]
    fn str_partitioner_tiles_and_adapts_to_skew() {
        let extent = Envelope::new(0.0, 0.0, 100.0, 100.0);
        let s = StrPartitioner::build(extent, &sample(), 16);
        assert!(s.num_cells() >= 8, "got {} cells", s.num_cells());
        check_tiling(&s, extent);
        // Skew adaptation: the cell containing the dense cluster centre
        // is much smaller than the average cell.
        let dense = s.cell_of(Point::new(10.5, 10.5)).unwrap();
        let avg_area = extent.area() / s.num_cells() as f64;
        assert!(
            s.cells()[dense].area() < avg_area,
            "dense cell {} should be below average {}",
            s.cells()[dense].area(),
            avg_area
        );
    }

    #[test]
    fn str_handles_degenerate_samples() {
        let extent = Envelope::new(0.0, 0.0, 1.0, 1.0);
        // Empty sample → one cell covering the extent.
        let s = StrPartitioner::build(extent, &[], 8);
        check_tiling(&s, extent);
        assert!(s.cell_of(Point::new(0.5, 0.5)).is_some());
        // All-identical sample must not produce empty or inverted cells.
        let same = vec![Point::new(0.3, 0.3); 50];
        let s2 = StrPartitioner::build(extent, &same, 9);
        check_tiling(&s2, extent);
    }

    #[test]
    fn every_sample_point_is_owned_by_its_containing_cell() {
        let extent = Envelope::new(0.0, 0.0, 100.0, 100.0);
        let pts = sample();
        let s = StrPartitioner::build(extent, &pts, 25);
        for p in &pts {
            let owner = s.cell_of(*p).unwrap();
            assert!(s.cells()[owner].contains(p.x, p.y));
        }
    }

    #[test]
    fn quadtree_implements_the_trait() {
        let extent = Envelope::new(0.0, 0.0, 100.0, 100.0);
        let qt = QuadTreePartitioner::build(extent, &sample(), 50, 8);
        check_tiling(&qt, extent);
        let all = qt.cells_intersecting(&extent);
        assert_eq!(all.len(), qt.num_cells());
    }
}
