//! Engine-generic single-point probe against a broadcast R-tree.
//!
//! This is the one copy of the filter-refine inner loop shared by the
//! serial join driver (`core::join`), the morsel-parallel executor
//! (`core::parallel`) and the Impala-style row-batch probe
//! (`impalite::exec`). Entry envelopes are expected to have been
//! expanded by the predicate's filter radius at build time, so the
//! query itself uses radius zero.

use geom::engine::{RefinementEngine, SpatialPredicate};
use geom::Point;

use crate::RTree;

/// Probes the index with one point, appending `(left_id, right_id)`
/// matches to `out`.
///
/// `resolve` maps a stored tree payload to the right-side record id and
/// its prepared geometry — callers store either the pair inline
/// (`(i64, E::Prepared)`) or a `u32` index into a shared prepared set.
/// For [`SpatialPredicate::Nearest`] the arg-min over candidates is
/// applied here: at most one pair is emitted per point, ties broken by
/// the smaller right id.
#[inline]
pub fn probe_with<'t, T, E, R>(
    tree: &'t RTree<T>,
    predicate: SpatialPredicate,
    engine: &E,
    left_id: i64,
    p: Point,
    resolve: R,
    out: &mut Vec<(i64, i64)>,
) where
    E: RefinementEngine,
    E::Prepared: 't,
    R: Fn(&'t T) -> (i64, &'t E::Prepared),
{
    // The hot loop of every join in the workspace: one refinement call
    // per candidate surviving the envelope filter, zero allocation.
    // Node/candidate/accept counts accumulate in locals and flush
    // through a single thread-local access per probe.
    // tidy:alloc-free:start
    let mut candidates: u64 = 0;
    let mut accepts: u64 = 0;
    if let SpatialPredicate::Nearest(d) = predicate {
        let mut best: Option<(f64, i64)> = None;
        let nodes = tree.for_each_within_distance(p, 0.0, |payload| {
            let (rid, target) = resolve(payload);
            candidates += 1;
            let dist = engine.distance(p, target);
            if dist <= d {
                accepts += 1;
                let better = match best {
                    None => true,
                    Some((bd, bid)) => dist < bd || (dist == bd && rid < bid),
                };
                if better {
                    best = Some((dist, rid));
                }
            }
        });
        if let Some((_, rid)) = best {
            out.push((left_id, rid));
        }
        obs::probe_counts(nodes, candidates, accepts);
        return;
    }
    let nodes = tree.for_each_within_distance(p, 0.0, |payload| {
        let (rid, target) = resolve(payload);
        candidates += 1;
        if predicate.eval(engine, p, target) {
            accepts += 1;
            out.push((left_id, rid));
        }
    });
    obs::probe_counts(nodes, candidates, accepts);
    // tidy:alloc-free:end
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::engine::PreparedEngine;
    use geom::{Envelope, HasEnvelope};

    fn line_tree(
        engine: &PreparedEngine,
        radius: f64,
    ) -> RTree<(i64, <PreparedEngine as RefinementEngine>::Prepared)> {
        let lines = [
            (10i64, "LINESTRING (0 0, 10 0)"),
            (11i64, "LINESTRING (0 4, 10 4)"),
        ];
        let entries = lines
            .iter()
            .map(|&(id, wkt)| {
                let g = geom::wkt::parse(wkt).unwrap();
                (g.envelope().expanded_by(radius), (id, engine.prepare(&g)))
            })
            .collect();
        RTree::bulk_load_entries(entries)
    }

    #[test]
    fn nearest_emits_single_argmin_pair() {
        let engine = PreparedEngine;
        let tree = line_tree(&engine, 5.0);
        let mut out = Vec::new();
        // y=1 is nearer to the y=0 line.
        probe_with(
            &tree,
            SpatialPredicate::Nearest(5.0),
            &engine,
            7,
            Point::new(5.0, 1.0),
            |(rid, t)| (*rid, t),
            &mut out,
        );
        assert_eq!(out, vec![(7, 10)]);
    }

    #[test]
    fn nearest_tie_breaks_by_smaller_right_id() {
        let engine = PreparedEngine;
        let tree = line_tree(&engine, 5.0);
        let mut out = Vec::new();
        // y=2 is equidistant from both lines.
        probe_with(
            &tree,
            SpatialPredicate::Nearest(5.0),
            &engine,
            7,
            Point::new(5.0, 2.0),
            |(rid, t)| (*rid, t),
            &mut out,
        );
        assert_eq!(out, vec![(7, 10)]);
    }

    #[test]
    fn nearestd_emits_every_candidate_in_range() {
        let engine = PreparedEngine;
        let tree = line_tree(&engine, 3.0);
        let mut out = Vec::new();
        probe_with(
            &tree,
            SpatialPredicate::NearestD(3.0),
            &engine,
            7,
            Point::new(5.0, 2.0),
            |(rid, t)| (*rid, t),
            &mut out,
        );
        out.sort_unstable();
        assert_eq!(out, vec![(7, 10), (7, 11)]);
    }

    #[test]
    fn resolver_can_indirect_through_indices() {
        let engine = PreparedEngine;
        let g = geom::wkt::parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        let prepared = vec![engine.prepare(&g)];
        let ids = vec![42i64];
        let tree: RTree<u32> =
            RTree::bulk_load_entries(vec![(Envelope::new(0.0, 0.0, 4.0, 4.0), 0u32)]);
        let mut out = Vec::new();
        probe_with(
            &tree,
            SpatialPredicate::Within,
            &engine,
            1,
            Point::new(2.0, 2.0),
            |&i| (ids[i as usize], &prepared[i as usize]),
            &mut out,
        );
        assert_eq!(out, vec![(1, 42)]);
    }
}
