//! Quadtree space partitioner.
//!
//! Splits the extent recursively until every leaf holds at most
//! `max_per_cell` of the supplied sample points, then emits the leaf
//! rectangles as partition envelopes. This is how SpatialHadoop-style
//! systems derive balanced spatial partitions, and it backs the
//! partitioned-join path of this reproduction.

use geom::{Envelope, Point};

/// A built partitioner: a list of leaf cells covering the extent.
#[derive(Debug, Clone)]
pub struct QuadTreePartitioner {
    extent: Envelope,
    leaves: Vec<Envelope>,
}

impl QuadTreePartitioner {
    /// Builds the partitioner from sample points.
    ///
    /// `max_per_cell` bounds leaf occupancy; `max_depth` bounds recursion
    /// (protects against many coincident points).
    pub fn build(
        extent: Envelope,
        sample: &[Point],
        max_per_cell: usize,
        max_depth: usize,
    ) -> QuadTreePartitioner {
        assert!(max_per_cell > 0, "max_per_cell must be positive");
        let mut leaves = Vec::new();
        let idx: Vec<u32> = (0..sample.len() as u32).collect();
        subdivide(extent, sample, &idx, max_per_cell, max_depth, &mut leaves);
        QuadTreePartitioner { extent, leaves }
    }

    /// The partition envelopes (leaves of the quadtree).
    pub fn partitions(&self) -> &[Envelope] {
        &self.leaves
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Always false: a built partitioner has at least one leaf.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The partition containing the point, if any. Points exactly on a
    /// shared boundary are assigned to the first (lowest-id) matching
    /// cell so every point maps to exactly one partition.
    pub fn partition_of(&self, p: Point) -> Option<usize> {
        if !self.extent.contains(p.x, p.y) {
            return None;
        }
        self.leaves.iter().position(|e| e.contains(p.x, p.y))
    }

    /// All partitions whose envelope intersects `env` — used to route a
    /// polygon/polyline (which may span several cells) to every partition
    /// it overlaps.
    pub fn partitions_intersecting(&self, env: &Envelope) -> Vec<usize> {
        self.leaves
            .iter()
            .enumerate()
            .filter(|(_, e)| e.intersects(env))
            .map(|(i, _)| i)
            .collect()
    }
}

fn subdivide(
    cell: Envelope,
    sample: &[Point],
    members: &[u32],
    max_per_cell: usize,
    depth_left: usize,
    out: &mut Vec<Envelope>,
) {
    if members.len() <= max_per_cell || depth_left == 0 {
        out.push(cell);
        return;
    }
    let cx = (cell.min_x + cell.max_x) * 0.5;
    let cy = (cell.min_y + cell.max_y) * 0.5;
    let quads = [
        Envelope::new(cell.min_x, cell.min_y, cx, cy),
        Envelope::new(cx, cell.min_y, cell.max_x, cy),
        Envelope::new(cell.min_x, cy, cx, cell.max_y),
        Envelope::new(cx, cy, cell.max_x, cell.max_y),
    ];
    for (qi, q) in quads.iter().enumerate() {
        // Assign boundary points to exactly one quadrant: strict upper
        // bounds except on the extent's own max edges.
        let subset: Vec<u32> = members
            .iter()
            .copied()
            .filter(|&i| {
                let p = sample[i as usize];
                let in_x = if qi % 2 == 0 {
                    p.x >= q.min_x && p.x < q.max_x
                } else {
                    p.x >= q.min_x && p.x <= q.max_x
                };
                let in_y = if qi < 2 {
                    p.y >= q.min_y && p.y < q.max_y
                } else {
                    p.y >= q.min_y && p.y <= q.max_y
                };
                in_x && in_y
            })
            .collect();
        subdivide(*q, sample, &subset, max_per_cell, depth_left - 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, cx: f64, cy: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(cx + (i % 10) as f64 * 0.001, cy + (i / 10) as f64 * 0.001))
            .collect()
    }

    #[test]
    fn splits_until_bounded() {
        let extent = Envelope::new(0.0, 0.0, 100.0, 100.0);
        let mut pts = cluster(100, 10.0, 10.0);
        pts.extend(cluster(100, 90.0, 90.0));
        let qt = QuadTreePartitioner::build(extent, &pts, 30, 16);
        assert!(qt.len() >= 4, "skewed data should force splits");
        // Every sample point maps to exactly one partition.
        for p in &pts {
            assert!(qt.partition_of(*p).is_some());
        }
    }

    #[test]
    fn uniform_small_sample_keeps_one_cell() {
        let extent = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let pts = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)];
        let qt = QuadTreePartitioner::build(extent, &pts, 10, 16);
        assert_eq!(qt.len(), 1);
        assert_eq!(qt.partitions()[0], extent);
    }

    #[test]
    fn partitions_cover_extent_disjointly() {
        let extent = Envelope::new(0.0, 0.0, 64.0, 64.0);
        let pts: Vec<Point> = (0..512)
            .map(|i| Point::new((i * 7 % 64) as f64 + 0.5, (i * 13 % 64) as f64 + 0.5))
            .collect();
        let qt = QuadTreePartitioner::build(extent, &pts, 20, 16);
        // Total area of leaves equals the extent area (they tile it).
        let total: f64 = qt.partitions().iter().map(Envelope::area).sum();
        assert!((total - extent.area()).abs() < 1e-6);
        // Interior points land in exactly one cell under partition_of.
        for p in &pts {
            let owner = qt.partition_of(*p).unwrap();
            assert!(qt.partitions()[owner].contains(p.x, p.y));
        }
    }

    #[test]
    fn depth_limit_stops_coincident_point_recursion() {
        let extent = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let pts = vec![Point::new(0.5, 0.5); 100];
        let qt = QuadTreePartitioner::build(extent, &pts, 2, 4);
        assert!(qt.len() <= 4usize.pow(4));
    }

    #[test]
    fn outside_point_has_no_partition() {
        let extent = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let qt = QuadTreePartitioner::build(extent, &[], 10, 4);
        assert_eq!(qt.partition_of(Point::new(2.0, 2.0)), None);
        assert!(qt.partition_of(Point::new(0.5, 0.5)).is_some());
    }

    #[test]
    fn envelope_routing_hits_overlapping_cells() {
        let extent = Envelope::new(0.0, 0.0, 2.0, 2.0);
        // Force a split with a dense cluster.
        let pts = cluster(200, 0.1, 0.1);
        let qt = QuadTreePartitioner::build(extent, &pts, 20, 8);
        let spanning = Envelope::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(qt.partitions_intersecting(&spanning).len(), qt.len());
    }
}
