//! STR (Sort-Tile-Recursive) bulk-loaded R-tree.
//!
//! Leonardi et al.'s STR packing: sort entries by centre x, cut into
//! vertical slices, sort each slice by centre y, pack runs of `M` into
//! leaves; repeat one level up until a single root remains. The result is
//! a static, cache-friendly arena of nodes with contiguous children —
//! ideal for the build-once/probe-many broadcast joins both systems in
//! the paper run.

use geom::{Envelope, HasEnvelope, Point};

/// Maximum entries per node.
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    env: Envelope,
    /// Range into `entries` for leaves, into `nodes` for inner nodes.
    first: u32,
    count: u16,
    is_leaf: bool,
}

/// A static R-tree over items of type `T`.
///
/// Items are stored by value, permuted into leaf order so a leaf scan is
/// one contiguous read.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    entries: Vec<(Envelope, T)>,
    nodes: Vec<Node>,
    root: u32,
    height: usize,
}

impl<T> RTree<T> {
    /// Bulk-loads a tree from `(envelope, item)` pairs.
    pub fn bulk_load_entries(mut entries: Vec<(Envelope, T)>) -> RTree<T> {
        if entries.is_empty() {
            return RTree {
                entries,
                nodes: vec![Node {
                    env: Envelope::EMPTY,
                    first: 0,
                    count: 0,
                    is_leaf: true,
                }],
                root: 0,
                height: 1,
            };
        }

        // --- pack leaves with STR ---
        str_order(&mut entries, |e| e.0.center());
        let mut nodes: Vec<Node> = Vec::with_capacity(2 * entries.len() / NODE_CAPACITY + 2);
        let mut level: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < entries.len() {
            let count = NODE_CAPACITY.min(entries.len() - i);
            let env = entries[i..i + count]
                .iter()
                .fold(Envelope::EMPTY, |acc, e| acc.union(&e.0));
            nodes.push(Node {
                env,
                first: i as u32,
                count: count as u16,
                is_leaf: true,
            });
            level.push((nodes.len() - 1) as u32);
            i += count;
        }
        let mut height = 1;

        // --- build upper levels ---
        while level.len() > 1 {
            // Re-apply STR ordering to the node centres of this level.
            let mut keyed: Vec<(Point, u32)> = level
                .iter()
                .map(|&id| (nodes[id as usize].env.center(), id))
                .collect();
            str_order(&mut keyed, |k| k.0);
            let ordered: Vec<u32> = keyed.into_iter().map(|(_, id)| id).collect();

            let mut next_level = Vec::with_capacity(ordered.len() / NODE_CAPACITY + 1);
            let mut j = 0;
            while j < ordered.len() {
                let count = NODE_CAPACITY.min(ordered.len() - j);
                // Children must be contiguous in the arena: copy them to
                // the end, then point the parent at the copies.
                let first = nodes.len() as u32;
                let mut env = Envelope::EMPTY;
                for k in 0..count {
                    let child = nodes[ordered[j + k] as usize].clone();
                    env = env.union(&child.env);
                    nodes.push(child);
                }
                nodes.push(Node {
                    env,
                    first,
                    count: count as u16,
                    is_leaf: false,
                });
                next_level.push((nodes.len() - 1) as u32);
                j += count;
            }
            level = next_level;
            height += 1;
        }

        RTree {
            entries,
            nodes,
            root: level[0],
            height,
        }
    }

    /// Bulk-loads from items that know their own envelope.
    pub fn bulk_load(items: Vec<T>) -> RTree<T>
    where
        T: HasEnvelope,
    {
        let entries = items.into_iter().map(|t| (t.envelope(), t)).collect();
        RTree::bulk_load_entries(entries)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tree height in levels (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Envelope of everything in the tree.
    pub fn root_envelope(&self) -> Envelope {
        self.nodes[self.root as usize].env
    }

    // This probe loop (and `for_each_within_distance` below) is the
    // filter step of every join in the workspace: a fixed-size explicit
    // stack, no heap traffic per probe. `query` (between the regions)
    // is the allocating convenience wrapper.
    // tidy:alloc-free:start

    /// Calls `visit` for every item whose envelope intersects `query`.
    pub fn for_each_intersecting<'a, F: FnMut(&'a T)>(&'a self, query: &Envelope, mut visit: F) {
        if self.entries.is_empty() {
            return;
        }
        // Explicit stack; tree heights are tiny (< 8 for 10M items).
        let mut stack = [0u32; 64];
        let mut sp = 0;
        stack[sp] = self.root;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let node = &self.nodes[stack[sp] as usize];
            if !node.env.intersects(query) {
                continue;
            }
            let first = node.first as usize;
            let count = node.count as usize;
            if node.is_leaf {
                for (env, item) in &self.entries[first..first + count] {
                    if env.intersects(query) {
                        visit(item);
                    }
                }
            } else {
                for child in first..first + count {
                    stack[sp] = child as u32;
                    sp += 1;
                }
            }
        }
    }
    // tidy:alloc-free:end

    /// Collects references to all items intersecting `query`.
    pub fn query(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |t| out.push(t));
        out
    }

    // tidy:alloc-free:start
    /// Calls `visit` for every item whose envelope lies within `distance`
    /// of `p` — the filtering step of the `NearestD` joins. Returns the
    /// number of nodes popped; the caller folds it into its own obs
    /// flush (`probe_with` pays one TLS access per point, not two).
    pub fn for_each_within_distance<'a, F: FnMut(&'a T)>(
        &'a self,
        p: Point,
        distance: f64,
        mut visit: F,
    ) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let mut stack = [0u32; 64];
        let mut sp = 0;
        stack[sp] = self.root;
        sp += 1;
        let mut visited: u64 = 0;
        while sp > 0 {
            sp -= 1;
            visited += 1;
            let node = &self.nodes[stack[sp] as usize];
            if node.env.distance_to_point(p) > distance {
                continue;
            }
            let first = node.first as usize;
            let count = node.count as usize;
            if node.is_leaf {
                for (env, item) in &self.entries[first..first + count] {
                    if env.distance_to_point(p) <= distance {
                        visit(item);
                    }
                }
            } else {
                for child in first..first + count {
                    stack[sp] = child as u32;
                    sp += 1;
                }
            }
        }
        visited
    }
    // tidy:alloc-free:end

    /// Best-first nearest-neighbour search with a caller-supplied exact
    /// distance. `exact(item)` must be ≥ the envelope lower bound (true
    /// for any metric distance to geometry inside the envelope).
    pub fn nearest_by<F: FnMut(&T) -> f64>(&self, p: Point, mut exact: F) -> Option<(&T, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.entries.is_empty() {
            return None;
        }

        #[derive(PartialEq)]
        struct Cand(f64, u32, bool); // (lower bound, node or entry id, is_entry)
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Cand(
            self.nodes[self.root as usize].env.distance_to_point(p),
            self.root,
            false,
        )));
        let mut best: Option<(u32, f64)> = None;

        while let Some(Reverse(Cand(lower, id, is_entry))) = heap.pop() {
            if let Some((_, bd)) = best {
                if lower > bd {
                    break;
                }
            }
            if is_entry {
                let d = exact(&self.entries[id as usize].1);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((id, d));
                }
                continue;
            }
            let node = &self.nodes[id as usize];
            let first = node.first as usize;
            let count = node.count as usize;
            if node.is_leaf {
                for e in first..first + count {
                    heap.push(Reverse(Cand(
                        self.entries[e].0.distance_to_point(p),
                        e as u32,
                        true,
                    )));
                }
            } else {
                for child in first..first + count {
                    heap.push(Reverse(Cand(
                        self.nodes[child].env.distance_to_point(p),
                        child as u32,
                        false,
                    )));
                }
            }
        }
        best.map(|(id, d)| (&self.entries[id as usize].1, d))
    }

    /// Best-first k-nearest-neighbour search with a caller-supplied
    /// exact distance, generalising [`RTree::nearest_by`]. Returns up to
    /// `k` items ordered by ascending distance.
    pub fn nearest_k_by<F: FnMut(&T) -> f64>(
        &self,
        p: Point,
        k: usize,
        mut exact: F,
    ) -> Vec<(&T, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.entries.is_empty() || k == 0 {
            return Vec::new();
        }

        #[derive(PartialEq)]
        struct Cand(f64, u32, bool);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Cand(
            self.nodes[self.root as usize].env.distance_to_point(p),
            self.root,
            false,
        )));
        let mut results: Vec<(u32, f64)> = Vec::with_capacity(k);

        while let Some(Reverse(Cand(lower, id, is_entry))) = heap.pop() {
            if results.len() == k && lower > results[results.len() - 1].1 {
                break;
            }
            if is_entry {
                let d = exact(&self.entries[id as usize].1);
                let pos = results
                    .binary_search_by(|(_, rd)| rd.total_cmp(&d))
                    .unwrap_or_else(|e| e);
                if pos < k {
                    results.insert(pos, (id, d));
                    results.truncate(k);
                }
                continue;
            }
            let node = &self.nodes[id as usize];
            let first = node.first as usize;
            let count = node.count as usize;
            if node.is_leaf {
                for e in first..first + count {
                    heap.push(Reverse(Cand(
                        self.entries[e].0.distance_to_point(p),
                        e as u32,
                        true,
                    )));
                }
            } else {
                for child in first..first + count {
                    heap.push(Reverse(Cand(
                        self.nodes[child].env.distance_to_point(p),
                        child as u32,
                        false,
                    )));
                }
            }
        }
        results
            .into_iter()
            .map(|(id, d)| (&self.entries[id as usize].1, d))
            .collect()
    }

    /// Iterates over all `(envelope, item)` entries in leaf order.
    pub fn entries(&self) -> impl Iterator<Item = &(Envelope, T)> {
        self.entries.iter()
    }
}

/// In-place STR ordering: sort by centre x, then within each vertical
/// slice of `slice_len` by centre y.
fn str_order<K, C: Fn(&K) -> Point>(items: &mut [K], center: C) {
    let n = items.len();
    if n <= NODE_CAPACITY {
        return;
    }
    let num_leaves = n.div_ceil(NODE_CAPACITY);
    let num_slices = (num_leaves as f64).sqrt().ceil() as usize;
    let slice_len = num_leaves.div_ceil(num_slices) * NODE_CAPACITY;

    items.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));
    let mut i = 0;
    while i < n {
        let end = (i + slice_len).min(n);
        items[i..end].sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Envelope;

    fn grid_boxes(n: usize) -> Vec<(Envelope, usize)> {
        // n×n unit boxes at integer offsets.
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (x, y) = (i as f64, j as f64);
                v.push((Envelope::new(x, y, x + 1.0, y + 1.0), i * n + j));
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::bulk_load_entries(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.query(&Envelope::new(0.0, 0.0, 1.0, 1.0)).len(), 0);
        assert!(t.nearest_by(Point::new(0.0, 0.0), |_| 0.0).is_none());
    }

    #[test]
    fn query_matches_linear_scan() {
        let boxes = grid_boxes(20); // 400 items, multi-level tree
        let tree = RTree::bulk_load_entries(boxes.clone());
        assert_eq!(tree.len(), 400);
        assert!(tree.height() > 1);
        for query in [
            Envelope::new(0.5, 0.5, 2.5, 2.5),
            Envelope::new(-5.0, -5.0, -1.0, -1.0),
            Envelope::new(0.0, 0.0, 20.0, 20.0),
            Envelope::new(10.0, 10.0, 10.0, 10.0),
        ] {
            let mut expected: Vec<usize> = boxes
                .iter()
                .filter(|(e, _)| e.intersects(&query))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "query {query:?}");
        }
    }

    #[test]
    fn within_distance_matches_linear_scan() {
        let boxes = grid_boxes(10);
        let tree = RTree::bulk_load_entries(boxes.clone());
        let p = Point::new(-2.0, 5.0);
        for d in [0.5, 2.0, 3.5, 100.0] {
            let mut expected: Vec<usize> = boxes
                .iter()
                .filter(|(e, _)| e.distance_to_point(p) <= d)
                .map(|&(_, id)| id)
                .collect();
            let mut got = Vec::new();
            tree.for_each_within_distance(p, d, |&id| got.push(id));
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "distance {d}");
        }
    }

    #[test]
    fn nearest_finds_true_minimum() {
        let boxes = grid_boxes(15);
        let tree = RTree::bulk_load_entries(boxes.clone());
        let p = Point::new(7.3, 7.9);
        // Exact distance = envelope distance here (items are their boxes).
        let (_, d) = tree
            .nearest_by(p, |&id| {
                let e = &boxes.iter().find(|(_, i)| *i == id).unwrap().0;
                e.distance_to_point(p)
            })
            .unwrap();
        assert_eq!(d, 0.0); // p is inside some box
        let far = Point::new(-3.0, 0.5);
        let (_, d2) = tree
            .nearest_by(far, |&id| {
                let e = &boxes.iter().find(|(_, i)| *i == id).unwrap().0;
                e.distance_to_point(far)
            })
            .unwrap();
        assert_eq!(d2, 3.0);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = RTree::bulk_load_entries(vec![
            (Envelope::new(0.0, 0.0, 1.0, 1.0), 1usize),
            (Envelope::new(2.0, 2.0, 3.0, 3.0), 2usize),
        ]);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.query(&Envelope::new(0.5, 0.5, 0.6, 0.6)), vec![&1]);
        assert_eq!(tree.root_envelope(), Envelope::new(0.0, 0.0, 3.0, 3.0));
    }

    #[test]
    fn large_tree_height_is_logarithmic() {
        let boxes = grid_boxes(64); // 4096 items
        let tree = RTree::bulk_load_entries(boxes);
        assert!(tree.height() <= 4, "height {} too deep", tree.height());
        assert_eq!(tree.entries().count(), 4096);
    }
    #[test]
    fn nearest_k_matches_brute_force() {
        let boxes = grid_boxes(15);
        let tree = RTree::bulk_load_entries(boxes.clone());
        let p = Point::new(-2.5, 6.3);
        for k in [1usize, 4, 10, 300] {
            let got: Vec<(usize, f64)> = tree
                .nearest_k_by(p, k, |&id| {
                    boxes
                        .iter()
                        .find(|(_, i)| *i == id)
                        .unwrap()
                        .0
                        .distance_to_point(p)
                })
                .into_iter()
                .map(|(&id, d)| (id, d))
                .collect();
            let mut expected: Vec<(usize, f64)> = boxes
                .iter()
                .map(|&(e, id)| (id, e.distance_to_point(p)))
                .collect();
            expected.sort_by(|a, b| a.1.total_cmp(&b.1));
            expected.truncate(k);
            assert_eq!(got.len(), expected.len());
            for ((_, gd), (_, ed)) in got.iter().zip(&expected) {
                assert!((gd - ed).abs() < 1e-12, "k={k}");
            }
            // Ascending order.
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
        assert!(tree.nearest_k_by(p, 0, |_| 0.0).is_empty());
    }
}
