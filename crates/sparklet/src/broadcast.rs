//! Broadcast variables.

use std::sync::Arc;

/// A read-only value shared with every executor.
///
/// In real Spark the value is serialized once and torrent-distributed;
/// here executors share one `Arc` and the recorded `approx_bytes` feeds
/// the network cost model during replay.
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
    approx_bytes: u64,
}

// Manual impl: cloning shares the Arc, so `T: Clone` is not required.
impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
            approx_bytes: self.approx_bytes,
        }
    }
}

impl<T> Broadcast<T> {
    /// Wraps a value with its serialized-size estimate.
    pub fn new(value: T, approx_bytes: u64) -> Broadcast<T> {
        Broadcast {
            value: Arc::new(value),
            approx_bytes,
        }
    }

    /// Access the broadcast value — Spark's `broadcast.value`.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The serialized size charged to the network model.
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_one_value() {
        let b = Broadcast::new(vec![1, 2, 3], 24);
        let c = b.clone();
        assert_eq!(b.value(), c.value());
        assert_eq!(c.approx_bytes(), 24);
        assert!(std::ptr::eq(b.value(), c.value()));
    }
}
