//! The driver context: configuration, metrics, dataset creation.

use std::sync::Arc;

use cluster::{
    Chaos, ChaosConfig, ChaosSite, ClusterSpec, NetworkModel, RetryPolicy, ScheduleMode, Scheduler,
    TaskSpec,
};
use minihdfs::{DfsError, MiniDfs};
use sync::Mutex;

use crate::broadcast::Broadcast;
use crate::dataset::{Dataset, Partition};
use crate::metrics::{JobReport, StageMetrics};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SparkConf {
    /// Application name, used in reports.
    pub app_name: String,
    /// Local worker threads used for real execution.
    pub threads: usize,
    /// Default partition count for `parallelize`.
    pub default_parallelism: usize,
    /// Simulated cluster for replay.
    pub cluster: ClusterSpec,
    /// Network/coordination cost model for replay.
    pub network: NetworkModel,
    /// Deterministic fault injection applied to every stage (disabled
    /// by default). Lost partitions are recomputed from lineage rather
    /// than failing the job — the paper's §III Spark recovery model.
    pub chaos: ChaosConfig,
    /// Bound on lineage-recompute rounds per stage before the job is
    /// declared unrecoverable.
    pub max_recompute_rounds: u32,
}

impl Default for SparkConf {
    fn default() -> SparkConf {
        SparkConf {
            app_name: "sparklet".into(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            default_parallelism: 16,
            cluster: ClusterSpec::ec2_paper_cluster(),
            network: NetworkModel::ec2_spark(),
            chaos: ChaosConfig::disabled(),
            max_recompute_rounds: 8,
        }
    }
}

pub(crate) struct CtxInner {
    pub(crate) conf: SparkConf,
    pub(crate) dfs: MiniDfs,
    pub(crate) stages: Mutex<Vec<StageMetrics>>,
    pub(crate) chaos: Chaos,
}

/// The driver handle. Cheap to clone; all clones share metrics.
#[derive(Clone)]
pub struct SparkContext {
    pub(crate) inner: Arc<CtxInner>,
}

impl SparkContext {
    /// Creates a context over a file system.
    pub fn new(conf: SparkConf, dfs: MiniDfs) -> SparkContext {
        let chaos = Chaos::new(conf.chaos);
        SparkContext {
            inner: Arc::new(CtxInner {
                conf,
                dfs,
                stages: Mutex::new(Vec::new()),
                chaos,
            }),
        }
    }

    /// The context's fault injector (never fires unless the
    /// configuration enables it).
    pub fn chaos(&self) -> &Chaos {
        &self.inner.chaos
    }

    /// The configuration.
    pub fn conf(&self) -> &SparkConf {
        &self.inner.conf
    }

    /// The underlying file system.
    pub fn dfs(&self) -> &MiniDfs {
        &self.inner.dfs
    }

    /// Reads a text file as a dataset of lines, one partition per HDFS
    /// block, preserving block locality — Spark's `sc.textFile`.
    ///
    /// # Errors
    /// Fails when the path does not exist.
    pub fn text_file(&self, path: &str) -> Result<Dataset<String>, DfsError> {
        let blocks = self.inner.dfs.blocks(path)?;
        let partitions: Vec<Partition<String>> = blocks
            .iter()
            .map(|b| Partition {
                data: b.lines().map(str::to_string).collect(),
                locality: Some(b.primary_node),
            })
            .collect();
        Ok(Dataset::from_partitions(self.clone(), partitions))
    }

    /// Distributes a local collection over `num_partitions` partitions —
    /// Spark's `sc.parallelize`.
    pub fn parallelize<T: Send + Sync>(&self, data: Vec<T>, num_partitions: usize) -> Dataset<T> {
        let num_partitions = num_partitions.max(1);
        let n = data.len();
        let mut partitions: Vec<Partition<T>> = (0..num_partitions)
            .map(|_| Partition {
                data: Vec::with_capacity(n / num_partitions + 1),
                locality: None,
            })
            .collect();
        for (i, item) in data.into_iter().enumerate() {
            let p = (i * num_partitions).checked_div(n).unwrap_or(0);
            partitions[p.min(num_partitions - 1)].data.push(item);
        }
        Dataset::from_partitions(self.clone(), partitions)
    }

    /// Ships a read-only value to every executor — Spark's
    /// `sc.broadcast`. `approx_bytes` is the serialized size used for
    /// network accounting (the value itself is shared by `Arc` in this
    /// single-process reproduction).
    pub fn broadcast<T>(&self, value: T, approx_bytes: u64) -> Broadcast<T> {
        Broadcast::new(value, approx_bytes)
    }

    /// Records a completed stage (used by [`Dataset`] internally and by
    /// higher layers that run custom stages).
    pub fn record_stage(&self, stage: StageMetrics) {
        self.inner.stages.lock().push(stage);
    }

    /// Adds data-movement bytes to the *next* recorded stage by pushing
    /// a marker stage with no tasks.
    pub fn record_movement(&self, name: &str, broadcast_bytes: u64, shuffle_bytes: u64) {
        self.inner.stages.lock().push(StageMetrics {
            name: name.into(),
            tasks: Vec::new(),
            broadcast_bytes,
            shuffle_bytes,
        });
    }

    /// Snapshot of everything executed so far.
    pub fn job_report(&self) -> JobReport {
        JobReport {
            stages: self.inner.stages.lock().clone(),
        }
    }

    /// Clears recorded metrics (between experiments).
    pub fn reset_metrics(&self) {
        self.inner.stages.lock().clear();
    }

    /// Replays the recorded job on `num_nodes` nodes of the configured
    /// node type under dynamic scheduling — the SpatialSpark deployment
    /// model.
    pub fn simulate_runtime(&self, num_nodes: usize) -> f64 {
        let spec = ClusterSpec {
            num_nodes,
            ..self.inner.conf.cluster
        };
        self.job_report()
            .simulate_runtime(&spec, &self.inner.conf.network, Scheduler::Dynamic)
    }

    /// Helper for layers that execute their own parallel work: runs a
    /// stage of `items` through the local pool dynamically, records the
    /// measured costs, and returns the results in order.
    pub fn run_stage<T, R, F>(
        &self,
        name: &str,
        items: Vec<T>,
        localities: &[Option<usize>],
        f: F,
    ) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.execute_stage(name, items, localities.to_vec(), f)
    }

    /// The stage executor behind every transformation. Without chaos it
    /// is exactly the historical path (plain `run_tasks`, bit-identical
    /// output). With chaos enabled, tasks run under panic capture and
    /// any partition lost to an injected executor death is recomputed
    /// from lineage in a follow-up round on the surviving workers —
    /// live, mid-job, without restarting the stage's completed tasks.
    pub(crate) fn execute_stage<T, R, F>(
        &self,
        name: &str,
        items: Vec<T>,
        localities: Vec<Option<usize>>,
        f: F,
    ) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.inner.conf.threads;
        if self.inner.chaos.is_disabled() {
            let (results, timings) = cluster::run_tasks(items, threads, ScheduleMode::Dynamic, f);
            let tasks: Vec<TaskSpec> = timings
                .iter()
                .map(|t| TaskSpec {
                    cost: t.secs,
                    locality: localities.get(t.index).copied().flatten(),
                })
                .collect();
            self.record_stage(StageMetrics {
                name: name.into(),
                tasks,
                broadcast_bytes: 0,
                shuffle_bytes: 0,
            });
            return results;
        }

        let threads = threads.max(1);
        let chaos = &self.inner.chaos;
        let n = items.len();
        // Stage ordinal keys the fault draws: unique per stage within a
        // job, deterministic across runs of the same job and seed.
        let stage_ord = self.inner.stages.lock().len() as u64;
        let stage_key = stage_ord << 32;
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut round: u32 = 0;
        loop {
            // Recompute rounds run on one fewer worker — the "executor"
            // that died is gone; its tasks re-run on the survivors.
            let alive = if round == 0 {
                threads
            } else {
                threads.saturating_sub(1).max(1)
            };
            let run = cluster::run_tasks_faulted(
                &pending,
                alive,
                ScheduleMode::Dynamic,
                RetryPolicy::none(),
                |_, _, &i| {
                    let r = f(&items[i]);
                    // Inject *after* the work: a lost executor has done
                    // (and lost) its computation, so recovery pays the
                    // full recompute cost.
                    chaos.inject(ChaosSite::Task, stage_key | i as u64, round);
                    r
                },
            );
            // Fold scoped-worker counters (fault injections, hot-path
            // counts) into the caller's cells, like the plain path does.
            obs::add_thread(&run.exec.worker_counters);
            let tasks: Vec<TaskSpec> = run
                .timings
                .iter()
                .map(|t| TaskSpec {
                    cost: t.secs,
                    locality: localities.get(pending[t.index]).copied().flatten(),
                })
                .collect();
            let stage_name = if round == 0 {
                name.to_string()
            } else {
                format!("recompute:{name}")
            };
            self.record_stage(StageMetrics {
                name: stage_name,
                tasks,
                broadcast_bytes: 0,
                shuffle_bytes: 0,
            });
            let failed: Vec<usize> = run.failures.iter().map(|fl| pending[fl.index]).collect();
            let first_message = run
                .failures
                .first()
                .map(|fl| fl.message.as_str().to_string());
            for (pos, r) in run.results.into_iter().enumerate() {
                if r.is_some() {
                    slots[pending[pos]] = r;
                }
            }
            if failed.is_empty() {
                break;
            }
            round += 1;
            if round > self.inner.conf.max_recompute_rounds {
                let message = first_message.unwrap_or_default();
                std::panic::panic_any(format!(
                    "stage '{name}': {} partition(s) unrecoverable after {round} rounds \
                     (last failure: {message})",
                    failed.len()
                ));
            }
            obs::partitions_recomputed(failed.len() as u64);
            pending = failed;
        }
        slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConf::default(), MiniDfs::new(4, 256).unwrap())
    }

    #[test]
    fn text_file_partitions_follow_blocks() {
        let c = ctx();
        let lines: Vec<String> = (0..200).map(|i| format!("line-{i:0>10}")).collect();
        c.dfs().write_lines("/t", &lines).unwrap();
        let ds = c.text_file("/t").unwrap();
        assert_eq!(ds.num_partitions(), c.dfs().blocks("/t").unwrap().len());
        assert_eq!(ds.count(), 200);
        assert!(c.text_file("/missing").is_err());
    }

    #[test]
    fn parallelize_balances_partitions() {
        let c = ctx();
        let ds = c.parallelize((0..100).collect::<Vec<i32>>(), 8);
        assert_eq!(ds.num_partitions(), 8);
        assert_eq!(ds.count(), 100);
        let sizes = ds.partition_sizes();
        assert!(sizes.iter().all(|&s| (12..=13).contains(&s)));
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let c = ctx();
        let ds = c.parallelize(vec![1, 2, 3], 2);
        let _ = ds.map("double", |x| x * 2);
        assert_eq!(c.job_report().stages.len(), 1);
        c.record_movement("broadcast", 1000, 0);
        assert_eq!(c.job_report().stages.len(), 2);
        assert_eq!(c.job_report().total_broadcast_bytes(), 1000);
        c.reset_metrics();
        assert!(c.job_report().stages.is_empty());
    }

    #[test]
    fn simulate_runtime_is_positive_and_node_sensitive() {
        let c = ctx();
        let ds = c.parallelize((0..1000).collect::<Vec<u64>>(), 32);
        let _ = ds.map("spin", |&x| (0..5000u64).fold(x, |a, b| a.wrapping_add(b)));
        let t1 = c.simulate_runtime(1);
        let t10 = c.simulate_runtime(10);
        assert!(t1 > 0.0 && t10 > 0.0);
        // Tiny job: 10 nodes pay more startup than they save.
        assert!(t10 > t1 * 0.5);
    }

    #[test]
    fn chaos_recompute_recovers_bit_identical_output() {
        let fault_free = {
            let c = ctx();
            c.parallelize((0..500i64).collect(), 25)
                .map("x2", |x| x * 2)
                .collect()
        };
        let conf = SparkConf {
            chaos: ChaosConfig::uniform(1234, 0.3),
            ..SparkConf::default()
        };
        let c = SparkContext::new(conf, MiniDfs::new(4, 256).unwrap());
        // Suppress the expected injected-panic spew from the default hook.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = c
            .parallelize((0..500i64).collect(), 25)
            .map("x2", |x| x * 2)
            .collect();
        std::panic::set_hook(hook);
        assert_eq!(out, fault_free, "recovered run must be bit-identical");
        assert!(
            c.chaos().fault_count() > 0,
            "rate 0.3 must inject something"
        );
        let report = c.job_report();
        assert!(
            report
                .stages
                .iter()
                .any(|s| s.name.starts_with("recompute:")),
            "lost partitions must surface as recompute stages"
        );
    }

    #[test]
    fn chaos_disabled_leaves_metrics_untouched() {
        let c = ctx();
        assert!(c.chaos().is_disabled());
        let _ = c.parallelize((0..10i32).collect(), 2).map("id", |&x| x);
        let report = c.job_report();
        assert_eq!(report.stages.len(), 1);
        assert!(!report.stages[0].name.starts_with("recompute:"));
        assert_eq!(c.chaos().fault_count(), 0);
    }

    #[test]
    fn empty_parallelize() {
        let c = ctx();
        let ds = c.parallelize(Vec::<u8>::new(), 4);
        assert_eq!(ds.count(), 0);
        assert_eq!(ds.num_partitions(), 4);
    }
}
