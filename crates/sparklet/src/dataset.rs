//! Partitioned datasets and their transformations.

use crate::context::SparkContext;

/// One partition of a dataset, with its preferred node if the data came
/// from a DFS block.
#[derive(Debug, Clone)]
pub struct Partition<T> {
    pub data: Vec<T>,
    pub locality: Option<usize>,
}

/// A distributed collection, the analogue of Spark's RDD.
///
/// Transformations execute eagerly as one stage of per-partition tasks
/// on the context's thread pool under dynamic scheduling, recording the
/// measured cost of every task for later cluster replay.
pub struct Dataset<T> {
    ctx: SparkContext,
    partitions: Vec<Partition<T>>,
}

impl<T: Send + Sync> Dataset<T> {
    pub(crate) fn from_partitions(ctx: SparkContext, partitions: Vec<Partition<T>>) -> Dataset<T> {
        Dataset { ctx, partitions }
    }

    /// The owning context.
    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Records per partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.data.len()).collect()
    }

    /// Locality hints per partition.
    pub fn localities(&self) -> Vec<Option<usize>> {
        self.partitions.iter().map(|p| p.locality).collect()
    }

    /// Total number of records. Free of stage overhead — counting is
    /// metadata in this engine.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.data.len()).sum()
    }

    /// Core stage runner: applies `f` to each partition in parallel
    /// (dynamic scheduling), measures per-partition cost, records the
    /// stage, and rewraps the outputs with the same localities.
    pub fn map_partitions<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Sync,
    {
        let inputs: Vec<&[T]> = self.partitions.iter().map(|p| p.data.as_slice()).collect();
        let outputs = self
            .ctx
            .execute_stage(name, inputs, self.localities(), |part| f(part));
        let partitions = outputs
            .into_iter()
            .zip(&self.partitions)
            .map(|(data, p)| Partition {
                data,
                locality: p.locality,
            })
            .collect();
        Dataset::from_partitions(self.ctx.clone(), partitions)
    }

    /// Like [`Dataset::map_partitions`], but the closure also receives
    /// the partition index — Spark's `mapPartitionsWithIndex`. Needed
    /// when per-partition state (e.g. a partition-local index) differs
    /// by partition.
    pub fn map_partitions_indexed<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        let inputs: Vec<(usize, &[T])> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.data.as_slice()))
            .collect();
        let outputs = self.ctx.execute_stage(
            name,
            inputs,
            self.localities(),
            |(pi, part): &(usize, &[T])| f(*pi, part),
        );
        let partitions = outputs
            .into_iter()
            .zip(&self.partitions)
            .map(|(data, p)| Partition {
                data,
                locality: p.locality,
            })
            .collect();
        Dataset::from_partitions(self.ctx.clone(), partitions)
    }

    /// Element-wise transformation — Spark's `map`.
    pub fn map<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Sync,
    {
        self.map_partitions(name, |part| part.iter().map(&f).collect())
    }

    /// One-to-many transformation — Spark's `flatMap`.
    pub fn flat_map<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        self.map_partitions(name, |part| part.iter().flat_map(&f).collect())
    }

    /// `flatMap` with a sink argument: `f` appends its outputs to the
    /// partition's output buffer directly. Equivalent to real Spark's
    /// lazy `flatMap` iterators, which never materialise a per-element
    /// collection — the shape hot join probes need.
    pub fn flat_map_with<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(&T, &mut Vec<U>) + Sync,
    {
        self.map_partitions(name, |part| {
            let mut out = Vec::new();
            for t in part {
                f(t, &mut out);
            }
            out
        })
    }

    /// Keeps elements satisfying the predicate — Spark's `filter`.
    pub fn filter<F>(&self, name: &str, f: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(name, |part| part.iter().filter(|t| f(t)).cloned().collect())
    }

    /// Pairs every element with a globally unique, partition-contiguous
    /// index — Spark's `zipWithIndex` (which likewise needs partition
    /// counts before it can run).
    pub fn zip_with_index(&self) -> Dataset<(u64, T)>
    where
        T: Clone,
    {
        let sizes = self.partition_sizes();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for s in &sizes {
            offsets.push(acc);
            acc += *s as u64;
        }
        // Offsets vary per partition, which map_partitions cannot see,
        // so enumerate partitions through an index-tagged input stage.
        let inputs: Vec<(usize, &[T])> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.data.as_slice()))
            .collect();
        let outputs = self.ctx.execute_stage(
            "zipWithIndex",
            inputs,
            self.localities(),
            |(pi, part): &(usize, &[T])| {
                part.iter()
                    .enumerate()
                    .map(|(i, t)| (offsets[*pi] + i as u64, t.clone()))
                    .collect::<Vec<_>>()
            },
        );
        let partitions = outputs
            .into_iter()
            .zip(&self.partitions)
            .map(|(data, p)| Partition {
                data,
                locality: p.locality,
            })
            .collect();
        Dataset::from_partitions(self.ctx.clone(), partitions)
    }

    /// Materialises the dataset on the driver — Spark's `collect`.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.partitions
            .iter()
            .flat_map(|p| p.data.iter().cloned())
            .collect()
    }

    /// Redistributes records into `num_partitions` partitions by a key
    /// function — the wide (shuffle) dependency. `bytes_of` estimates
    /// each record's serialized size for the network model.
    pub fn partition_by<K, B>(&self, num_partitions: usize, key: K, bytes_of: B) -> Dataset<T>
    where
        T: Clone,
        K: Fn(&T) -> usize + Sync,
        B: Fn(&T) -> u64,
    {
        let num_partitions = num_partitions.max(1);
        let mut buckets: Vec<Vec<T>> = (0..num_partitions).map(|_| Vec::new()).collect();
        let mut moved_bytes = 0u64;
        for p in &self.partitions {
            for t in &p.data {
                moved_bytes += bytes_of(t);
                buckets[key(t) % num_partitions].push(t.clone());
            }
        }
        self.ctx
            .record_movement("shuffle:partition_by", 0, moved_bytes);
        let partitions = buckets
            .into_iter()
            .map(|data| Partition {
                data,
                locality: None,
            })
            .collect();
        Dataset::from_partitions(self.ctx.clone(), partitions)
    }

    /// Direct read access to a partition's records (for engine layers).
    pub fn partition(&self, i: usize) -> &[T] {
        &self.partitions[i].data
    }

    /// Concatenates two datasets partition-wise — Spark's `union`
    /// (no shuffle; partitions are simply appended).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T>
    where
        T: Clone,
    {
        let mut partitions: Vec<Partition<T>> = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Dataset::from_partitions(self.ctx.clone(), partitions)
    }

    /// Deterministic sample of roughly `fraction` of the records
    /// (hash-based, so repeatable) — Spark's `sample` without
    /// replacement.
    pub fn sample(&self, fraction: f64) -> Dataset<T>
    where
        T: Clone,
    {
        let threshold = (fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
        self.map_partitions_indexed("sample", move |pi, part| {
            part.iter()
                .enumerate()
                .filter(|(i, _)| {
                    // Cheap splitmix-style hash of the global slot.
                    let mut z = (pi as u64) << 32 | *i as u64;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                    ((z >> 32) as u32) < threshold
                })
                .map(|(_, t)| t.clone())
                .collect()
        })
    }

    /// First `n` records in partition order — Spark's `take`.
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(n);
        for p in &self.partitions {
            for t in &p.data {
                if out.len() == n {
                    return out;
                }
                out.push(t.clone());
            }
        }
        out
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: std::hash::Hash + Eq + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Combines values per key — Spark's `reduceByKey`. Runs a
    /// map-side combine in each partition (the classic optimisation),
    /// then shuffles the partial aggregates and merges.
    pub fn reduce_by_key<F>(
        &self,
        num_partitions: usize,
        bytes_per_pair: u64,
        f: F,
    ) -> Dataset<(K, V)>
    where
        F: Fn(&V, &V) -> V + Sync,
    {
        // Map-side combine.
        let combined = self.map_partitions("reduceByKey:combine", |part| {
            let mut acc: std::collections::HashMap<K, V> = std::collections::HashMap::new();
            for (k, v) in part {
                match acc.get_mut(k) {
                    Some(cur) => *cur = f(cur, v),
                    None => {
                        acc.insert(k.clone(), v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        });
        // Shuffle partial aggregates by key hash.
        let shuffled = combined.partition_by(
            num_partitions.max(1),
            |(k, _)| fnv_hash(k),
            |_| bytes_per_pair,
        );
        // Final merge within each partition.
        shuffled.map_partitions("reduceByKey:merge", |part| {
            let mut acc: std::collections::HashMap<K, V> = std::collections::HashMap::new();
            for (k, v) in part {
                match acc.get_mut(k) {
                    Some(cur) => *cur = f(cur, v),
                    None => {
                        acc.insert(k.clone(), v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        })
    }

    /// Counts records per key — Spark's `countByKey`, expressed via
    /// [`Dataset::reduce_by_key`].
    pub fn count_by_key(&self, num_partitions: usize) -> Dataset<(K, u64)> {
        self.map("countByKey:ones", |(k, _)| (k.clone(), 1u64))
            .reduce_by_key(num_partitions, 16, |a, b| a + b)
    }
}

/// Stable FNV-1a over the value's `Hash` output, so shuffles are
/// deterministic across runs.
fn fnv_hash<K: std::hash::Hash>(k: &K) -> usize {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }
    let mut h = Fnv(0xcbf29ce484222325);
    std::hash::Hash::hash(k, &mut h);
    std::hash::Hasher::finish(&h) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SparkConf;
    use minihdfs::MiniDfs;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConf::default(), MiniDfs::new(4, 256).unwrap())
    }

    #[test]
    fn map_filter_flatmap_pipeline() {
        let c = ctx();
        let ds = c.parallelize((0..100i64).collect(), 7);
        let result = ds
            .map("x3", |x| x * 3)
            .filter("even", |x| x % 2 == 0)
            .flat_map("dup", |&x| vec![x, x])
            .collect();
        let expected: Vec<i64> = (0..100)
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, x])
            .collect();
        assert_eq!(result, expected);
        assert_eq!(c.job_report().stages.len(), 3);
    }

    #[test]
    fn zip_with_index_is_global_and_ordered() {
        let c = ctx();
        let ds = c.parallelize((100..200i64).collect(), 9);
        let indexed = ds.zip_with_index().collect();
        assert_eq!(indexed.len(), 100);
        for (i, (idx, val)) in indexed.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*val, 100 + i as i64);
        }
    }

    #[test]
    fn partition_by_routes_by_key_and_records_shuffle() {
        let c = ctx();
        let ds = c.parallelize((0..50usize).collect(), 4);
        let repartitioned = ds.partition_by(5, |&x| x, |_| 8);
        assert_eq!(repartitioned.num_partitions(), 5);
        for pi in 0..5 {
            assert!(repartitioned.partition(pi).iter().all(|&x| x % 5 == pi));
        }
        let report = c.job_report();
        let shuffle: u64 = report.stages.iter().map(|s| s.shuffle_bytes).sum();
        assert_eq!(shuffle, 50 * 8);
    }

    #[test]
    fn stage_preserves_locality() {
        let c = ctx();
        let lines: Vec<String> = (0..100).map(|i| format!("{i:0>20}")).collect();
        c.dfs().write_lines("/loc", &lines).unwrap();
        let ds = c.text_file("/loc").unwrap();
        let mapped = ds.map("len", |s| s.len());
        assert_eq!(mapped.localities(), ds.localities());
        assert!(ds.localities().iter().all(Option::is_some));
        // Stage metrics carry those localities too.
        let report = c.job_report();
        let stage = report.stages.last().unwrap();
        assert!(stage.tasks.iter().all(|t| t.locality.is_some()));
    }

    #[test]
    fn union_sample_take() {
        let c = ctx();
        let a = c.parallelize((0..50i32).collect(), 3);
        let b = c.parallelize((50..80i32).collect(), 2);
        let u = a.union(&b);
        assert_eq!(u.count(), 80);
        assert_eq!(u.num_partitions(), 5);
        assert_eq!(u.take(3), vec![0, 1, 2]);
        assert_eq!(u.take(200).len(), 80);

        let big = c.parallelize((0..10_000i32).collect(), 8);
        let s1 = big.sample(0.1);
        let s2 = big.sample(0.1);
        // Deterministic and roughly the right size.
        assert_eq!(s1.collect(), s2.collect());
        let n = s1.count();
        assert!((700..1300).contains(&n), "sampled {n} of 10000");
        assert_eq!(big.sample(0.0).count(), 0);
        assert_eq!(big.sample(1.0).count(), 10_000);
    }

    #[test]
    fn reduce_by_key_aggregates_across_partitions() {
        let c = ctx();
        let pairs: Vec<(String, u64)> = (0..100)
            .map(|i| (format!("k{}", i % 7), i as u64))
            .collect();
        let ds = c.parallelize(pairs.clone(), 6);
        let mut result = ds.reduce_by_key(4, 16, |a, b| a + b).collect();
        result.sort();
        let mut expected: std::collections::HashMap<String, u64> = Default::default();
        for (k, v) in pairs {
            *expected.entry(k).or_insert(0) += v;
        }
        let mut expected: Vec<(String, u64)> = expected.into_iter().collect();
        expected.sort();
        assert_eq!(result, expected);
        // Shuffle bytes got recorded (partial aggregates only).
        let shuffled: u64 = c.job_report().stages.iter().map(|s| s.shuffle_bytes).sum();
        assert!(shuffled > 0);
        assert!(
            shuffled <= 7 * 6 * 16,
            "map-side combine bounds the shuffle"
        );
    }

    #[test]
    fn count_by_key_counts() {
        let c = ctx();
        let ds = c.parallelize(vec![("a", 1), ("b", 2), ("a", 3), ("a", 4)], 2);
        let mut counts = ds.count_by_key(2).collect();
        counts.sort();
        assert_eq!(counts, vec![("a", 3), ("b", 1)]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let c = ctx();
        let ds = c.parallelize((0..40i32).collect(), 4);
        let sums = ds.map_partitions("sum", |part| vec![part.iter().sum::<i32>()]);
        assert_eq!(sums.count(), 4);
        assert_eq!(sums.collect().iter().sum::<i32>(), (0..40).sum());
    }
}
