//! # sparklet — an RDD-style dataflow engine
//!
//! A from-scratch stand-in for Apache Spark with the properties the
//! paper's SpatialSpark relies on (§III):
//!
//! * datasets are collections of **partitions** distributed over the
//!   cluster ([`Dataset`]), created from minihdfs text files with one
//!   partition per block (locality preserved) or by parallelising a
//!   local collection;
//! * functional transformations (`map`, `flat_map`, `filter`,
//!   `zip_with_index`, …) execute as **stages of per-partition tasks**
//!   under *dynamic* scheduling — any free core takes the next task,
//!   which is what gives Spark its good load balance on skewed spatial
//!   data;
//! * read-only values can be **broadcast** to every node
//!   ([`Broadcast`]), which is how the R-tree of the join's right side
//!   is shipped;
//! * every stage records its measured task costs and data-movement
//!   volumes ([`StageMetrics`]), so a finished job can be replayed on
//!   any simulated cluster size ([`SparkContext::simulate_runtime`]) —
//!   including Spark's per-stage actor-system reconstruction overhead
//!   and the per-run jar-shipping cost the paper discusses.
//!
//! Transformations here are eager rather than lazily DAG-scheduled;
//! what matters for the reproduction is the per-stage task/cost
//! structure, which is identical.

pub mod broadcast;
pub mod context;
pub mod dataset;
pub mod metrics;

pub use broadcast::Broadcast;
pub use context::{SparkConf, SparkContext};
pub use dataset::Dataset;
pub use metrics::{JobReport, StageMetrics};
