//! Stage metrics and job-level replay.

use cluster::{simulate, ClusterSpec, NetworkModel, Scheduler, TaskSpec};

/// What one executed stage cost.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Human-readable stage name ("map:parse-wkt", …).
    pub name: String,
    /// Measured per-task (per-partition) costs.
    pub tasks: Vec<TaskSpec>,
    /// Bytes broadcast to every node before the stage ran.
    pub broadcast_bytes: u64,
    /// Bytes moved all-to-all (shuffle) before the stage ran.
    pub shuffle_bytes: u64,
}

impl StageMetrics {
    /// Total measured CPU seconds across the stage's tasks.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }
}

/// A summary of every stage a context has executed.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub stages: Vec<StageMetrics>,
}

impl JobReport {
    /// Total measured CPU seconds across all stages.
    pub fn total_work(&self) -> f64 {
        self.stages.iter().map(StageMetrics::total_work).sum()
    }

    /// Total bytes broadcast across all stages.
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.broadcast_bytes).sum()
    }

    /// Rebases the report onto the workspace observability layer: one
    /// [`obs::RunStats`] child per stage, the stage's task costs
    /// aggregated into a `"tasks"` span and its data movement into the
    /// byte counters. Root-level hot-path counters (filter/refine/edge
    /// visits) are *not* reconstructed here — they accumulate in the
    /// caller's thread cells while the job runs and belong to whatever
    /// snapshot delta the caller takes around it.
    pub fn to_run_stats(&self, name: &str) -> obs::RunStats {
        let mut root = obs::RunStats::new(name);
        for stage in &self.stages {
            let mut child = obs::RunStats::new(&stage.name);
            child.spans.push(obs::SpanStat::from_secs(
                "tasks",
                stage.tasks.len() as u64,
                stage.total_work(),
            ));
            child.counters.bytes_broadcast = stage.broadcast_bytes;
            child.counters.bytes_shuffled = stage.shuffle_bytes;
            root.children.push(child);
        }
        root
    }

    /// Replays the job on a simulated cluster: job startup (jar
    /// shipping), then per stage the coordination cost, the data
    /// movement, and the task makespan under `scheduler`.
    pub fn simulate_runtime(
        &self,
        spec: &ClusterSpec,
        network: &NetworkModel,
        scheduler: Scheduler,
    ) -> f64 {
        let mut total = network.job_startup_cost(spec.num_nodes);
        for stage in &self.stages {
            total += network.stage_coordination_cost(stage.tasks.len());
            total += network.broadcast_cost(stage.broadcast_bytes, spec.num_nodes);
            total += network.shuffle_cost(stage.shuffle_bytes, spec.num_nodes);
            total += simulate(&stage.tasks, spec, scheduler).makespan;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, costs: &[f64]) -> StageMetrics {
        StageMetrics {
            name: name.into(),
            tasks: costs.iter().map(|&c| TaskSpec::of_cost(c)).collect(),
            broadcast_bytes: 0,
            shuffle_bytes: 0,
        }
    }

    #[test]
    fn totals_add_up() {
        let report = JobReport {
            stages: vec![stage("a", &[1.0, 2.0]), stage("b", &[3.0])],
        };
        assert_eq!(report.total_work(), 6.0);
    }

    #[test]
    fn run_stats_mirror_stages() {
        let mut s = stage("map:parse", &[1.0, 2.0]);
        s.broadcast_bytes = 10;
        s.shuffle_bytes = 20;
        let report = JobReport {
            stages: vec![s, stage("probe", &[0.5])],
        };
        let stats = report.to_run_stats("job");
        assert_eq!(stats.name, "job");
        assert_eq!(stats.children.len(), 2);
        let parse = stats.child("map:parse").unwrap();
        assert_eq!(parse.counters.bytes_broadcast, 10);
        assert_eq!(parse.counters.bytes_shuffled, 20);
        let tasks = parse.span("tasks").unwrap();
        assert_eq!(tasks.count, 2);
        assert!((tasks.total_secs() - 3.0).abs() < 1e-9);
        assert_eq!(stats.total_counters().bytes_shuffled, 20);
    }

    #[test]
    fn more_nodes_means_faster_until_overheads_dominate() {
        let tasks: Vec<f64> = vec![0.5; 320];
        let report = JobReport {
            stages: vec![stage("work", &tasks)],
        };
        let net = NetworkModel::ec2_spark();
        let t4 = report.simulate_runtime(&ClusterSpec::ec2_with_nodes(4), &net, Scheduler::Dynamic);
        let t10 =
            report.simulate_runtime(&ClusterSpec::ec2_with_nodes(10), &net, Scheduler::Dynamic);
        assert!(t10 < t4);
        // Parallel efficiency is below 1.0 because of fixed overheads.
        let eff = (t4 / t10) / 2.5;
        assert!(eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn broadcast_bytes_charged_once_per_stage() {
        let mut s = stage("b", &[0.1]);
        s.broadcast_bytes = 200_000_000;
        let report = JobReport { stages: vec![s] };
        let net = NetworkModel::ec2_spark();
        let one =
            report.simulate_runtime(&ClusterSpec::ec2_with_nodes(1), &net, Scheduler::Dynamic);
        let ten =
            report.simulate_runtime(&ClusterSpec::ec2_with_nodes(10), &net, Scheduler::Dynamic);
        // Broadcast is free on one node, costly on ten.
        assert!(ten > one + 1.0);
    }
}
