//! # sync — in-tree lock wrappers
//!
//! Thin wrappers over [`std::sync::Mutex`] and [`std::sync::RwLock`]
//! with a `parking_lot`-style infallible API: `lock()` / `read()` /
//! `write()` return guards directly, recovering from poisoning instead
//! of propagating a `Result` to every call site.
//!
//! Poison recovery is the right policy for this codebase: every
//! protected structure (metric vectors, the DFS namespace map) is kept
//! consistent by the holder before any operation that could panic, so a
//! poisoned lock only means "a worker died mid-test" — the data itself
//! is still well-formed and the remaining threads should proceed.
//!
//! The `tidy` lock-discipline check (`cargo run -p tidy`) audits every
//! user of this crate: guards must not be held across `send`/`recv`/
//! `join`, and nested acquisitions must follow the declared order in
//! `crates/tidy/lock_order.toml`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering the data if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std Mutex would now return Err; the wrapper recovers.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(String::from("ok")));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(l.read().as_str(), "ok");
        l.write().push('!');
        assert_eq!(l.read().as_str(), "ok!");
    }

    #[test]
    fn default_constructs_empty() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
        let l: RwLock<u64> = RwLock::default();
        assert_eq!(*l.read(), 0);
    }
}
