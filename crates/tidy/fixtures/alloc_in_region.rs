//! Tidy fixture: one allocating call inside a marked region.
//! Expected: exactly one `alloc-free` finding, on the `.to_vec()` line.

pub fn hot_path(xs: &[f64]) -> Vec<f64> {
    // tidy:alloc-free:start
    let out = xs.to_vec();
    // tidy:alloc-free:end
    out
}
