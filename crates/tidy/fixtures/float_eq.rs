//! Tidy fixture: exact float comparison outside the approved
//! `geom::algorithms` files.
//! Expected: exactly one `float-eq` finding.

pub fn same_column(a: &Point, b: &Point) -> bool {
    a.x == b.x
}
