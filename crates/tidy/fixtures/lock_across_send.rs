//! Tidy fixture: a guard held across a blocking channel send.
//! Expected: exactly one `lock-discipline` finding, on the send line.

pub fn broken(ns: &Namespace, tx: &Sender<u64>) {
    let files = ns.files.lock();
    tx.send(files.len() as u64);
}
