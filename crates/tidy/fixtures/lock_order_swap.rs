//! Tidy fixture: two locks taken against the declared order
//! (`stages` is last in `lock_order.toml`, `files` is first).
//! Expected: exactly one `lock-discipline` finding, on the second
//! acquisition.

pub fn swapped(ctx: &Context) -> usize {
    let stages = ctx.stages.lock();
    let files = ctx.namespace.files.lock();
    let n = stages.len() + files.len();
    drop(files);
    drop(stages);
    n
}
