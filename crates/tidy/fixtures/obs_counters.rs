//! Tidy fixture: the obs-style thread-local counter bump inside a
//! marked alloc-free region. Expected: **zero** findings — `Cell`
//! reads and writes never touch the allocator, so instrumenting hot
//! loops with the workspace observability counters is legal.

use std::cell::Cell;

thread_local! {
    static HITS: Cell<u64> = const { Cell::new(0) };
}

// tidy:alloc-free:start
pub fn scan(xs: &[f64], limit: f64) -> usize {
    let mut hits = 0u64;
    let mut kept = 0usize;
    for &x in xs {
        if x < limit {
            hits += 1;
            kept += 1;
        }
    }
    // One TLS access per scan, exactly like obs::filter_refine.
    HITS.with(|c| c.set(c.get() + hits));
    kept
}
// tidy:alloc-free:end
