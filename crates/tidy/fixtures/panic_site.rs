//! Tidy fixture: one panic site in non-test code.
//! Expected: `panics::count_file` reports exactly one site, so the
//! ratchet fails against an empty baseline.

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    // Panic sites inside test code never count toward the ratchet.
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(super::first(&[7]), 7);
        Some(1).unwrap();
    }
}
