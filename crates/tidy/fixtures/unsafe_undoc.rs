//! Tidy fixture: an `unsafe` block missing its safety justification
//! comment.
//! Expected: exactly one `unsafe` finding.

pub fn read(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}
