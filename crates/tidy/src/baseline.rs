//! The panic-ratchet baseline file: a tiny TOML subset
//! (`"path" = count` entries under a single section) read and written
//! without any TOML dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative path of the baseline file inside the workspace.
pub const BASELINE_PATH: &str = "crates/tidy/baseline.toml";

/// Parses `[panic-sites]` entries. Unknown sections and comments are
/// ignored; malformed entry lines are returned as errors with their
/// 1-based line number.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    let mut in_section = false;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[panic-sites]";
            continue;
        }
        if !in_section {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("baseline line {}: expected `\"path\" = count`", idx + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: count is not an integer", idx + 1))?;
        out.insert(key, value);
    }
    Ok(out)
}

/// Renders a baseline file, sorted by path, zero-count files omitted.
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Panic-freedom ratchet baseline: per-file counts of `.unwrap()` /\n\
         # `.expect(` / `panic!` / `unreachable!` in library code outside\n\
         # `#[cfg(test)]`. The tidy `panic-ratchet` check fails when a file\n\
         # exceeds its entry, and also when it drops below (so cleanups are\n\
         # locked in). Counts may only ever shrink; after removing panic\n\
         # sites, regenerate with:\n\
         #\n\
         #   cargo run -p tidy -- --write-baseline\n\
         \n[panic-sites]\n",
    );
    for (path, count) in counts {
        if *count > 0 {
            // Writing to a String cannot fail.
            let _ = writeln!(out, "\"{path}\" = {count}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_string(), 3);
        counts.insert("crates/b/src/x.rs".to_string(), 1);
        counts.insert("crates/c/src/clean.rs".to_string(), 0);
        let text = render(&counts);
        let back = parse(&text).expect("parse");
        assert_eq!(back.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(back.get("crates/b/src/x.rs"), Some(&1));
        // Zero-count entries are dropped on render.
        assert_eq!(back.get("crates/c/src/clean.rs"), None);
    }

    #[test]
    fn comments_and_unknown_sections_ignored() {
        let text = "# comment\n[other]\n\"x\" = 9\n[panic-sites]\n\"y\" = 2\n";
        let parsed = parse(text).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.get("y"), Some(&2));
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let err = parse("[panic-sites]\nnot an entry\n").expect_err("must fail");
        assert!(err.contains("line 2"), "{err}");
        let err = parse("[panic-sites]\n\"x\" = lots\n").expect_err("must fail");
        assert!(err.contains("not an integer"), "{err}");
    }
}
