//! The alloc-free-region check.
//!
//! The paper's central performance result is that the JTS-like flat
//! refinement loop beats the GEOS-like boxed one by 3.3–3.9× because
//! it never touches the allocator on the per-candidate path. This
//! check makes that property structural: code between
//! `tidy:alloc-free` `:start` / `:end` marker comments may not contain
//! any allocating construct.

use crate::lexer::SourceFile;
use crate::{Finding, Tree};

pub const NAME: &str = "alloc-free";

// Assembled with `concat!` so this file's own source never contains
// the contiguous marker and the check does not flag itself.
const START: &str = concat!("tidy:alloc-free", ":start");
const END: &str = concat!("tidy:alloc-free", ":end");

/// Tokens that allocate (matched against the code view, so strings and
/// comments never trip this).
const BANNED: [&str; 11] = [
    "Vec::new",
    "vec!",
    "Box::new",
    "format!",
    ".to_vec()",
    ".clone()",
    ".collect()",
    "String::new",
    ".to_string()",
    ".to_owned()",
    "with_capacity",
];

/// Checks every marked region in the tree.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for entry in &tree.sources {
        findings.extend(check_file(&entry.rel, &entry.source));
    }
    findings
}

/// Checks one file's marked regions.
pub fn check_file(rel: &str, source: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut region_start: Option<usize> = None;
    for (idx, line) in source.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.raw.contains(START) {
            if region_start.is_some() {
                findings.push(finding(
                    rel,
                    lineno,
                    "nested alloc-free start marker".into(),
                ));
            }
            region_start = Some(lineno);
            continue;
        }
        if line.raw.contains(END) {
            if region_start.is_none() {
                findings.push(finding(
                    rel,
                    lineno,
                    "alloc-free end marker without a start".into(),
                ));
            }
            region_start = None;
            continue;
        }
        if region_start.is_some() {
            for token in BANNED {
                if line.code.contains(token) {
                    findings.push(finding(
                        rel,
                        lineno,
                        format!("allocating construct `{token}` inside alloc-free region"),
                    ));
                }
            }
        }
    }
    if let Some(start) = region_start {
        findings.push(finding(
            rel,
            start,
            "alloc-free region is never closed (missing end marker)".into(),
        ));
    }
    findings
}

fn finding(rel: &str, line: usize, message: String) -> Finding {
    Finding {
        check: NAME,
        file: rel.to_string(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Fixture builder: `concat!`-free way to wrap code in markers
    /// without this file containing the contiguous marker itself.
    fn wrapped(body: &str) -> String {
        format!("// {START}\n{body}// {END}\n")
    }

    #[test]
    fn clean_region_passes() {
        let src = wrapped("fn f(x: &[u8]) -> u8 { x[0] }\n");
        assert!(check_file("x.rs", &lex(&src)).is_empty());
    }

    #[test]
    fn allocation_in_region_is_flagged() {
        let src = wrapped("let v = Vec::new();\n");
        let f = check_file("x.rs", &lex(&src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("Vec::new"));
    }

    #[test]
    fn allocation_outside_region_is_fine() {
        let src = format!(
            "let v = vec![1];\n{}let b = Box::new(2);\n",
            wrapped("let y = 1;\n")
        );
        assert!(check_file("x.rs", &lex(&src)).is_empty());
    }

    #[test]
    fn banned_token_in_string_is_ignored() {
        let src = wrapped("let s = \"call Vec::new here\";\n");
        assert!(check_file("x.rs", &lex(&src)).is_empty());
    }

    #[test]
    fn unbalanced_markers_are_flagged() {
        let f = check_file("x.rs", &lex(&format!("// {START}\nlet x = 1;\n")));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never closed"));

        let f = check_file("x.rs", &lex(&format!("let x = 1;\n// {END}\n")));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without a start"));
    }
}
