//! The dependency-allowlist / hermeticity check.
//!
//! The build must complete offline: every dependency of every crate
//! must resolve to an in-tree path crate. Member manifests may only
//! inherit (`foo.workspace = true`) or use explicit `path =` entries;
//! the root `[workspace.dependencies]` table may only contain `path =`
//! entries. Anything with a registry version, a `git =` source or a
//! bare version string fails.

use crate::{Finding, Tree};

pub const NAME: &str = "deps";

/// Checks every manifest in the tree.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, text) in &tree.manifests {
        findings.extend(check_manifest(rel, text));
    }
    findings
}

/// Checks one Cargo.toml.
pub fn check_manifest(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_toml_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        if let Some(msg) = entry_violation(&section, &line) {
            findings.push(Finding {
                check: NAME,
                file: rel.to_string(),
                line: idx + 1,
                message: msg,
            });
        }
    }
    findings
}

/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]` and target-specific variants.
fn is_dependency_section(section: &str) -> bool {
    section.ends_with("dependencies")
}

/// Returns a violation message for a dependency entry line, or `None`
/// when the entry is hermetic.
fn entry_violation(section: &str, line: &str) -> Option<String> {
    let (name, spec) = line.split_once('=')?;
    let name = name.trim();
    let spec = spec.trim();
    let dep_name = name.split('.').next().unwrap_or(name);
    if section == "workspace.dependencies" {
        // The root table defines sources: in-tree paths only.
        if spec.contains("path") && !spec.contains("git") && !spec.contains("version") {
            return None;
        }
        return Some(format!(
            "workspace dependency `{dep_name}` is not an in-tree path crate — the build \
             must resolve offline"
        ));
    }
    // Member manifests: inherit from the workspace or use a path.
    if name.ends_with(".workspace") && spec == "true" {
        return None;
    }
    if spec.contains("workspace = true") || spec.contains("path") {
        if spec.contains("version") || spec.contains("git") {
            return Some(format!(
                "dependency `{dep_name}` mixes a registry/git source with its in-tree \
                 spec — remove the external source"
            ));
        }
        return None;
    }
    Some(format!(
        "non-workspace dependency `{dep_name}` — every dependency must be an in-tree \
         crate (`{dep_name}.workspace = true` or a path entry) so the build resolves \
         offline"
    ))
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for manifests: none of ours put `#` inside strings.
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_inherited_deps_pass() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\ngeom.workspace = true\nrtree = { workspace = true }\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_dep_is_flagged() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let f = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn git_dep_is_flagged() {
        let toml = "[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(check_manifest("crates/x/Cargo.toml", toml).len(), 1);
    }

    #[test]
    fn featureful_registry_dep_is_flagged() {
        let toml = "[dependencies]\ntokio = { version = \"1\", features = [\"full\"] }\n";
        assert_eq!(check_manifest("crates/x/Cargo.toml", toml).len(), 1);
    }

    #[test]
    fn root_workspace_table_must_be_paths() {
        let ok = "[workspace.dependencies]\ngeom = { path = \"crates/geom\" }\n";
        assert!(check_manifest("Cargo.toml", ok).is_empty());
        let bad = "[workspace.dependencies]\nrand = \"0.9\"\n";
        assert_eq!(check_manifest("Cargo.toml", bad).len(), 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml =
            "[profile.release]\nlto = \"fat\"\n[workspace.lints.rust]\nunsafe_code = \"warn\"\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn comments_are_stripped() {
        let toml = "[dependencies]\n# old: serde = \"1.0\"\ngeom.workspace = true # in-tree\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }
}
