//! The float-equality lint for coordinate code.
//!
//! Exact `==`/`!=` on coordinates is almost always a robustness bug in
//! geometry code — predicates must go through the deliberate exact
//! comparisons in `geom::algorithms` (orientation tests, dedup of
//! *bit-identical* repeated vertices) or an epsilon. This check flags
//! float comparisons in `crates/geom/src` outside the approved
//! algorithm files; a justified exception is escaped inline with
//! `// tidy:allow(float-eq)`.

use crate::lexer::SourceFile;
use crate::{Finding, Tree};

pub const NAME: &str = "float-eq";

const SCOPE: &str = "crates/geom/src/";

/// Files where exact float comparison is part of the algorithm
/// (orientation zero-tests, bit-identical vertex dedup).
const APPROVED: [&str; 5] = [
    "crates/geom/src/algorithms/segment.rs",
    "crates/geom/src/algorithms/hull.rs",
    "crates/geom/src/algorithms/intersects.rs",
    "crates/geom/src/algorithms/clip.rs",
    "crates/geom/src/algorithms/distance.rs",
];

const ALLOW: &str = "tidy:allow(float-eq)";

/// Checks `crates/geom/src` minus the approved list.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for entry in tree.sources_under(SCOPE) {
        if APPROVED.contains(&entry.rel.as_str()) {
            continue;
        }
        findings.extend(check_file(&entry.rel, &entry.source));
    }
    findings
}

/// Flags float `==`/`!=` in one file's non-test code.
pub fn check_file(rel: &str, source: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in source.lines.iter().enumerate() {
        if line.in_test || line.raw.contains(ALLOW) {
            continue;
        }
        for (pos, op) in comparison_ops(&line.code) {
            let left = left_operand(&line.code[..pos]);
            let right = right_operand(&line.code[pos + 2..]);
            if is_floatish(&left) || is_floatish(&right) {
                findings.push(Finding {
                    check: NAME,
                    file: rel.to_string(),
                    line: idx + 1,
                    message: format!(
                        "exact float comparison `{left} {op} {right}` — compare with an \
                         epsilon, move it into an approved geom::algorithms file, or \
                         escape with `// {ALLOW}`"
                    ),
                });
            }
        }
    }
    findings
}

/// Byte positions of standalone `==` / `!=` operators.
fn comparison_ops(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = &bytes[i..i + 2];
        let prev = i.checked_sub(1).map(|p| bytes[p]);
        let next = bytes.get(i + 2);
        let standalone = !matches!(prev, Some(b'=') | Some(b'!') | Some(b'<') | Some(b'>'))
            && next != Some(&b'=');
        if standalone && pair == b"==" {
            out.push((i, "=="));
            i += 2;
        } else if standalone && pair == b"!=" {
            out.push((i, "!="));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// The token ending at the end of `prefix` (trailing operand of the
/// left side).
fn left_operand(prefix: &str) -> String {
    let trimmed = prefix.trim_end();
    let token: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ']' | '[' | ')' | '('))
        .collect();
    token.chars().rev().collect()
}

/// The token starting at the beginning of `suffix`.
fn right_operand(suffix: &str) -> String {
    suffix
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ']' | '[' | '-'))
        .collect()
}

/// Heuristic: does this operand look like a coordinate float?
fn is_floatish(token: &str) -> bool {
    if token.is_empty() {
        return false;
    }
    // Float literal: `0.0`, `1e-9`, `-3.5`.
    let numeric = token.trim_start_matches('-');
    if numeric.chars().next().is_some_and(|c| c.is_ascii_digit()) && numeric.contains('.') {
        return true;
    }
    // Coordinate accessors and envelope bounds.
    if token.ends_with(".x") || token.ends_with(".y") {
        return true;
    }
    for bound in ["min_x", "min_y", "max_x", "max_y"] {
        if token.ends_with(bound) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn float_literal_comparison_is_flagged() {
        let f = check_file("x.rs", &lex("fn f(d: f64) -> bool { d == 0.0 }\n"));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("=="));
    }

    #[test]
    fn coordinate_accessor_comparison_is_flagged() {
        let f = check_file("x.rs", &lex("let same = a.x == b.x;\n"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn bool_comparison_of_float_predicates_is_fine() {
        // The classic even-odd crossing test: `!=` on two bools.
        let f = check_file("x.rs", &lex("if (y1 > p.y) != (y2 > p.y) { c += 1; }\n"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn integer_comparison_is_fine() {
        assert!(check_file("x.rs", &lex("if n == 0 { return; }\n")).is_empty());
        assert!(check_file("x.rs", &lex("while i != len { i += 1; }\n")).is_empty());
    }

    #[test]
    fn allow_escape_suppresses() {
        let src = "let same = a.x == b.x; // tidy:allow(float-eq): bit-identical dedup\n";
        assert!(check_file("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { assert!(x.y == 0.0); }\n}\n";
        assert!(check_file("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn le_and_ge_are_not_equality() {
        assert!(check_file("x.rs", &lex("if d <= 0.0 { return; }\n")).is_empty());
        assert!(check_file("x.rs", &lex("if d >= 0.0 { return; }\n")).is_empty());
    }
}
