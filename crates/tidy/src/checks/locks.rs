//! The lock-discipline check for the concurrency crates (`cluster`,
//! `sparklet`, `minihdfs`).
//!
//! Two rules, both scoped to named guards (`let g = x.lock()` /
//! `.read()` / `.write()`):
//!
//! 1. **No guard held across a blocking call** — `send`/`recv`/`join`
//!    while a guard is live stalls every other thread contending for
//!    that lock (and with the std poisoning-recovery wrappers in
//!    `crates/sync`, turns a slow task into a cluster-wide convoy).
//! 2. **Declared acquisition order** — when two guards are live at
//!    once, the locks must be acquired in the order declared in
//!    `crates/tidy/lock_order.toml`; locks absent from the manifest
//!    may not be paired at all.
//!
//! The analysis is a brace-depth scan over the code view: a guard dies
//! when its enclosing block closes or it is explicitly `drop`ped.

use crate::lexer::SourceFile;
use crate::{Finding, Tree};

pub const NAME: &str = "lock-discipline";

/// Relative path of the declared acquisition order.
pub const ORDER_PATH: &str = "crates/tidy/lock_order.toml";

/// Crates the check applies to.
const SCOPES: [&str; 3] = [
    "crates/cluster/src/",
    "crates/sparklet/src/",
    "crates/minihdfs/src/",
];

const ACQUIRE: [&str; 3] = [".lock()", ".read()", ".write()"];
const BLOCKING: [&str; 4] = [".send(", ".recv()", ".recv_timeout(", ".join()"];

/// Parses `order = ["a", "b", …]` from the manifest text.
pub fn parse_order(text: &str) -> Result<Vec<String>, String> {
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("order") {
            let rest = rest.trim_start().strip_prefix('=').unwrap_or(rest).trim();
            if !rest.starts_with('[') || !rest.ends_with(']') {
                return Err("lock order must be a single-line `order = [..]` list".to_string());
            }
            return Ok(rest[1..rest.len() - 1]
                .split(',')
                .map(|s| s.trim().trim_matches('"').to_string())
                .filter(|s| !s.is_empty())
                .collect());
        }
    }
    Err("lock_order.toml has no `order = [..]` entry".to_string())
}

/// A live guard.
struct Guard {
    var: String,
    lock: String,
    depth: i32,
    line: usize,
}

/// Checks the in-scope crates against the declared order.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let order_text = match std::fs::read_to_string(tree.root.join(ORDER_PATH)) {
        Ok(text) => text,
        Err(e) => {
            return vec![finding(
                ORDER_PATH,
                0,
                format!("cannot read lock order manifest: {e}"),
            )]
        }
    };
    let order = match parse_order(&order_text) {
        Ok(order) => order,
        Err(msg) => return vec![finding(ORDER_PATH, 0, msg)],
    };
    let mut findings = Vec::new();
    for entry in &tree.sources {
        if SCOPES.iter().any(|s| entry.rel.starts_with(s)) {
            findings.extend(check_file(&entry.rel, &entry.source, &order));
        }
    }
    findings
}

/// Checks one file. `order` is the declared acquisition order.
pub fn check_file(rel: &str, source: &SourceFile, order: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    for (idx, line) in source.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test {
            continue;
        }
        let code = &line.code;

        // Explicit drops kill guards by name.
        for guard_idx in (0..guards.len()).rev() {
            if code.contains(&format!("drop({})", guards[guard_idx].var)) {
                guards.remove(guard_idx);
            }
        }

        // Blocking calls while any guard is live.
        if !guards.is_empty() {
            for token in BLOCKING {
                if code.contains(token) {
                    let g = &guards[guards.len() - 1];
                    findings.push(finding(
                        rel,
                        lineno,
                        format!(
                            "blocking call `{token}` while guard `{}` (lock `{}`, acquired \
                             line {}) is held — release the lock first",
                            g.var, g.lock, g.line
                        ),
                    ));
                }
            }
        }

        // New named guard?
        if let Some((var, lock)) = named_acquisition(code) {
            for held in &guards {
                match (position(order, &held.lock), position(order, &lock)) {
                    (Some(a), Some(b)) if b <= a => findings.push(finding(
                        rel,
                        lineno,
                        format!(
                            "lock `{lock}` acquired while holding `{}` violates the declared \
                             order in {ORDER_PATH}",
                            held.lock
                        ),
                    )),
                    (Some(_), Some(_)) => {}
                    _ => findings.push(finding(
                        rel,
                        lineno,
                        format!(
                            "locks `{}` and `{lock}` held together but at least one is not \
                             declared in {ORDER_PATH}",
                            held.lock
                        ),
                    )),
                }
            }
            guards.push(Guard {
                var,
                lock,
                depth,
                line: lineno,
            });
        }

        // Track block structure; guards die with their block.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
    findings
}

fn position(order: &[String], name: &str) -> Option<usize> {
    order.iter().position(|o| o == name)
}

/// Detects `let [mut] <var> = <chain>.lock()/read()/write()` and
/// returns `(guard_var, lock_name)`.
fn named_acquisition(code: &str) -> Option<(String, String)> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let var: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if var.is_empty() {
        return None;
    }
    let acquire_pos = ACQUIRE.iter().find_map(|t| code.find(t))?;
    let lock = last_path_segment(&code[..acquire_pos]);
    Some((var, lock))
}

/// The identifier immediately before the acquisition call — the lock's
/// name (`self.inner.files.read()` → `files`).
fn last_path_segment(prefix: &str) -> String {
    let name: String = prefix
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    name.chars().rev().collect()
}

fn finding(rel: &str, line: usize, message: String) -> Finding {
    Finding {
        check: NAME,
        file: rel.to_string(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn order() -> Vec<String> {
        vec!["files".to_string(), "stages".to_string()]
    }

    #[test]
    fn guard_across_send_is_flagged() {
        let src = "fn f(&self) {\n    let g = self.files.lock();\n    self.tx.send(1);\n}\n";
        let f = check_file("x.rs", &lex(src), &order());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`g`"));
    }

    #[test]
    fn guard_released_by_block_end_is_fine() {
        let src = "fn f(&self) {\n    {\n        let g = self.files.lock();\n        g.push(1);\n    }\n    self.tx.send(1);\n}\n";
        assert!(check_file("x.rs", &lex(src), &order()).is_empty());
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let src = "fn f(&self) {\n    let g = self.files.lock();\n    drop(g);\n    self.tx.send(1);\n}\n";
        assert!(check_file("x.rs", &lex(src), &order()).is_empty());
    }

    #[test]
    fn temporary_guards_are_not_tracked() {
        let src = "fn f(&self) {\n    self.files.lock().push(1);\n    self.tx.send(1);\n}\n";
        assert!(check_file("x.rs", &lex(src), &order()).is_empty());
    }

    #[test]
    fn out_of_order_acquisition_is_flagged() {
        let src =
            "fn f(&self) {\n    let s = self.stages.lock();\n    let f = self.files.read();\n}\n";
        let f = check_file("x.rs", &lex(src), &order());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("declared order"));
    }

    #[test]
    fn in_order_acquisition_passes() {
        let src =
            "fn f(&self) {\n    let f = self.files.read();\n    let s = self.stages.lock();\n}\n";
        assert!(check_file("x.rs", &lex(src), &order()).is_empty());
    }

    #[test]
    fn undeclared_lock_pairing_is_flagged() {
        let src =
            "fn f(&self) {\n    let f = self.files.read();\n    let q = self.queue.lock();\n}\n";
        let f = check_file("x.rs", &lex(src), &order());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not"));
        assert!(f[0].message.contains("declared"));
    }

    #[test]
    fn order_parser_reads_list() {
        let parsed = parse_order("# comment\norder = [\"a\", \"b\"]\n").expect("parse");
        assert_eq!(parsed, vec!["a".to_string(), "b".to_string()]);
        assert!(parse_order("nothing here\n").is_err());
    }
}
