//! The individual tidy checks. Each module exposes a `NAME` constant,
//! a whole-tree `check(&Tree)` entry point and (for the per-file
//! checks) a `check_file` function the fixture tests drive directly.

pub mod alloc_free;
pub mod deps;
pub mod float_eq;
pub mod locks;
pub mod panics;
pub mod unsafe_audit;
