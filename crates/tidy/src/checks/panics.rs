//! The panic-freedom ratchet.
//!
//! Library code (everything under `crates/<name>/src/`) should return
//! `Result` instead of panicking: a panic inside a sparklet task
//! poisons locks and takes down whole simulated stages. Existing sites
//! are grandfathered in `crates/tidy/baseline.toml`; the check fails
//! when a file gains a site *or* loses one without the baseline being
//! regenerated, so the count only ever ratchets down.

use std::collections::BTreeMap;

use crate::lexer::SourceFile;
use crate::{baseline, Finding, Tree};

pub const NAME: &str = "panic-ratchet";

/// Panicking constructs counted by the ratchet.
const PANIC_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Counts panic sites in one file's non-test code.
pub fn count_file(source: &SourceFile) -> usize {
    source
        .lines
        .iter()
        .filter(|l| !l.in_test)
        .map(|l| {
            PANIC_TOKENS
                .iter()
                .map(|t| l.code.matches(t).count())
                .sum::<usize>()
        })
        .sum()
}

/// Current per-file counts over all library sources (zero-count files
/// included so the ratchet can detect stale baseline entries).
pub fn current_counts(tree: &Tree) -> BTreeMap<String, usize> {
    tree.library_sources()
        .map(|s| (s.rel.clone(), count_file(&s.source)))
        .collect()
}

/// Compares current counts against the committed baseline.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let baseline_text = match std::fs::read_to_string(tree.root.join(baseline::BASELINE_PATH)) {
        Ok(text) => text,
        Err(e) => {
            return vec![finding(
                baseline::BASELINE_PATH,
                0,
                format!("cannot read baseline: {e} (regenerate with `cargo run -p tidy -- --write-baseline`)"),
            )]
        }
    };
    let allowed = match baseline::parse(&baseline_text) {
        Ok(map) => map,
        Err(msg) => return vec![finding(baseline::BASELINE_PATH, 0, msg)],
    };
    compare(&current_counts(tree), &allowed)
}

/// The ratchet comparison, separated out for tests.
pub fn compare(
    current: &BTreeMap<String, usize>,
    allowed: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, &count) in current {
        let cap = allowed.get(path).copied().unwrap_or(0);
        if count > cap {
            findings.push(finding(
                path,
                0,
                format!(
                    "{count} panic sites but the baseline allows {cap} — remove the new \
                     unwrap/expect/panic instead of raising the baseline"
                ),
            ));
        } else if count < cap {
            findings.push(finding(
                path,
                0,
                format!(
                    "{count} panic sites, down from {cap} — lock the cleanup in with \
                     `cargo run -p tidy -- --write-baseline`"
                ),
            ));
        }
    }
    for path in allowed.keys() {
        if !current.contains_key(path) {
            findings.push(finding(
                path,
                0,
                "baseline entry for a file that no longer exists — regenerate with \
                 `cargo run -p tidy -- --write-baseline`"
                    .to_string(),
            ));
        }
    }
    findings
}

fn finding(rel: &str, line: usize, message: String) -> Finding {
    Finding {
        check: NAME,
        file: rel.to_string(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn counts_skip_tests_comments_and_strings() {
        let src = r#"
fn lib(x: Option<u32>) -> u32 {
    // .unwrap() in a comment does not count
    let s = "panic! in a string does not count";
    let _ = s;
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn t() {
        Some(1).unwrap();
        panic!("boom");
    }
}
"#;
        assert_eq!(count_file(&lex(src)), 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_count() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert_eq!(count_file(&lex(src)), 0);
    }

    #[test]
    fn ratchet_flags_growth_shrink_and_stale_entries() {
        let mut current = BTreeMap::new();
        current.insert("a.rs".to_string(), 3);
        current.insert("b.rs".to_string(), 1);
        current.insert("c.rs".to_string(), 0);
        let mut allowed = BTreeMap::new();
        allowed.insert("a.rs".to_string(), 2); // grew
        allowed.insert("b.rs".to_string(), 2); // shrank
        allowed.insert("gone.rs".to_string(), 1); // stale
        let findings = compare(&current, &allowed);
        assert_eq!(findings.len(), 3);
        assert!(findings
            .iter()
            .any(|f| f.file == "a.rs" && f.message.contains("allows 2")));
        assert!(findings
            .iter()
            .any(|f| f.file == "b.rs" && f.message.contains("down from")));
        assert!(findings
            .iter()
            .any(|f| f.file == "gone.rs" && f.message.contains("no longer exists")));
    }

    #[test]
    fn matching_counts_pass() {
        let mut current = BTreeMap::new();
        current.insert("a.rs".to_string(), 2);
        current.insert("clean.rs".to_string(), 0);
        let mut allowed = BTreeMap::new();
        allowed.insert("a.rs".to_string(), 2);
        assert!(compare(&current, &allowed).is_empty());
    }
}
