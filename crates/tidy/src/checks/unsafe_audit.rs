//! The unsafe-audit check: every `unsafe` token in code must carry a
//! `// SAFETY:` comment on the same line or within the three lines
//! above it, so each block documents the invariant it relies on.
//! (The workspace otherwise warns on `unsafe_code` via
//! `[workspace.lints]`; this check guards the justification, not the
//! existence.)

use crate::lexer::SourceFile;
use crate::{Finding, Tree};

pub const NAME: &str = "unsafe";

/// How many lines above an `unsafe` token the SAFETY comment may sit.
const SAFETY_WINDOW: usize = 3;

/// Checks every source in the tree.
pub fn check(tree: &Tree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for entry in &tree.sources {
        findings.extend(check_file(&entry.rel, &entry.source));
    }
    findings
}

/// Checks one file.
pub fn check_file(rel: &str, source: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in source.lines.iter().enumerate() {
        if !has_unsafe_token(&line.code) {
            continue;
        }
        let window_start = idx.saturating_sub(SAFETY_WINDOW);
        let documented = source.lines[window_start..=idx]
            .iter()
            .any(|l| l.raw.contains("SAFETY:"));
        if !documented {
            findings.push(Finding {
                check: NAME,
                file: rel.to_string(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment documenting the invariant"
                    .to_string(),
            });
        }
    }
    findings
}

/// True when the code view contains `unsafe` as a standalone token
/// (not `unsafe_code` or an identifier suffix).
fn has_unsafe_token(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + "unsafe".len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn documented_unsafe_passes() {
        let src = "// SAFETY: the index was bounds-checked above.\nlet v = unsafe { slice.get_unchecked(i) };\n";
        assert!(check_file("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let f = check_file("x.rs", &lex("let v = unsafe { *ptr };\n"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        let src = "// SAFETY: stale\n\n\n\n\nlet v = unsafe { *ptr };\n";
        assert_eq!(check_file("x.rs", &lex(src)).len(), 1);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe in prose\nlet s = \"unsafe\";\n";
        assert!(check_file("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn identifier_containing_unsafe_is_ignored() {
        let src = "#![deny(unsafe_code)]\nlet not_unsafe_at_all = 1;\n";
        let f = check_file("x.rs", &lex(src));
        // `unsafe_code` has a trailing `_`, `not_unsafe_at_all` has a
        // leading one — neither is the keyword.
        assert!(f.is_empty(), "{f:?}");
    }
}
