//! Comment- and string-aware line lexer.
//!
//! Every tidy check is textual, so the first thing that happens to a
//! source file is a pass that blanks out everything that is not code:
//! line comments, (nested) block comments, string literals, raw string
//! literals and character literals are replaced with spaces,
//! preserving line/column positions. Checks then match tokens against
//! the *code view* and never trip over `".unwrap()"` appearing inside
//! a string or a doc comment.
//!
//! The lexer also computes, per line, whether the line sits inside a
//! `#[cfg(test)]`-gated item — the panic ratchet and float-equality
//! checks skip those regions.

/// One lexed source line.
#[derive(Debug)]
pub struct Line {
    /// The original text (checks read marker comments from here).
    pub raw: String,
    /// The text with comments and literal contents blanked to spaces;
    /// same length and column positions as `raw`.
    pub code: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole lexed file.
#[derive(Debug)]
pub struct SourceFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Nested block comment with depth.
    Block(u32),
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with the given hash count.
    RawStr(u32),
}

/// Lexes a file into per-line raw/code views.
pub fn lex(source: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw_line in source.lines() {
        let (code, next) = blank_non_code(raw_line, state);
        state = next;
        lines.push(Line {
            raw: raw_line.to_string(),
            code,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    SourceFile { lines }
}

/// Processes one line in `state`, returning its code view and the
/// state the next line starts in.
fn blank_non_code(line: &str, mut state: State) -> (String, State) {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    // Line comment: blank the rest of the line.
                    for _ in i..chars.len() {
                        out.push(' ');
                    }
                    i = chars.len();
                }
                '/' if next == Some('*') => {
                    state = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) && !prev_is_ident(&chars, i) => {
                    // Possible raw string: r" or r#…#".
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. `'a'` / `'\n'` are
                    // literals; `'a` followed by non-quote is a
                    // lifetime and stays in the code view.
                    if let Some(len) = char_literal_len(&chars, i) {
                        for _ in 0..len {
                            out.push(' ');
                        }
                        i += len;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    // Escape: blank it and whatever it escapes (a
                    // trailing backslash continues the string onto the
                    // next line, which `lines()` handles naturally).
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                    i += 1;
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    for _ in 0..=hashes as usize {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    (out, state)
}

/// True when `chars[i]` is preceded by an identifier character (so the
/// `r` in `for r in …` or `attr"` in a macro never starts a raw
/// string).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a char literal starts at `i` (which holds `'`), returns its
/// total length; `None` for lifetimes.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote.
            let mut j = i + 2;
            // Skip the escaped character (or `u{…}` sequence).
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            (j < chars.len()).then(|| j - i + 1)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// True when the `"` at `i` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]` item by tracking the brace
/// depth of the block that follows the attribute.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending = false; // saw the attribute, waiting for `{`
    let mut depth: u32 = 0; // brace depth inside the test item
    for line in lines.iter_mut() {
        let mut attr_pos = None;
        if depth == 0 && !pending {
            attr_pos = line.code.find("#[cfg(test)]");
            if attr_pos.is_some() {
                pending = true;
            }
        }
        let mut in_this_line = depth > 0 || pending;
        for (pos, c) in line.code.char_indices() {
            if let Some(a) = attr_pos {
                if pos < a {
                    continue;
                }
            }
            if pending {
                if c == '{' {
                    pending = false;
                    depth = 1;
                    in_this_line = true;
                }
            } else if depth > 0 {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            in_this_line = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        line.in_test = in_this_line || depth > 0 || pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let f = lex("let x = 1; // .unwrap() here\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].raw.contains("unwrap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = lex(r#"let s = "call .unwrap() now"; s.len();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
        // Quotes survive so columns line up.
        assert_eq!(f.lines[0].code.len(), f.lines[0].raw.len());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = lex(r#"let s = "a \" b .unwrap()"; x();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("x();"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"first .unwrap()\nsecond panic!( \"# ; tail();";
        let f = lex(src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[1].code.contains("tail();"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner .unwrap() */ still comment */ b();";
        let f = lex(src);
        assert!(f.lines[0].code.contains("a();"));
        assert!(f.lines[0].code.contains("b();"));
        assert!(!f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn multiline_block_comment_state_carries() {
        let src = "a(); /* comment\n.unwrap()\n*/ b();";
        let f = lex(src);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("b();"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_stay() {
        let f = lex("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains('"'));
        assert!(!f.lines[0].code.contains("'x'"));
    }

    #[test]
    fn identifier_r_does_not_start_raw_string() {
        let f = lex(r#"for r in list { r.push(1); } let s = r"raw"; t();"#);
        assert!(f.lines[0].code.contains("r.push(1);"));
        assert!(!f.lines[0].code.contains("raw"));
        assert!(f.lines[0].code.contains("t();"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_in_comment_is_ignored() {
        let src = "// #[cfg(test)]\nfn lib() { x(); }";
        let f = lex(src);
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn doc_comments_are_blanked() {
        let f = lex("/// Panics: calls panic!() on bad input.\nfn f() {}");
        assert!(!f.lines[0].code.contains("panic"));
    }
}
