//! # tidy — the workspace's in-tree static-analysis suite
//!
//! Modeled on rustc's `tidy`: a zero-dependency binary (and library,
//! so `tests/tidy.rs` can run it as a tier-1 workspace test) that
//! enforces repo-wide invariants ordinary rustc lints cannot express:
//!
//! | check         | invariant                                                  |
//! |---------------|------------------------------------------------------------|
//! | `alloc-free`  | no allocation between `tidy:alloc-free` markers            |
//! | `panic-ratchet` | panic sites in library code only ever decrease           |
//! | `lock-discipline` | no guard held across blocking calls; declared order    |
//! | `float-eq`    | no `==`/`!=` on coordinate floats outside approved files   |
//! | `deps`        | every dependency resolves in-tree (offline build)          |
//! | `unsafe`      | every `unsafe` carries a `// SAFETY:` comment              |
//!
//! All checks run on the comment/string-aware code view produced by
//! [`lexer`], so tokens inside strings and comments never count.
//!
//! Run as `cargo run -p tidy`; regenerate the panic baseline after a
//! cleanup with `cargo run -p tidy -- --write-baseline`.

pub mod baseline;
pub mod checks;
pub mod lexer;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One violation found by a check.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Check name (stable identifier for machine consumption).
    pub check: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tidy: {}: {}:{}: {}",
            self.check, self.file, self.line, self.message
        )
    }
}

/// A lexed source file plus its workspace-relative path.
pub struct SourceEntry {
    pub rel: String,
    pub source: lexer::SourceFile,
}

/// The loaded workspace: lexed Rust sources and raw manifests.
pub struct Tree {
    pub root: PathBuf,
    pub sources: Vec<SourceEntry>,
    /// `(rel_path, contents)` of every Cargo.toml.
    pub manifests: Vec<(String, String)>,
}

impl Tree {
    /// Sources whose path starts with `prefix` (e.g. `crates/geom/src/`).
    pub fn sources_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceEntry> {
        self.sources
            .iter()
            .filter(move |s| s.rel.starts_with(prefix))
    }

    /// Library sources: everything under a `crates/<name>/src/` dir.
    pub fn library_sources(&self) -> impl Iterator<Item = &SourceEntry> {
        self.sources.iter().filter(|s| {
            let mut parts = s.rel.split('/');
            parts.next() == Some("crates") && parts.nth(1) == Some("src")
        })
    }
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

/// [`workspace_root_from`] starting at the current directory; at test
/// time the compile-time manifest dir is the fallback.
pub fn workspace_root() -> Option<PathBuf> {
    std::env::current_dir()
        .ok()
        .and_then(|d| workspace_root_from(&d))
        .or_else(|| workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR"))))
}

/// Directories scanned for Rust sources, relative to the root.
/// `crates/tidy/fixtures` is deliberately absent: fixtures contain
/// seeded violations exercised by tests only.
const SOURCE_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Loads and lexes the workspace.
///
/// # Errors
/// Propagates I/O failures from directory walking or file reads.
pub fn load_tree(root: &Path) -> io::Result<Tree> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        manifests.push(("Cargo.toml".to_string(), text));
    }
    for sub in SOURCE_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(root, &dir, &mut sources, &mut manifests)?;
        }
    }
    sources.sort_by(|a, b| a.rel.cmp(&b.rel));
    manifests.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Tree {
        root: root.to_path_buf(),
        sources,
        manifests,
    })
}

fn walk(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<SourceEntry>,
    manifests: &mut Vec<(String, String)>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, sources, manifests)?;
        } else if name == "Cargo.toml" {
            manifests.push((rel_of(root, &path), fs::read_to_string(&path)?));
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            sources.push(SourceEntry {
                rel: rel_of(root, &path),
                source: lexer::lex(&text),
            });
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The registered checks, in report order.
pub fn check_names() -> [&'static str; 6] {
    [
        checks::alloc_free::NAME,
        checks::panics::NAME,
        checks::locks::NAME,
        checks::float_eq::NAME,
        checks::deps::NAME,
        checks::unsafe_audit::NAME,
    ]
}

/// Runs every check, returning all findings grouped in check order.
pub fn run_all(tree: &Tree) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(checks::alloc_free::check(tree));
    findings.extend(checks::panics::check(tree));
    findings.extend(checks::locks::check(tree));
    findings.extend(checks::float_eq::check(tree));
    findings.extend(checks::deps::check(tree));
    findings.extend(checks::unsafe_audit::check(tree));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_manifest_dir() {
        let root = workspace_root().expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/tidy").is_dir());
    }

    #[test]
    fn load_tree_sees_known_files_and_skips_fixtures() {
        let root = workspace_root().expect("workspace root");
        let tree = load_tree(&root).expect("load");
        assert!(tree
            .sources
            .iter()
            .any(|s| s.rel == "crates/geom/src/engine.rs"));
        assert!(tree.sources.iter().any(|s| s.rel == "tests/props.rs"));
        assert!(!tree.sources.iter().any(|s| s.rel.contains("fixtures")));
        assert!(tree.manifests.iter().any(|(p, _)| p == "Cargo.toml"));
        assert!(tree
            .manifests
            .iter()
            .any(|(p, _)| p == "crates/geom/Cargo.toml"));
    }

    #[test]
    fn library_sources_excludes_workspace_tests() {
        let root = workspace_root().expect("workspace root");
        let tree = load_tree(&root).expect("load");
        let libs: Vec<&str> = tree.library_sources().map(|s| s.rel.as_str()).collect();
        assert!(libs.contains(&"crates/geom/src/engine.rs"));
        assert!(!libs.iter().any(|p| p.starts_with("tests/")));
        assert!(!libs.iter().any(|p| p.starts_with("examples/")));
        assert!(!libs.iter().any(|p| p.contains("/benches/")));
    }
}
