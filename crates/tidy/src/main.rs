//! The `tidy` binary: runs every check and prints one machine-readable
//! line per check plus one line per finding.
//!
//! ```text
//! tidy: <check>: <file>:<line>: <message>   # one per finding
//! tidy: check <check>: ok|FAIL (<n> findings)
//! tidy: result: ok|FAIL (<n> findings)
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/environment error.
//!
//! `--write-baseline` regenerates the panic-ratchet baseline from the
//! current tree (use after burning down panic sites); `--root <dir>`
//! overrides workspace-root discovery.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut write_baseline = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tidy: error: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: tidy [--root <dir>] [--write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tidy: error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root_override.or_else(tidy::workspace_root) else {
        eprintln!("tidy: error: workspace root not found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let tree = match tidy::load_tree(&root) {
        Ok(tree) => tree,
        Err(e) => {
            eprintln!("tidy: error: failed to load {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let counts = tidy::checks::panics::current_counts(&tree);
        let total: usize = counts.values().sum();
        let path = root.join(tidy::baseline::BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, tidy::baseline::render(&counts)) {
            eprintln!("tidy: error: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "tidy: baseline: wrote {} ({total} panic sites across {} files)",
            tidy::baseline::BASELINE_PATH,
            counts.values().filter(|&&c| c > 0).count(),
        );
        return ExitCode::SUCCESS;
    }

    let findings = tidy::run_all(&tree);
    for f in &findings {
        println!("{f}");
    }
    for name in tidy::check_names() {
        let n = findings.iter().filter(|f| f.check == name).count();
        let status = if n == 0 { "ok" } else { "FAIL" };
        println!("tidy: check {name}: {status} ({n} findings)");
    }
    let status = if findings.is_empty() { "ok" } else { "FAIL" };
    println!("tidy: result: {status} ({} findings)", findings.len());
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
