//! Biodiversity scenario from the paper's introduction: "map the
//! [GBIF] occurrence records to various ecological regions to
//! understand the biodiversity patterns and make conservation plans."
//!
//! Joins species occurrences with WWF ecoregions through the ISP-MC SQL
//! path and reports occurrence density per ecoregion.
//!
//! ```text
//! cargo run --release --example biodiversity
//! ```

use std::collections::HashMap;

use minihdfs::MiniDfs;
use spatialjoin::{IspMc, SpatialPredicate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfs = MiniDfs::new(4, 256 * 1024)?;
    let gbif = datagen::gbif::geometries(50_000, 23);
    let wwf = datagen::wwf::geometries(2_000, 23);
    datagen::write_dataset(&dfs, "/data/gbif", &gbif)?;
    datagen::write_dataset(&dfs, "/data/wwf", &wwf)?;

    let ispmc = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs,
        ("gbif", "/data/gbif"),
        ("wwf", "/data/wwf"),
    );
    let run = ispmc.spatial_join("gbif", "wwf", SpatialPredicate::Within)?;
    println!("SQL: {}", run.sql);
    println!("plan:\n{}", run.result.plan.explain());

    let mut richness: HashMap<i64, usize> = HashMap::new();
    for &(_, region) in run.pairs() {
        *richness.entry(region).or_insert(0) += 1;
    }
    let mut ranked: Vec<(i64, usize)> = richness.into_iter().collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    println!(
        "{} occurrences mapped into {} ecoregions",
        run.pair_count(),
        ranked.len()
    );
    println!("most-sampled ecoregions:");
    for (region, count) in ranked.iter().take(10) {
        println!("  ecoregion {region:>5}: {count:>6} occurrences");
    }
    println!(
        "coverage: {:.1}% of occurrences fall inside at least one ecoregion",
        100.0
            * run
                .pairs()
                .iter()
                .map(|&(occ, _)| occ)
                .collect::<std::collections::HashSet<_>>()
                .len() as f64
            / gbif.len() as f64
    );
    Ok(())
}
