//! Capacity planning with the replay simulator: given a measured join
//! and a latency target, how many EC2 nodes does the deployment need —
//! and which system should run it?
//!
//! This is the operational question the paper's scalability figures
//! answer implicitly; the simulator makes it a one-liner per
//! configuration.
//!
//! ```text
//! cargo run --release --example cluster_planner
//! ```

use minihdfs::MiniDfs;
use spatialjoin::{IspMc, SpatialPredicate, SpatialSpark};

const TARGET_SECONDS: f64 = 5.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfs = MiniDfs::new(10, 64 * 1024)?;
    datagen::write_dataset(&dfs, "/taxi", &datagen::taxi::geometries(300_000, 5))?;
    datagen::write_dataset(
        &dfs,
        "/nycb",
        &datagen::nycb::geometries(datagen::full_size::NYCB, 5),
    )?;

    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs.clone());
    let spark_run = spark.broadcast_spatial_join("/taxi", "/nycb", SpatialPredicate::Within)?;
    let ispmc = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs,
        ("taxi", "/taxi"),
        ("nycb", "/nycb"),
    );
    let ispmc_run = ispmc.spatial_join("taxi", "nycb", SpatialPredicate::Within)?;

    println!(
        "join: 300K pickups x 40K census blocks ({} pairs)",
        spark_run.pair_count()
    );
    println!("target latency: {TARGET_SECONDS} s\n");
    println!("{:>6}{:>16}{:>12}", "nodes", "SpatialSpark(s)", "ISP-MC(s)");
    let mut spark_pick = None;
    let mut ispmc_pick = None;
    for nodes in 1..=16 {
        let s = spark_run.simulated_runtime(nodes);
        let i = ispmc_run.simulated_runtime(nodes);
        println!("{nodes:>6}{s:>16.2}{i:>12.2}");
        if s <= TARGET_SECONDS && spark_pick.is_none() {
            spark_pick = Some(nodes);
        }
        if i <= TARGET_SECONDS && ispmc_pick.is_none() {
            ispmc_pick = Some(nodes);
        }
    }
    println!();
    match spark_pick {
        Some(n) => println!("SpatialSpark meets {TARGET_SECONDS} s with {n} node(s)"),
        None => println!(
            "SpatialSpark cannot meet {TARGET_SECONDS} s within 16 nodes (fixed startup dominates)"
        ),
    }
    match ispmc_pick {
        Some(n) => println!("ISP-MC meets {TARGET_SECONDS} s with {n} node(s)"),
        None => println!("ISP-MC cannot meet {TARGET_SECONDS} s within 16 nodes"),
    }
    Ok(())
}
