//! Quickstart: run one spatial join through both systems in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minihdfs::MiniDfs;
use spatialjoin::{IspMc, SpatialPredicate, SpatialSpark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small synthetic workload into the mini-HDFS:
    //    50 K taxi pickups and 2 K census blocks, as WKT text files.
    let dfs = MiniDfs::new(4, 256 * 1024)?;
    let taxi = datagen::taxi::geometries(50_000, 7);
    let nycb = datagen::nycb::geometries(2_000, 7);
    datagen::write_dataset(&dfs, "/data/taxi", &taxi)?;
    datagen::write_dataset(&dfs, "/data/nycb", &nycb)?;
    println!("wrote {} points and {} polygons", taxi.len(), nycb.len());

    // 2. SpatialSpark: the broadcast R-tree join as dataset transforms.
    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs.clone());
    let spark_run =
        spark.broadcast_spatial_join("/data/taxi", "/data/nycb", SpatialPredicate::Within)?;
    println!(
        "SpatialSpark: {} point-in-polygon pairs, {:.3}s of task work",
        spark_run.pair_count(),
        spark_run.total_work()
    );

    // 3. ISP-MC: the same join as a SQL statement.
    let ispmc = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs,
        ("taxi", "/data/taxi"),
        ("nycb", "/data/nycb"),
    );
    let ispmc_run = ispmc.spatial_join("taxi", "nycb", SpatialPredicate::Within)?;
    println!("ISP-MC SQL : {}", ispmc_run.sql);
    println!("ISP-MC     : {} pairs", ispmc_run.pair_count());

    // 4. Both systems agree, and both can project their measured run
    //    onto any cluster size.
    assert_eq!(
        spatialjoin::normalize_pairs(spark_run.pairs.clone()),
        spatialjoin::normalize_pairs(ispmc_run.pairs().to_vec()),
    );
    for nodes in [1, 4, 10] {
        println!(
            "simulated on {nodes:>2} EC2 nodes: SpatialSpark {:7.2}s   ISP-MC {:7.2}s",
            spark_run.simulated_runtime(nodes),
            ispmc_run.simulated_runtime(nodes)
        );
    }
    Ok(())
}
