//! Fig. 1 of the paper, end to end: both example SQL statements parse,
//! plan (with an EXPLAIN-style dump) and execute through the impalite
//! engine — including the `SPATIAL JOIN` keyword and both spatial
//! predicates.
//!
//! ```text
//! cargo run --release --example sql_join
//! ```

use minihdfs::MiniDfs;
use spatialjoin::IspMc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfs = MiniDfs::new(4, 64 * 1024)?;
    let pnt = datagen::taxi::geometries(20_000, 3);
    let poly = datagen::nycb::geometries(1_000, 3);
    let line = datagen::lion::geometries(5_000, 3);
    datagen::write_dataset(&dfs, "/data/pnt", &pnt)?;
    datagen::write_dataset(&dfs, "/data/poly", &poly)?;
    datagen::write_dataset(&dfs, "/data/lion", &line)?;

    // Register three tables; run the two statements of the paper's Fig 1.
    let sys = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs.clone(),
        ("pnt", "/data/pnt"),
        ("poly", "/data/poly"),
    );

    let within_sql = "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
                      WHERE ST_WITHIN (pnt.geom, poly.geom)";
    let run = sys.execute_sql(within_sql)?;
    println!("-- {within_sql}");
    println!("{}", run.result.plan.explain());
    println!("   -> {} rows\n", run.pair_count());

    // The NearestD statement needs the lion table registered as well.
    let sys2 = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs,
        ("pnt", "/data/pnt"),
        ("lion", "/data/lion"),
    );
    let nearest_sql = "SELECT pnt.id, lion.id FROM pnt SPATIAL JOIN lion \
                       WHERE ST_NearestD (pnt.geom, lion.geom, 5000)";
    let run2 = sys2.execute_sql(nearest_sql)?;
    println!("-- {nearest_sql}");
    println!("{}", run2.result.plan.explain());
    println!("   -> {} rows", run2.pair_count());
    Ok(())
}
