//! Urban-analytics scenario from the paper's introduction: join taxi
//! pickups with census blocks to "better understand human mobility
//! patterns and, subsequently, improve urban planning".
//!
//! Runs the Within join, aggregates pickups per census block, and
//! prints the busiest blocks — the kind of query a city DOT would run.
//!
//! ```text
//! cargo run --release --example taxi_hotspots
//! ```

use std::collections::HashMap;

use minihdfs::MiniDfs;
use spatialjoin::{SpatialPredicate, SpatialSpark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfs = MiniDfs::new(4, 256 * 1024)?;
    let taxi = datagen::taxi::geometries(200_000, 11);
    let nycb = datagen::nycb::geometries(datagen::full_size::NYCB, 11);
    datagen::write_dataset(&dfs, "/data/taxi", &taxi)?;
    datagen::write_dataset(&dfs, "/data/nycb", &nycb)?;

    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs);
    let run = spark.broadcast_spatial_join("/data/taxi", "/data/nycb", SpatialPredicate::Within)?;

    // Aggregate: pickups per block.
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &(_, block) in &run.pairs {
        *counts.entry(block).or_insert(0) += 1;
    }
    let mut ranked: Vec<(i64, usize)> = counts.into_iter().collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    let matched: usize = ranked.iter().map(|(_, c)| c).sum();
    println!(
        "{} of {} pickups fall inside a census block ({} blocks hit)",
        matched,
        taxi.len(),
        ranked.len()
    );
    println!("busiest census blocks:");
    for (block, count) in ranked.iter().take(10) {
        println!("  block {block:>6}: {count:>6} pickups");
    }

    // The skew that motivates dynamic scheduling: compare the top block
    // to the median.
    if ranked.len() > 2 {
        let median = ranked[ranked.len() / 2].1;
        println!(
            "skew: busiest block has {}x the pickups of the median block",
            ranked[0].1 / median.max(1)
        );
    }
    Ok(())
}
