//! Trajectory analytics — the paper's future-work data type in action:
//! join taxi *trips* (timestamped trajectories) with census blocks to
//! find the corridors taxis actually drive through, not just where they
//! pick up.
//!
//! ```text
//! cargo run --release --example trajectories
//! ```

use geom::algorithms::simplify::simplify_linestring;
use spatialjoin::trajectory::{parse_trajectory_records, trajectory_zone_join, zone_dwell_times};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate 5 K trips and 2 K census blocks.
    let records = datagen::trips::trip_records(5_000, 17);
    let trips = parse_trajectory_records(&records);
    let zones: Vec<(i64, geom::Polygon)> = datagen::nycb::polygons(2_000, 17)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    println!("{} trips, {} zones", trips.len(), zones.len());

    // 2. Which zones does each trip pass through?
    let pairs = trajectory_zone_join(&trips, &zones);
    println!("{} (trip, zone) crossings", pairs.len());
    let avg = pairs.len() as f64 / trips.len() as f64;
    println!("a trip crosses {avg:.1} census blocks on average");

    // 3. Where do taxis spend their time? (dwell per zone)
    let dwell = zone_dwell_times(&trips, &zones);
    println!("zones with the most taxi-seconds:");
    for (zone, secs) in dwell.iter().take(8) {
        println!("  zone {zone:>5}: {:>8.0} taxi-seconds", secs);
    }

    // 4. Bonus: GPS thinning. Simplify each path within a 50 ft
    //    tolerance and report the compression — what a production
    //    pipeline would do before storing trajectories.
    let mut before = 0usize;
    let mut after = 0usize;
    for (_, t) in &trips {
        before += t.path().num_points();
        after += simplify_linestring(t.path(), 50.0)?.num_points();
    }
    println!(
        "Douglas-Peucker @50ft: {before} -> {after} vertices ({:.0}% kept)",
        100.0 * after as f64 / before as f64
    );
    Ok(())
}
