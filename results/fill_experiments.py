#!/usr/bin/env python3
"""Fills EXPERIMENTS.md's REPLACE_* placeholders from the harness output.

Usage: python3 results/fill_experiments.py
Reads results/harness_scale0.01.txt, writes EXPERIMENTS.md in place.
"""
import re
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
raw = (root / "results" / "harness_scale0.01.txt").read_text()
exp = (root / "EXPERIMENTS.md").read_text()

sections = {}
for block in raw.split("== "):
    if not block.strip():
        continue
    name, _, body = block.partition(" ==")
    sections[name.strip()] = body


def jts_row(label):
    m = re.search(rf"{label}\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)x", sections["jts_vs_geos"])
    return f"{m.group(3)}× ({m.group(1)} s vs {m.group(2)} s)" if m else "n/a"


def t1_row(label):
    m = re.search(rf"^{re.escape(label)}\s+(\d+)\s+(\d+)\s+(\d+)\s*$",
                  sections["table1"], re.M)
    return f"{m.group(1)} / {m.group(2)} / {m.group(3)}" if m else "n/a"


def t2_row(label):
    m = re.search(rf"^{re.escape(label)}\s+(\d+)\s+(\d+)\s+([\d.]+)x",
                  sections["table2"], re.M)
    if not m:
        return "n/a | n/a"
    return f"{m.group(1)} / {m.group(2)} | {m.group(3)}×"


def fig_summary(key):
    body = sections[key]
    lines = [l for l in body.splitlines() if re.match(r"^(taxi|G10M)", l)]
    out = ["", "```text"]
    header = [l for l in body.splitlines() if l.startswith("experiment")]
    out.extend(header)
    out.extend(lines)
    out.append("```")
    return "\n".join(out)


def baselines_summary():
    body = sections.get("baselines", "")
    lines = [l for l in body.splitlines()
             if l.startswith(("SpatialSpark", "ISP-MC", "SpatialHadoop", "HadoopGIS"))]
    return "\n" + "\n".join("  - " + re.sub(r"\s+", " ", l).strip() for l in lines)


def fault_summary():
    body = sections.get("fault_tolerance", "")
    lines = [l for l in body.splitlines() if l.strip().endswith("x")]
    return "\n" + "\n".join("  - " + re.sub(r"\s+", " ", l).strip() for l in lines)


def ablation_rows():
    """REPLACE_ABL_* values from results/BENCH_fig45_ablation.json."""
    import json

    keys = {
        "REPLACE_ABL_DYNAMIC": "Dynamic",
        "REPLACE_ABL_CHUNKED": "StaticChunked",
        "REPLACE_ABL_LOCALITY": "StaticLocality",
    }
    path = root / "results" / "BENCH_fig45_ablation.json"
    if not path.exists():
        return {k: "n/a (run fig4/fig5 --ablate)" for k in [*keys, "REPLACE_ABL_IDENTICAL"]}
    data = json.loads(path.read_text())
    skewed = [e for e in data["experiments"]
              if e["experiment"] in ("taxi-lion-500", "G10M-wwf")]
    out = {}
    for placeholder, sched in keys.items():
        parts = []
        for e in skewed:
            imb = [c["imbalance"] for c in e["cells"]
                   if c["scheduler"] == sched and c["nodes"] == 10]
            if imb:
                parts.append(f'{imb[0]:.2f} ({e["experiment"]})')
        out[placeholder] = ", ".join(parts) if parts else "n/a"
    identical = all(e["identical_to_serial"] for e in data["experiments"])
    out["REPLACE_ABL_IDENTICAL"] = "yes, all experiments" if identical else "NO — diverged"
    return out


repl = {
    "REPLACE_JTS_NYCB": jts_row("taxi10k-nycb"),
    "REPLACE_JTS_WWF": jts_row("gbif10k-wwf"),
    "REPLACE_T1_NYCB": t1_row("taxi-nycb"),
    "REPLACE_T1_L100": t1_row("taxi-lion-100"),
    "REPLACE_T1_L500": t1_row("taxi-lion-500"),
    "REPLACE_T1_WWF": t1_row("G10M-wwf"),
    "REPLACE_T2_NYCB": t2_row("taxi-nycb"),
    "REPLACE_T2_L100": t2_row("taxi-lion-100"),
    "REPLACE_T2_L500": t2_row("taxi-lion-500"),
    "REPLACE_T2_WWF": t2_row("G10M-wwf"),
    "REPLACE_FIG4_SUMMARY": fig_summary("fig4"),
    "REPLACE_FIG5_SUMMARY": fig_summary("fig5"),
    "REPLACE_BASELINES": baselines_summary(),
    "REPLACE_FAULT": fault_summary(),
    **ablation_rows(),
}
for k, v in repl.items():
    exp = exp.replace(k, v)
(root / "EXPERIMENTS.md").write_text(exp)
print("EXPERIMENTS.md filled")
