#!/bin/bash
# Appends any harness sections missing from results/harness_scale0.01.txt.
cd /root/repo
for f in jts_vs_geos table1 table2 fig4 fig5 baselines fault_tolerance; do
  if ! grep -q "^== $f ==" results/harness_scale0.01.txt; then
    echo "== $f ==" >> results/harness_scale0.01.txt
    ./target/release/$f >> results/harness_scale0.01.txt 2>&1
    echo >> results/harness_scale0.01.txt
  fi
done
echo RESUME_DONE
