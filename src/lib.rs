//! Workspace umbrella crate.
//!
//! Re-exports every crate in the workspace so the integration tests in
//! `tests/` and the examples in `examples/` can reach the whole system
//! through a single dependency.

pub use cluster;
pub use datagen;
pub use geom;
pub use hadooplet;
pub use impalite;
pub use minihdfs;
pub use rtree;
pub use sparklet;
pub use spatialjoin;
