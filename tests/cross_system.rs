//! Cross-system agreement: SpatialSpark, ISP-MC and the serial
//! reference join must produce identical pairs on every experiment of
//! the paper, across all three refinement engines.

use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, SpatialPredicate};
use minihdfs::MiniDfs;
use spatialjoin::join::{broadcast_index_join, parse_geom_records, parse_point_records};
use spatialjoin::{normalize_pairs, IspMc, SpatialSpark};

struct Fixture {
    dfs: MiniDfs,
}

/// Small versions of the paper's datasets (points scaled way down,
/// right sides scaled down too so this stays a fast test).
fn fixture() -> Fixture {
    let dfs = MiniDfs::new(6, 32 * 1024).unwrap();
    let taxi = datagen::taxi::geometries(5_000, 99);
    let gbif = datagen::gbif::geometries(2_000, 99);
    let nycb = datagen::nycb::geometries(800, 99);
    let lion = datagen::lion::geometries(2_000, 99);
    let wwf = datagen::wwf::geometries(300, 99);
    datagen::write_dataset(&dfs, "/taxi", &taxi).unwrap();
    datagen::write_dataset(&dfs, "/gbif", &gbif).unwrap();
    datagen::write_dataset(&dfs, "/nycb", &nycb).unwrap();
    datagen::write_dataset(&dfs, "/lion", &lion).unwrap();
    datagen::write_dataset(&dfs, "/wwf", &wwf).unwrap();
    Fixture { dfs }
}

fn serial_reference(
    dfs: &MiniDfs,
    left: &str,
    right: &str,
    predicate: SpatialPredicate,
) -> Vec<(i64, i64)> {
    let left_recs = parse_point_records(&dfs.read_all_lines(left).unwrap(), 1);
    let right_recs = parse_geom_records(&dfs.read_all_lines(right).unwrap(), 1);
    normalize_pairs(broadcast_index_join(
        &left_recs,
        &right_recs,
        predicate,
        &PreparedEngine,
    ))
}

fn check_experiment(
    fx: &Fixture,
    left: (&'static str, &'static str),
    right: (&'static str, &'static str),
    predicate: SpatialPredicate,
) {
    let reference = serial_reference(&fx.dfs, left.1, right.1, predicate);
    assert!(
        !reference.is_empty(),
        "experiment {}-{} produced no pairs; fixture broken",
        left.0,
        right.0
    );

    let spark = SpatialSpark::new(sparklet::SparkConf::default(), fx.dfs.clone());
    let spark_run = spark
        .broadcast_spatial_join(left.1, right.1, predicate)
        .unwrap();
    assert_eq!(
        normalize_pairs(spark_run.pairs.clone()),
        reference,
        "SpatialSpark disagrees with serial reference on {}-{}",
        left.0,
        right.0
    );

    let ispmc = IspMc::new(
        impalite::ImpaladConf::default(),
        fx.dfs.clone(),
        left,
        right,
    );
    let ispmc_run = ispmc.spatial_join(left.0, right.0, predicate).unwrap();
    assert_eq!(
        normalize_pairs(ispmc_run.pairs().to_vec()),
        reference,
        "ISP-MC disagrees with serial reference on {}-{}",
        left.0,
        right.0
    );
}

#[test]
fn taxi_nycb_within_agrees() {
    let fx = fixture();
    check_experiment(
        &fx,
        ("taxi", "/taxi"),
        ("nycb", "/nycb"),
        SpatialPredicate::Within,
    );
}

#[test]
fn taxi_lion_100ft_agrees() {
    let fx = fixture();
    check_experiment(
        &fx,
        ("taxi", "/taxi"),
        ("lion", "/lion"),
        SpatialPredicate::NearestD(100.0),
    );
}

#[test]
fn taxi_lion_500ft_agrees() {
    let fx = fixture();
    check_experiment(
        &fx,
        ("taxi", "/taxi"),
        ("lion", "/lion"),
        SpatialPredicate::NearestD(500.0),
    );
}

#[test]
fn gbif_wwf_within_agrees() {
    let fx = fixture();
    check_experiment(
        &fx,
        ("gbif", "/gbif"),
        ("wwf", "/wwf"),
        SpatialPredicate::Within,
    );
}

#[test]
fn all_three_engines_agree_on_real_shaped_data() {
    let fx = fixture();
    let left = parse_point_records(&fx.dfs.read_all_lines("/gbif").unwrap(), 1);
    let right = parse_geom_records(&fx.dfs.read_all_lines("/wwf").unwrap(), 1);
    let a = normalize_pairs(broadcast_index_join(
        &left,
        &right,
        SpatialPredicate::Within,
        &PreparedEngine,
    ));
    let b = normalize_pairs(broadcast_index_join(
        &left,
        &right,
        SpatialPredicate::Within,
        &FlatEngine,
    ));
    let c = normalize_pairs(broadcast_index_join(
        &left,
        &right,
        SpatialPredicate::Within,
        &NaiveEngine,
    ));
    assert_eq!(a, b, "prepared vs flat");
    assert_eq!(a, c, "prepared vs naive");
}
