//! Fig. 1 of the paper: the two example SQL statements, verbatim
//! (modulo the table names), must parse, plan and execute.

use minihdfs::MiniDfs;
use spatialjoin::IspMc;

fn dfs_with_tables() -> MiniDfs {
    let dfs = MiniDfs::new(4, 32 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/pnt", &datagen::taxi::geometries(2_000, 5)).unwrap();
    datagen::write_dataset(&dfs, "/poly", &datagen::nycb::geometries(500, 5)).unwrap();
    datagen::write_dataset(&dfs, "/lion", &datagen::lion::geometries(1_000, 5)).unwrap();
    dfs
}

#[test]
fn fig1_within_statement_runs() {
    let sys = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs_with_tables(),
        ("pnt", "/pnt"),
        ("poly", "/poly"),
    );
    let run = sys
        .execute_sql(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_WITHIN (pnt.geom, poly.geom)",
        )
        .unwrap();
    assert!(run.pair_count() > 0);
    let explain = run.result.plan.explain();
    assert!(explain.contains("SPATIAL_JOIN Within"));
    assert!(explain.contains("EXCHANGE Broadcast"));
}

#[test]
fn fig1_nearestd_statement_runs() {
    let sys = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs_with_tables(),
        ("pnt", "/pnt"),
        ("poly", "/lion"), // the lion table plays Fig 1's "poly"
    );
    let run = sys
        .execute_sql(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly \
             WHERE ST_NearestD (pnt.geom, poly.geom, 5000)",
        )
        .unwrap();
    assert!(run.pair_count() > 0);
    assert!(run
        .result
        .plan
        .explain()
        .contains("SPATIAL_JOIN NearestD(5000.0)"));
}

#[test]
fn fig1_results_match_distance_semantics() {
    // Every reported pair must actually satisfy the predicate; every
    // unreported near pair must not. Verified against brute force.
    let dfs = dfs_with_tables();
    let sys = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs.clone(),
        ("pnt", "/pnt"),
        ("lion", "/lion"),
    );
    let run = sys
        .execute_sql(
            "SELECT pnt.id, lion.id FROM pnt SPATIAL JOIN lion \
             WHERE ST_NearestD (pnt.geom, lion.geom, 250)",
        )
        .unwrap();

    let points = spatialjoin::join::parse_point_records(&dfs.read_all_lines("/pnt").unwrap(), 1);
    let lines = spatialjoin::join::parse_geom_records(&dfs.read_all_lines("/lion").unwrap(), 1);
    let mut brute = Vec::new();
    for &(pid, p) in &points {
        for (lid, g) in &lines {
            if g.distance_to_point(p) <= 250.0 {
                brute.push((pid, *lid));
            }
        }
    }
    assert_eq!(
        spatialjoin::normalize_pairs(run.pairs().to_vec()),
        spatialjoin::normalize_pairs(brute)
    );
}
