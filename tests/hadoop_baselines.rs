//! The Hadoop-style baselines agree with the in-memory systems and
//! carry the overheads §II attributes to them.

use geom::engine::SpatialPredicate;
use hadooplet::{hadoopgis_join, spatialhadoop_join, HadoopConf, MapReduce};
use minihdfs::MiniDfs;
use spatialjoin::{normalize_pairs, SpatialSpark};

fn fixture() -> MiniDfs {
    let dfs = MiniDfs::new(6, 16 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/taxi", &datagen::taxi::geometries(4_000, 61)).unwrap();
    datagen::write_dataset(&dfs, "/nycb", &datagen::nycb::geometries(600, 61)).unwrap();
    dfs
}

#[test]
fn all_four_systems_agree() {
    let dfs = fixture();
    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs.clone());
    let reference = normalize_pairs(
        spark
            .broadcast_spatial_join("/taxi", "/nycb", SpatialPredicate::Within)
            .unwrap()
            .pairs,
    );
    let mr = MapReduce::new(HadoopConf::default(), dfs);
    let sh = spatialhadoop_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 25).unwrap();
    let gis = hadoopgis_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 25).unwrap();
    assert_eq!(normalize_pairs(sh.pairs.clone()), reference);
    assert_eq!(normalize_pairs(gis.pairs.clone()), reference);
}

#[test]
fn hadoop_pays_disk_and_startup_where_memory_systems_do_not() {
    let dfs = fixture();
    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs.clone());
    let srun = spark
        .broadcast_spatial_join("/taxi", "/nycb", SpatialPredicate::Within)
        .unwrap();
    let mr = MapReduce::new(HadoopConf::default(), dfs);
    let gis = hadoopgis_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 25).unwrap();
    // At this tiny scale both are overhead-bound; Hadoop's startup is
    // ~8 s vs Spark's ~6 s on 10 nodes, plus disk spill.
    assert!(
        gis.simulated_runtime(10) > srun.simulated_runtime(10),
        "Hadoop {:.1}s must exceed Spark {:.1}s",
        gis.simulated_runtime(10),
        srun.simulated_runtime(10)
    );
    assert!(gis.metrics.intermediate_bytes > 0);
}

#[test]
fn spatialhadoop_partitioning_is_reusable_preprocessing() {
    let dfs = fixture();
    let mr = MapReduce::new(HadoopConf::default(), dfs);
    let sh = spatialhadoop_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 25).unwrap();
    assert!(sh.preprocessing.is_some());
    assert!(
        sh.simulated_runtime_with_preprocessing(10) > sh.simulated_runtime(10),
        "preprocessing must add cost when counted"
    );
    // HadoopGIS has no reusable preprocessing.
    let gis = hadoopgis_join(&mr, "/taxi", "/nycb", SpatialPredicate::Within, 25).unwrap();
    assert!(gis.preprocessing.is_none());
}
