//! Property tests over the unified [`spatialjoin::JoinRequest`] API,
//! on the in-tree `proph` harness.
//!
//! Two contracts:
//!
//! * **Bit-identity** — the request wrappers return exactly the pairs
//!   the legacy entry points produced: the broadcast strategy matches
//!   the hand-rolled build-index-then-probe loop, the nested-loop
//!   strategy matches an inline reference double loop, and the output
//!   is identical across thread counts.
//! * **Accounting** — the [`obs::RunStats`] carried by every outcome
//!   obey the counter algebra: at least one refinement call per emitted
//!   pair, refinement accepts equal to pairs for `Within`, per-worker
//!   busy time bounded by the run wall time, and counters that do not
//!   depend on the thread count at all.

use cluster::ScheduleMode;
use geom::engine::{FlatEngine, PreparedEngine, RefinementEngine, SpatialPredicate};
use geom::{Envelope, Geometry, Point, Polygon};
use proph::{check_with, f64_range, vec_of, Config, Gen, GenExt};
use spatialjoin::join::{build_right_index, probe};
use spatialjoin::{GeomRecord, JoinRequest, PointRecord};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Generator: left points in a compact window so joins actually match.
fn left_points() -> impl Gen<Value = Vec<PointRecord>> {
    vec_of((f64_range(0.0, 40.0), f64_range(0.0, 40.0)), 0, 90).map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as i64, Point::new(x, y)))
            .collect()
    })
}

/// Generator: axis-aligned rectangles as the right side.
fn right_rects() -> impl Gen<Value = Vec<GeomRecord>> {
    vec_of(
        (
            f64_range(0.0, 35.0),
            f64_range(0.0, 35.0),
            f64_range(0.5, 12.0),
            f64_range(0.5, 12.0),
        ),
        1,
        25,
    )
    .map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| {
                (
                    i as i64,
                    Geometry::Polygon(Polygon::rectangle(Envelope::new(x, y, x + w, y + h))),
                )
            })
            .collect()
    })
}

fn cfg() -> Config {
    Config {
        cases: 48,
        ..Config::default()
    }
}

#[test]
fn broadcast_request_is_bit_identical_to_manual_probe_loop() {
    check_with(
        cfg(),
        "broadcast_request_is_bit_identical_to_manual_probe_loop",
        &(left_points(), right_rects()),
        |(left, right)| {
            let engine = PreparedEngine;
            for predicate in [SpatialPredicate::Within, SpatialPredicate::NearestD(3.0)] {
                // The pre-redesign path, spelled out by hand.
                let tree = build_right_index(&right, predicate, &engine);
                let mut reference = Vec::new();
                for &(id, p) in &left {
                    probe(&tree, predicate, &engine, id, p, &mut reference);
                }
                for threads in THREAD_COUNTS {
                    let outcome = JoinRequest::new(&left, &right, &engine)
                        .predicate(predicate)
                        .threads(threads)
                        .run();
                    assert_eq!(
                        outcome.pairs, reference,
                        "broadcast wrapper diverged at {threads} threads ({predicate:?})"
                    );
                }
            }
        },
    );
}

#[test]
fn nested_loop_request_is_bit_identical_to_reference_loop() {
    check_with(
        cfg(),
        "nested_loop_request_is_bit_identical_to_reference_loop",
        &(left_points(), right_rects()),
        |(left, right)| {
            let engine = FlatEngine;
            let predicate = SpatialPredicate::Within;
            let radius = predicate.filter_radius();
            let prepared: Vec<(i64, Envelope, _)> = right
                .iter()
                .map(|(id, g)| {
                    (
                        *id,
                        geom::HasEnvelope::envelope(g).expanded_by(radius),
                        engine.prepare(g),
                    )
                })
                .collect();
            let mut reference = Vec::new();
            for &(lid, p) in &left {
                for (rid, env, t) in &prepared {
                    if env.contains(p.x, p.y) && predicate.eval(&engine, p, t) {
                        reference.push((lid, *rid));
                    }
                }
            }
            let outcome = JoinRequest::new(&left, &right, &engine).nested_loop().run();
            assert_eq!(outcome.pairs, reference);
        },
    );
}

#[test]
fn run_stats_obey_counter_algebra() {
    check_with(
        cfg(),
        "run_stats_obey_counter_algebra",
        &(left_points(), right_rects()),
        |(left, right)| {
            let engine = PreparedEngine;
            for threads in THREAD_COUNTS {
                let outcome = JoinRequest::new(&left, &right, &engine)
                    .threads(threads)
                    .run();
                let c = &outcome.stats.counters;
                // Every emitted pair passed refinement, and Within
                // emits exactly its accepted candidates.
                assert!(
                    c.refine_calls >= outcome.pairs.len() as u64,
                    "refine_calls {} < pairs {}",
                    c.refine_calls,
                    outcome.pairs.len()
                );
                assert_eq!(c.refine_accepts, outcome.pairs.len() as u64);
                assert_eq!(c.filter_hits, c.refine_calls);
                // Workers only run inside the request's wall clock.
                let wall = outcome.stats.span("run").expect("run span").total_ns;
                let busy: u64 = outcome.stats.workers.iter().map(|w| w.busy_ns).sum();
                assert!(
                    busy <= wall.saturating_mul(threads as u64),
                    "Σ busy {busy} ns > wall {wall} ns × {threads}"
                );
            }
        },
    );
}

#[test]
fn counters_do_not_depend_on_thread_count_or_schedule() {
    check_with(
        cfg(),
        "counters_do_not_depend_on_thread_count_or_schedule",
        &(left_points(), right_rects()),
        |(left, right)| {
            let engine = PreparedEngine;
            let baseline = JoinRequest::new(&left, &right, &engine).threads(1).run();
            for threads in THREAD_COUNTS {
                for mode in [
                    ScheduleMode::Dynamic,
                    ScheduleMode::Static,
                    ScheduleMode::StaticLocality,
                ] {
                    let outcome = JoinRequest::new(&left, &right, &engine)
                        .threads(threads)
                        .schedule(mode)
                        .run();
                    assert_eq!(outcome.pairs, baseline.pairs);
                    // Work counters are deterministic; only the
                    // dispatch-mode attribution may differ, and the
                    // total morsel count is conserved across it.
                    let mut a = baseline.stats.counters;
                    let mut b = outcome.stats.counters;
                    assert_eq!(
                        a.dispatch_dynamic + a.dispatch_static + a.dispatch_locality,
                        b.dispatch_dynamic + b.dispatch_static + b.dispatch_locality
                    );
                    a.dispatch_dynamic = 0;
                    a.dispatch_static = 0;
                    a.dispatch_locality = 0;
                    b.dispatch_dynamic = 0;
                    b.dispatch_static = 0;
                    b.dispatch_locality = 0;
                    assert_eq!(a, b, "counters diverged at {threads} threads ({mode:?})");
                }
            }
        },
    );
}
