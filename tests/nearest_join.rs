//! The nearest-one join extension (`ST_NEAREST`): at most one pair per
//! point, and it is the true nearest.

use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, SpatialPredicate};
use minihdfs::MiniDfs;
use spatialjoin::join::{nearest_join, parse_geom_records, parse_point_records};
use spatialjoin::IspMc;

type Records = (Vec<(i64, geom::Point)>, Vec<(i64, geom::Geometry)>);

fn fixture() -> Records {
    let left: Vec<(i64, geom::Point)> = datagen::taxi::points(3_000, 31)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    let right: Vec<(i64, geom::Geometry)> = datagen::lion::geometries(3_000, 31)
        .into_iter()
        .enumerate()
        .map(|(i, g)| (i as i64, g))
        .collect();
    (left, right)
}

#[test]
fn at_most_one_pair_per_point_and_it_is_the_nearest() {
    let (left, right) = fixture();
    let pairs = nearest_join(&left, &right, 500.0, &PreparedEngine);

    // Uniqueness per left id.
    let mut seen = std::collections::HashSet::new();
    for &(lid, _) in &pairs {
        assert!(seen.insert(lid), "point {lid} matched more than once");
    }

    // Correctness against brute force.
    let emitted: std::collections::HashMap<i64, i64> = pairs.iter().copied().collect();
    for &(lid, p) in &left {
        let mut best: Option<(f64, i64)> = None;
        for (rid, g) in &right {
            let d = g.distance_to_point(p);
            if d <= 500.0 {
                let better = match best {
                    None => true,
                    Some((bd, bid)) => d < bd || (d == bd && *rid < bid),
                };
                if better {
                    best = Some((d, *rid));
                }
            }
        }
        assert_eq!(
            emitted.get(&lid).copied(),
            best.map(|(_, rid)| rid),
            "wrong nearest for point {lid}"
        );
    }
}

#[test]
fn engines_agree_on_nearest() {
    let (left, right) = fixture();
    let a = spatialjoin::normalize_pairs(nearest_join(&left, &right, 300.0, &PreparedEngine));
    let b = spatialjoin::normalize_pairs(nearest_join(&left, &right, 300.0, &FlatEngine));
    let c = spatialjoin::normalize_pairs(nearest_join(&left, &right, 300.0, &NaiveEngine));
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn st_nearest_runs_through_sql() {
    let dfs = MiniDfs::new(4, 32 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/pnt", &datagen::taxi::geometries(2_000, 31)).unwrap();
    datagen::write_dataset(&dfs, "/lion", &datagen::lion::geometries(2_000, 31)).unwrap();
    let sys = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs.clone(),
        ("pnt", "/pnt"),
        ("lion", "/lion"),
    );
    let run = sys
        .execute_sql(
            "SELECT pnt.id, lion.id FROM pnt SPATIAL JOIN lion \
             WHERE ST_NEAREST (pnt.geom, lion.geom, 500)",
        )
        .unwrap();
    // Compare against the serial reference.
    let left = parse_point_records(&dfs.read_all_lines("/pnt").unwrap(), 1);
    let right = parse_geom_records(&dfs.read_all_lines("/lion").unwrap(), 1);
    let reference =
        spatialjoin::normalize_pairs(nearest_join(&left, &right, 500.0, &PreparedEngine));
    assert_eq!(
        spatialjoin::normalize_pairs(run.pairs().to_vec()),
        reference
    );
    assert!(run.pair_count() <= left.len());
    assert!(run.pair_count() > 0);
}

#[test]
fn nearest_is_subset_of_nearestd() {
    let (left, right) = fixture();
    let nearest = nearest_join(&left, &right, 400.0, &PreparedEngine);
    let all_within: std::collections::HashSet<(i64, i64)> =
        spatialjoin::join::broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::NearestD(400.0),
            &PreparedEngine,
        )
        .into_iter()
        .collect();
    for pair in &nearest {
        assert!(
            all_within.contains(pair),
            "nearest pair {pair:?} missing from within-D set"
        );
    }
    assert!(nearest.len() <= all_within.len());
}
