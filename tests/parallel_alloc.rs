//! Allocation accounting for the morsel-parallel executor: a counting
//! global allocator proves the probe phase performs **zero per-morsel
//! geometry clones**.
//!
//! The right side is built from high-vertex polygons so that even a
//! single accidental geometry copy would dwarf the legitimate probe
//! allocations (worker output buffers, morsel bookkeeping, the
//! stitched result vector). The whole file is one `#[test]` because
//! the counters are process-global.

#![allow(unsafe_code)]

use geom::engine::{PreparedEngine, SpatialPredicate};
use geom::{Point, Polygon};
use spatialjoin::parallel::{MorselConfig, PreparedSet};
use spatialjoin::{GeomRecord, PointRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counters are side-effect-only and never influence the returned
// pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: trait method; forwards to `System.alloc` under the
    // caller's own layout obligations.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: trait method; forwards to `System.dealloc` under the
    // caller's own pointer/layout obligations.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System.alloc` with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A star polygon with `vertices` exterior points around (cx, cy).
fn heavy_polygon(cx: f64, cy: f64, radius: f64, vertices: usize) -> Polygon {
    let mut coords = Vec::with_capacity((vertices + 1) * 2);
    for i in 0..vertices {
        let theta = std::f64::consts::TAU * i as f64 / vertices as f64;
        coords.push(cx + radius * theta.cos());
        coords.push(cy + radius * theta.sin());
    }
    coords.push(coords[0]);
    coords.push(coords[1]);
    Polygon::from_coords(coords, vec![]).expect("radial polygons are valid")
}

#[test]
fn par_probe_allocates_far_less_than_one_geometry_copy() {
    const VERTICES: usize = 400;
    const POLYGONS: usize = 200;

    // 200 polygons × ~400 vertices × 2 coords × 8 bytes ≈ 1.3 MB of
    // coordinate data. One hidden clone per morsel (32 morsels below)
    // would show up as ~41 MB.
    let right: Vec<GeomRecord> = (0..POLYGONS)
        .map(|i| {
            let cx = (i % 20) as f64 * 10.0 + 5.0;
            let cy = (i / 20) as f64 * 10.0 + 5.0;
            (
                i as i64,
                geom::Geometry::Polygon(heavy_polygon(cx, cy, 4.0, VERTICES)),
            )
        })
        .collect();
    let coord_bytes = POLYGONS * (VERTICES + 1) * 2 * std::mem::size_of::<f64>();

    let left: Vec<PointRecord> = (0..2_000)
        .map(|i| {
            let x = (i % 200) as f64;
            let y = (i / 200) as f64 * 10.0 + 5.0;
            (i as i64, Point::new(x, y))
        })
        .collect();

    let engine = PreparedEngine;
    let set = PreparedSet::prepare(&right, SpatialPredicate::Within, &engine);
    let cfg = MorselConfig {
        threads: 4,
        mode: cluster::ScheduleMode::Dynamic,
        morsel_size: 64,
    };

    // Warm-up run: pays one-off costs (thread bookkeeping, lazily
    // initialised runtime state) outside the measured window.
    let warm = set.par_probe(&left, &engine, cfg);

    let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    let pairs = set.par_probe(&left, &engine, cfg);
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls_before;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;

    assert_eq!(pairs, warm, "probe must be deterministic across runs");
    assert!(!pairs.is_empty(), "workload must produce matches");

    // Legitimate allocations: per-worker output buffers and timing
    // segments, the morsel slice list, the stitch order, the final
    // result vector, and per-thread spawn bookkeeping. All of it is
    // far below one copy of the right-side coordinate data.
    assert!(
        bytes < coord_bytes / 2,
        "probe allocated {bytes} bytes; one geometry copy is {coord_bytes} — \
         a per-morsel clone would exceed this many times over"
    );
    // Allocation *count* stays bounded by morsels + threads work, not
    // by candidate pairs: the inner probe loop is alloc-free.
    let morsels = left.len().div_ceil(cfg.morsel_size);
    assert!(
        calls < 40 * (morsels + cfg.threads) + 200,
        "probe made {calls} allocator calls across {morsels} morsels"
    );
}
