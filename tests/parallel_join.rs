//! Equivalence of the morsel-parallel executor with the serial joins,
//! on the in-tree `proph` harness plus fixed adversarial cases.
//!
//! The contract under test (see `DESIGN.md`): `parallel_broadcast_join`
//! is **bit-identical** to `broadcast_index_join` — same pairs, same
//! order — at every thread count, schedule mode and morsel size; and
//! `parallel_partitioned_join` equals the serial `partitioned_join`
//! under its sorted-deduplicated contract.

use cluster::ScheduleMode;
use geom::engine::{PreparedEngine, SpatialPredicate};
use geom::{Envelope, Geometry, Point, Polygon};
use proph::{check_with, f64_range, usize_range, vec_of, Config, Gen, GenExt};
use spatialjoin::join::{broadcast_index_join, partitioned_join};
use spatialjoin::parallel::{parallel_broadcast_join, parallel_partitioned_join, MorselConfig};
use spatialjoin::{GeomRecord, PointRecord};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];
const MODES: [ScheduleMode; 3] = [
    ScheduleMode::Dynamic,
    ScheduleMode::Static,
    ScheduleMode::StaticLocality,
];
const PREDICATES: [SpatialPredicate; 2] =
    [SpatialPredicate::Within, SpatialPredicate::NearestD(3.0)];

/// Generator: left points in a compact window so joins actually match.
fn left_points() -> impl Gen<Value = Vec<PointRecord>> {
    vec_of((f64_range(0.0, 40.0), f64_range(0.0, 40.0)), 0, 120).map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as i64, Point::new(x, y)))
            .collect()
    })
}

/// Generator: axis-aligned rectangles as the right side.
fn right_rects() -> impl Gen<Value = Vec<GeomRecord>> {
    vec_of(
        (
            f64_range(0.0, 35.0),
            f64_range(0.0, 35.0),
            f64_range(0.5, 12.0),
            f64_range(0.5, 12.0),
        ),
        0,
        25,
    )
    .map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| {
                let env = Envelope::new(x, y, x + w, y + h);
                (i as i64, Geometry::Polygon(Polygon::rectangle(env)))
            })
            .collect()
    })
}

fn small_config() -> Config {
    // Each case sweeps 3 thread counts × 2 modes × 2 predicates, with
    // real thread spawns — keep the case budget modest.
    Config {
        cases: 24,
        ..Config::default()
    }
}

fn assert_broadcast_equivalence(left: &[PointRecord], right: &[GeomRecord], morsel_size: usize) {
    let engine = PreparedEngine;
    for predicate in PREDICATES {
        let serial = broadcast_index_join(left, right, predicate, &engine);
        for threads in THREAD_COUNTS {
            for mode in MODES {
                let cfg = MorselConfig {
                    threads,
                    mode,
                    morsel_size,
                };
                let par = parallel_broadcast_join(left, right, predicate, &engine, cfg);
                assert_eq!(
                    par, serial,
                    "broadcast: threads={threads} mode={mode:?} morsel={morsel_size} {predicate:?}"
                );
            }
        }
    }
}

#[test]
fn prop_parallel_broadcast_is_bit_identical_to_serial() {
    check_with(
        small_config(),
        "parallel_broadcast ≡ broadcast_index_join",
        &(left_points(), right_rects(), usize_range(1, 64)),
        |(left, right, morsel_size)| {
            assert_broadcast_equivalence(&left, &right, morsel_size);
        },
    );
}

#[test]
fn prop_parallel_partitioned_matches_serial() {
    let cfg = Config {
        cases: 16,
        ..Config::default()
    };
    check_with(
        cfg,
        "parallel_partitioned ≡ partitioned_join",
        &(left_points(), right_rects(), usize_range(4, 40)),
        |(left, right, per_partition)| {
            let engine = PreparedEngine;
            for predicate in PREDICATES {
                let serial = partitioned_join(&left, &right, predicate, &engine, per_partition);
                for threads in THREAD_COUNTS {
                    for mode in MODES {
                        let mcfg = MorselConfig {
                            threads,
                            mode,
                            morsel_size: 7,
                        };
                        let par = parallel_partitioned_join(
                            &left,
                            &right,
                            predicate,
                            &engine,
                            per_partition,
                            mcfg,
                        );
                        assert_eq!(
                            par, serial,
                            "partitioned: threads={threads} mode={mode:?} {predicate:?}"
                        );
                    }
                }
            }
        },
    );
}

// --- fixed adversarial cases ---

#[test]
fn empty_sides_are_equivalent() {
    let some_left = vec![(0i64, Point::new(1.0, 1.0))];
    let some_right: Vec<GeomRecord> = vec![(
        0,
        Geometry::Polygon(Polygon::rectangle(Envelope::new(0.0, 0.0, 2.0, 2.0))),
    )];
    assert_broadcast_equivalence(&[], &[], 7);
    assert_broadcast_equivalence(&some_left, &[], 7);
    assert_broadcast_equivalence(&[], &some_right, 7);
}

#[test]
fn all_points_in_one_cell_are_equivalent() {
    // Every left point lands in the same partition cell: the skewed
    // case where static chunking gives one worker all the work.
    let left: Vec<PointRecord> = (0..200)
        .map(|i| (i as i64, Point::new(5.0 + (i as f64) * 1e-3, 5.0)))
        .collect();
    let right: Vec<GeomRecord> = (0..4)
        .map(|i| {
            let x0 = (i as f64) * 2.0;
            (
                i as i64,
                Geometry::Polygon(Polygon::rectangle(Envelope::new(x0, 0.0, x0 + 3.0, 10.0))),
            )
        })
        .collect();
    assert_broadcast_equivalence(&left, &right, 16);

    let engine = PreparedEngine;
    let serial = partitioned_join(&left, &right, SpatialPredicate::Within, &engine, 8);
    for threads in THREAD_COUNTS {
        let par = parallel_partitioned_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &engine,
            8,
            MorselConfig::new(threads),
        );
        assert_eq!(par, serial, "one-cell skew: threads={threads}");
    }
}

#[test]
fn nearest_ties_resolve_identically_in_parallel() {
    // Equidistant rectangles either side of each point: Nearest must
    // pick the smaller right id, and NearestD must emit both — in the
    // same order serially and in parallel.
    let left: Vec<PointRecord> = (0..64)
        .map(|i| (i as i64, Point::new(10.0 * i as f64 + 5.0, 5.0)))
        .collect();
    let mut right: Vec<GeomRecord> = Vec::new();
    for i in 0..64i64 {
        let x = 10.0 * i as f64;
        // Two 1×10 slabs exactly 4 units left and right of the point.
        right.push((
            2 * i + 1,
            Geometry::Polygon(Polygon::rectangle(Envelope::new(x, 0.0, x + 1.0, 10.0))),
        ));
        right.push((
            2 * i,
            Geometry::Polygon(Polygon::rectangle(Envelope::new(
                x + 9.0,
                0.0,
                x + 10.0,
                10.0,
            ))),
        ));
    }
    let engine = PreparedEngine;
    for predicate in [
        SpatialPredicate::Nearest(6.0),
        SpatialPredicate::NearestD(6.0),
    ] {
        let serial = broadcast_index_join(&left, &right, predicate, &engine);
        for threads in THREAD_COUNTS {
            for mode in MODES {
                let cfg = MorselConfig {
                    threads,
                    mode,
                    morsel_size: 5,
                };
                let par = parallel_broadcast_join(&left, &right, predicate, &engine, cfg);
                assert_eq!(
                    par, serial,
                    "ties: threads={threads} mode={mode:?} {predicate:?}"
                );
            }
        }
    }
}
