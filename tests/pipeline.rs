//! End-to-end pipeline tests across crates: datagen → minihdfs →
//! engines → aggregation, plus the sparklet dataset API on its own.

use minihdfs::MiniDfs;
use sparklet::{SparkConf, SparkContext};
use spatialjoin::{SpatialPredicate, SpatialSpark};

#[test]
fn datasets_survive_dfs_round_trip_at_scale() {
    let dfs = MiniDfs::new(10, 8 * 1024).unwrap();
    let taxi = datagen::taxi::geometries(10_000, 77);
    let stat = datagen::write_dataset(&dfs, "/taxi", &taxi).unwrap();
    assert_eq!(stat.total_records, 10_000);
    assert!(stat.num_blocks > 10, "file must split into many blocks");

    // Every record parses back to its original geometry.
    let lines = dfs.read_all_lines("/taxi").unwrap();
    assert_eq!(lines.len(), 10_000);
    for (i, line) in lines.iter().enumerate().step_by(997) {
        let wkt = line.split('\t').nth(1).unwrap();
        assert_eq!(&geom::wkt::parse(wkt).unwrap(), &taxi[i]);
    }
}

#[test]
fn sparklet_pipeline_mirrors_fig2_structure() {
    // The Fig. 2 skeleton as raw dataset operations: textFile → map
    // (split) → zipWithIndex → parse → filter.
    let dfs = MiniDfs::new(4, 4 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/pts", &datagen::taxi::geometries(2_000, 3)).unwrap();
    let sc = SparkContext::new(SparkConf::default(), dfs);

    let lines = sc.text_file("/pts").unwrap();
    let split = lines.map("split", |l: &String| {
        l.split('\t').map(str::to_string).collect::<Vec<_>>()
    });
    let indexed = split.zip_with_index();
    let parsed = indexed.map("parse", |(idx, cols): &(u64, Vec<String>)| {
        (*idx, geom::wkt::parse(&cols[1]))
    });
    let ok = parsed.filter("isSuccess", |(_, g)| g.is_ok());
    assert_eq!(ok.count(), 2_000);

    // The job report captured one stage per transformation.
    let names: Vec<String> = sc
        .job_report()
        .stages
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert_eq!(names, vec!["split", "zipWithIndex", "parse", "isSuccess"]);
}

#[test]
fn hotspot_aggregation_end_to_end() {
    let dfs = MiniDfs::new(4, 32 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/taxi", &datagen::taxi::geometries(20_000, 13)).unwrap();
    datagen::write_dataset(&dfs, "/nycb", &datagen::nycb::geometries(1_000, 13)).unwrap();

    let spark = SpatialSpark::new(SparkConf::default(), dfs);
    let run = spark
        .broadcast_spatial_join("/taxi", "/nycb", SpatialPredicate::Within)
        .unwrap();

    // nycb tiles the full extent, so nearly every pickup matches
    // exactly one block.
    assert!(run.pair_count() > 19_000);
    let unique_left: std::collections::HashSet<i64> = run.pairs.iter().map(|&(l, _)| l).collect();
    // A point on a shared block boundary can match two blocks; pairs
    // may slightly exceed unique points but never the reverse.
    assert!(run.pair_count() >= unique_left.len());

    // Hotspot structure shows up in the aggregate.
    let mut per_block = std::collections::HashMap::new();
    for &(_, b) in &run.pairs {
        *per_block.entry(b).or_insert(0usize) += 1;
    }
    let max = per_block.values().max().copied().unwrap_or(0);
    let avg = run.pair_count() / per_block.len().max(1);
    assert!(
        max > avg * 3,
        "taxi pickups must be skewed: max {max} vs avg {avg}"
    );
}

#[test]
fn partitioned_join_scales_to_many_cells_and_agrees() {
    use geom::engine::PreparedEngine;
    let taxi = datagen::taxi::points(8_000, 21);
    let nycb = datagen::nycb::geometries(500, 21);
    let left: Vec<(i64, geom::Point)> = taxi
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    let right: Vec<(i64, geom::Geometry)> = nycb
        .into_iter()
        .enumerate()
        .map(|(i, g)| (i as i64, g))
        .collect();
    let broadcast = spatialjoin::normalize_pairs(spatialjoin::join::broadcast_index_join(
        &left,
        &right,
        SpatialPredicate::Within,
        &PreparedEngine,
    ));
    for target in [100, 1000, 8000] {
        let partitioned = spatialjoin::join::partitioned_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &PreparedEngine,
            target,
        );
        assert_eq!(partitioned, broadcast, "target {target}");
    }
}
