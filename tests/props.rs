//! Property-based tests over the core data structures and invariants,
//! running on the in-tree `proph` harness.

use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, RefinementEngine, SpatialPredicate};
use geom::{Envelope, Geometry, HasEnvelope, LineString, Point, Polygon};
use proph::{check, f64_range, vec_of, Gen, GenExt};
use rtree::{DynamicRTree, GridIndex, RTree};

/// Generator: a finite coordinate in a sane range.
fn coord() -> impl Gen<Value = f64> {
    f64_range(-1000.0, 1000.0)
}

/// Generator: an arbitrary envelope (possibly degenerate).
fn envelope() -> impl Gen<Value = Envelope> {
    (coord(), coord(), coord(), coord()).map(|(a, b, c, d)| Envelope::new(a, b, c, d))
}

/// Generator: a simple star-shaped polygon around a random centre —
/// guaranteed valid (non-self-intersecting) by the radial construction.
fn star_polygon() -> impl Gen<Value = Polygon> {
    (
        coord(),
        coord(),
        f64_range(1.0, 50.0),
        vec_of(f64_range(0.3, 1.0), 3, 39),
    )
        .map(|(cx, cy, radius, radii)| {
            let n = radii.len();
            let mut coords = Vec::with_capacity((n + 1) * 2);
            for (i, r) in radii.iter().enumerate() {
                let theta = std::f64::consts::TAU * i as f64 / n as f64;
                coords.push(cx + radius * r * theta.cos());
                coords.push(cy + radius * r * theta.sin());
            }
            coords.push(coords[0]);
            coords.push(coords[1]);
            Polygon::from_coords(coords, vec![]).expect("radial polygons are valid")
        })
}

/// Generator: a polyline with 2–19 vertices.
fn polyline() -> impl Gen<Value = LineString> {
    vec_of((coord(), coord()), 2, 19).map(|pts| {
        let coords = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        LineString::new(coords).expect("≥2 points")
    })
}

// --- envelope algebra ---

#[test]
fn envelope_union_contains_both() {
    check(
        "envelope_union_contains_both",
        &(envelope(), envelope()),
        |(a, b)| {
            let u = a.union(&b);
            assert!(u.contains_envelope(&a));
            assert!(u.contains_envelope(&b));
        },
    );
}

#[test]
fn envelope_intersection_symmetric_and_contained() {
    check(
        "envelope_intersection_symmetric_and_contained",
        &(envelope(), envelope()),
        |(a, b)| {
            let i1 = a.intersection(&b);
            let i2 = b.intersection(&a);
            assert_eq!(i1, i2);
            if !i1.is_empty() {
                assert!(a.contains_envelope(&i1));
                assert!(b.contains_envelope(&i1));
                assert!(a.intersects(&b));
            }
        },
    );
}

#[test]
fn envelope_expansion_monotone() {
    check(
        "envelope_expansion_monotone",
        &(envelope(), f64_range(0.0, 100.0), coord(), coord()),
        |(e, d, x, y)| {
            let big = e.expanded_by(d);
            if e.contains(x, y) {
                assert!(big.contains(x, y));
            }
            assert!(
                big.distance_to_point(Point::new(x, y)) <= e.distance_to_point(Point::new(x, y))
            );
        },
    );
}

// --- WKT and binary round trips ---

#[test]
fn wkt_round_trip_polygon() {
    check("wkt_round_trip_polygon", &star_polygon(), |poly| {
        let g = Geometry::Polygon(poly);
        let text = geom::wkt::write(&g);
        let back = geom::wkt::parse(&text).unwrap();
        assert_eq!(back, g);
    });
}

#[test]
fn wkt_round_trip_linestring() {
    check("wkt_round_trip_linestring", &polyline(), |ls| {
        let g = Geometry::LineString(ls);
        let back = geom::wkt::parse(&geom::wkt::write(&g)).unwrap();
        assert_eq!(back, g);
    });
}

#[test]
fn binary_round_trip() {
    check(
        "binary_round_trip",
        &(star_polygon(), polyline(), coord(), coord()),
        |(poly, ls, x, y)| {
            for g in [
                Geometry::Polygon(poly),
                Geometry::LineString(ls),
                Geometry::Point(Point::new(x, y)),
            ] {
                let bytes = geom::binary::encode(&g);
                let (back, used) = geom::binary::decode(&bytes).unwrap();
                assert_eq!(back, g);
                assert_eq!(used, bytes.len());
            }
        },
    );
}

// --- engine agreement ---

#[test]
fn engines_agree_on_within() {
    check(
        "engines_agree_on_within",
        &(star_polygon(), vec_of((coord(), coord()), 1, 49)),
        |(poly, pts)| {
            let g = Geometry::Polygon(poly);
            let fast = PreparedEngine.prepare(&g);
            let flat = FlatEngine.prepare(&g);
            let naive = NaiveEngine.prepare(&g);
            for (x, y) in pts {
                let p = Point::new(x, y);
                let a = PreparedEngine.within(p, &fast);
                let b = FlatEngine.within(p, &flat);
                let c = NaiveEngine.within(p, &naive);
                assert_eq!(a, b, "prepared vs flat at ({x}, {y})");
                assert_eq!(a, c, "prepared vs naive at ({x}, {y})");
            }
        },
    );
}

#[test]
fn engines_agree_on_distance() {
    check(
        "engines_agree_on_distance",
        &(
            polyline(),
            vec_of((coord(), coord()), 1, 29),
            f64_range(0.1, 200.0),
        ),
        |(ls, pts, d)| {
            let g = Geometry::LineString(ls);
            let fast = PreparedEngine.prepare(&g);
            let flat = FlatEngine.prepare(&g);
            let naive = NaiveEngine.prepare(&g);
            for (x, y) in pts {
                let p = Point::new(x, y);
                let a = PreparedEngine.within_distance(p, &fast, d);
                let b = FlatEngine.within_distance(p, &flat, d);
                let c = NaiveEngine.within_distance(p, &naive, d);
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
        },
    );
}

#[test]
fn polygon_containment_respects_envelope() {
    check(
        "polygon_containment_respects_envelope",
        &(star_polygon(), coord(), coord()),
        |(poly, x, y)| {
            let p = Point::new(x, y);
            if poly.contains_point(p) {
                assert!(poly.envelope().contains(p.x, p.y));
            }
        },
    );
}

// --- index agreement with linear scans ---

#[test]
fn rtree_query_equals_linear_scan() {
    check(
        "rtree_query_equals_linear_scan",
        &(
            vec_of(
                (coord(), coord(), f64_range(0.0, 20.0), f64_range(0.0, 20.0)),
                1,
                299,
            ),
            envelope(),
        ),
        |(boxes, query)| {
            let entries: Vec<(Envelope, usize)> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
                .collect();
            let tree = RTree::bulk_load_entries(entries.clone());
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|(e, _)| e.intersects(&query))
                .map(|&(_, i)| i)
                .collect();
            let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        },
    );
}

#[test]
fn dynamic_rtree_matches_str_tree() {
    check(
        "dynamic_rtree_matches_str_tree",
        &(
            vec_of(
                (coord(), coord(), f64_range(0.0, 20.0), f64_range(0.0, 20.0)),
                1,
                199,
            ),
            envelope(),
        ),
        |(boxes, query)| {
            let entries: Vec<(Envelope, usize)> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
                .collect();
            let str_tree = RTree::bulk_load_entries(entries.clone());
            let mut dyn_tree = DynamicRTree::new();
            for (e, i) in &entries {
                dyn_tree.insert_entry(*e, *i);
            }
            let mut a: Vec<usize> = str_tree.query(&query).into_iter().copied().collect();
            let mut b: Vec<usize> = dyn_tree.query(&query).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        },
    );
}

#[test]
fn grid_matches_rtree() {
    check(
        "grid_matches_rtree",
        &(
            vec_of(
                (
                    f64_range(0.0, 100.0),
                    f64_range(0.0, 100.0),
                    f64_range(0.0, 10.0),
                    f64_range(0.0, 10.0),
                ),
                1,
                199,
            ),
            (
                f64_range(0.0, 100.0),
                f64_range(0.0, 100.0),
                f64_range(0.0, 30.0),
                f64_range(0.0, 30.0),
            ),
        ),
        |(boxes, (qx, qy, qw, qh))| {
            let entries: Vec<(Envelope, usize)> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
                .collect();
            let query = Envelope::new(qx, qy, qx + qw, qy + qh);
            let tree = RTree::bulk_load_entries(entries.clone());
            let grid = GridIndex::build(Envelope::new(0.0, 0.0, 115.0, 115.0), 8, 8, entries);
            let mut a: Vec<usize> = tree.query(&query).into_iter().copied().collect();
            let mut b: Vec<usize> = grid.query(&query).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        },
    );
}

// --- join-level invariants ---

#[test]
fn join_output_pairs_satisfy_predicate() {
    check(
        "join_output_pairs_satisfy_predicate",
        &(
            vec_of(star_polygon(), 1, 9),
            vec_of((coord(), coord()), 1, 99),
        ),
        |(polys, pts)| {
            let left: Vec<(i64, Point)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (i as i64, Point::new(x, y)))
                .collect();
            let right: Vec<(i64, Geometry)> = polys
                .iter()
                .enumerate()
                .map(|(i, p)| (i as i64, Geometry::Polygon(p.clone())))
                .collect();
            let pairs = spatialjoin::join::broadcast_index_join(
                &left,
                &right,
                SpatialPredicate::Within,
                &PreparedEngine,
            );
            // Soundness: every emitted pair satisfies Within.
            for &(lid, rid) in &pairs {
                let p = left[lid as usize].1;
                assert!(right[rid as usize].1.contains_point(p));
            }
            // Completeness: every satisfying pair is emitted.
            let emitted: std::collections::HashSet<(i64, i64)> = pairs.into_iter().collect();
            for &(lid, p) in &left {
                for (rid, g) in &right {
                    if g.contains_point(p) {
                        assert!(
                            emitted.contains(&(lid, *rid)),
                            "missing pair ({lid}, {rid})"
                        );
                    }
                }
            }
        },
    );
}
