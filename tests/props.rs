//! Property-based tests over the core data structures and invariants.

use geom::engine::{FlatEngine, NaiveEngine, PreparedEngine, RefinementEngine, SpatialPredicate};
use geom::{Envelope, Geometry, HasEnvelope, LineString, Point, Polygon};
use proptest::prelude::*;
use rtree::{DynamicRTree, GridIndex, RTree};

/// Strategy: a finite coordinate in a sane range.
fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

/// Strategy: an arbitrary envelope (possibly degenerate).
fn envelope() -> impl Strategy<Value = Envelope> {
    (coord(), coord(), coord(), coord()).prop_map(|(a, b, c, d)| Envelope::new(a, b, c, d))
}

/// Strategy: a simple star-shaped polygon around a random centre —
/// guaranteed valid (non-self-intersecting) by the radial construction.
fn star_polygon() -> impl Strategy<Value = Polygon> {
    (
        coord(),
        coord(),
        1.0..50.0f64,
        proptest::collection::vec(0.3..1.0f64, 3..40),
    )
        .prop_map(|(cx, cy, radius, radii)| {
            let n = radii.len();
            let mut coords = Vec::with_capacity((n + 1) * 2);
            for (i, r) in radii.iter().enumerate() {
                let theta = std::f64::consts::TAU * i as f64 / n as f64;
                coords.push(cx + radius * r * theta.cos());
                coords.push(cy + radius * r * theta.sin());
            }
            coords.push(coords[0]);
            coords.push(coords[1]);
            Polygon::from_coords(coords, vec![]).expect("radial polygons are valid")
        })
}

/// Strategy: a polyline with 2–20 vertices.
fn polyline() -> impl Strategy<Value = LineString> {
    proptest::collection::vec((coord(), coord()), 2..20).prop_map(|pts| {
        let coords = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        LineString::new(coords).expect("≥2 points")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- envelope algebra ---

    #[test]
    fn envelope_union_contains_both(a in envelope(), b in envelope()) {
        let u = a.union(&b);
        prop_assert!(u.contains_envelope(&a));
        prop_assert!(u.contains_envelope(&b));
    }

    #[test]
    fn envelope_intersection_symmetric_and_contained(a in envelope(), b in envelope()) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        if !i1.is_empty() {
            prop_assert!(a.contains_envelope(&i1));
            prop_assert!(b.contains_envelope(&i1));
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn envelope_expansion_monotone(e in envelope(), d in 0.0..100.0f64, x in coord(), y in coord()) {
        let big = e.expanded_by(d);
        if e.contains(x, y) {
            prop_assert!(big.contains(x, y));
        }
        prop_assert!(big.distance_to_point(Point::new(x, y)) <= e.distance_to_point(Point::new(x, y)));
    }

    // --- WKT and binary round trips ---

    #[test]
    fn wkt_round_trip_polygon(poly in star_polygon()) {
        let g = Geometry::Polygon(poly);
        let text = geom::wkt::write(&g);
        let back = geom::wkt::parse(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn wkt_round_trip_linestring(ls in polyline()) {
        let g = Geometry::LineString(ls);
        let back = geom::wkt::parse(&geom::wkt::write(&g)).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn binary_round_trip(poly in star_polygon(), ls in polyline(), x in coord(), y in coord()) {
        for g in [
            Geometry::Polygon(poly),
            Geometry::LineString(ls),
            Geometry::Point(Point::new(x, y)),
        ] {
            let bytes = geom::binary::encode(&g);
            let (back, used) = geom::binary::decode(&bytes).unwrap();
            prop_assert_eq!(back, g);
            prop_assert_eq!(used, bytes.len());
        }
    }

    // --- engine agreement ---

    #[test]
    fn engines_agree_on_within(poly in star_polygon(), pts in proptest::collection::vec((coord(), coord()), 1..50)) {
        let g = Geometry::Polygon(poly);
        let fast = PreparedEngine.prepare(&g);
        let flat = FlatEngine.prepare(&g);
        let naive = NaiveEngine.prepare(&g);
        for (x, y) in pts {
            let p = Point::new(x, y);
            let a = PreparedEngine.within(p, &fast);
            let b = FlatEngine.within(p, &flat);
            let c = NaiveEngine.within(p, &naive);
            prop_assert_eq!(a, b, "prepared vs flat at ({}, {})", x, y);
            prop_assert_eq!(a, c, "prepared vs naive at ({}, {})", x, y);
        }
    }

    #[test]
    fn engines_agree_on_distance(ls in polyline(), pts in proptest::collection::vec((coord(), coord()), 1..30), d in 0.1..200.0f64) {
        let g = Geometry::LineString(ls);
        let fast = PreparedEngine.prepare(&g);
        let flat = FlatEngine.prepare(&g);
        let naive = NaiveEngine.prepare(&g);
        for (x, y) in pts {
            let p = Point::new(x, y);
            let a = PreparedEngine.within_distance(p, &fast, d);
            let b = FlatEngine.within_distance(p, &flat, d);
            let c = NaiveEngine.within_distance(p, &naive, d);
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn polygon_containment_respects_envelope(poly in star_polygon(), x in coord(), y in coord()) {
        let p = Point::new(x, y);
        if poly.contains_point(p) {
            prop_assert!(poly.envelope().contains(p.x, p.y));
        }
    }

    // --- index agreement with linear scans ---

    #[test]
    fn rtree_query_equals_linear_scan(
        boxes in proptest::collection::vec((coord(), coord(), 0.0..20.0f64, 0.0..20.0f64), 1..300),
        query in envelope(),
    ) {
        let entries: Vec<(Envelope, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
            .collect();
        let tree = RTree::bulk_load_entries(entries.clone());
        let mut expected: Vec<usize> = entries
            .iter()
            .filter(|(e, _)| e.intersects(&query))
            .map(|&(_, i)| i)
            .collect();
        let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_rtree_matches_str_tree(
        boxes in proptest::collection::vec((coord(), coord(), 0.0..20.0f64, 0.0..20.0f64), 1..200),
        query in envelope(),
    ) {
        let entries: Vec<(Envelope, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
            .collect();
        let str_tree = RTree::bulk_load_entries(entries.clone());
        let mut dyn_tree = DynamicRTree::new();
        for (e, i) in &entries {
            dyn_tree.insert_entry(*e, *i);
        }
        let mut a: Vec<usize> = str_tree.query(&query).into_iter().copied().collect();
        let mut b: Vec<usize> = dyn_tree.query(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn grid_matches_rtree(
        boxes in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64, 0.0..10.0f64, 0.0..10.0f64), 1..200),
        qx in 0.0..100.0f64, qy in 0.0..100.0f64, qw in 0.0..30.0f64, qh in 0.0..30.0f64,
    ) {
        let entries: Vec<(Envelope, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
            .collect();
        let query = Envelope::new(qx, qy, qx + qw, qy + qh);
        let tree = RTree::bulk_load_entries(entries.clone());
        let grid = GridIndex::build(Envelope::new(0.0, 0.0, 115.0, 115.0), 8, 8, entries);
        let mut a: Vec<usize> = tree.query(&query).into_iter().copied().collect();
        let mut b: Vec<usize> = grid.query(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    // --- join-level invariants ---

    #[test]
    fn join_output_pairs_satisfy_predicate(
        polys in proptest::collection::vec(star_polygon(), 1..10),
        pts in proptest::collection::vec((coord(), coord()), 1..100),
    ) {
        let left: Vec<(i64, Point)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i as i64, Point::new(x, y)))
            .collect();
        let right: Vec<(i64, Geometry)> = polys
            .iter()
            .enumerate()
            .map(|(i, p)| (i as i64, Geometry::Polygon(p.clone())))
            .collect();
        let pairs = spatialjoin::join::broadcast_index_join(
            &left,
            &right,
            SpatialPredicate::Within,
            &PreparedEngine,
        );
        // Soundness: every emitted pair satisfies Within.
        for &(lid, rid) in &pairs {
            let p = left[lid as usize].1;
            prop_assert!(right[rid as usize].1.contains_point(p));
        }
        // Completeness: every satisfying pair is emitted.
        let emitted: std::collections::HashSet<(i64, i64)> = pairs.into_iter().collect();
        for &(lid, p) in &left {
            for (rid, g) in &right {
                if g.contains_point(p) {
                    prop_assert!(emitted.contains(&(lid, *rid)), "missing pair ({}, {})", lid, rid);
                }
            }
        }
    }
}
