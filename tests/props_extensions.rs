//! Property-based tests for the extension modules: partitioners,
//! clipping, simplification, hulls, binary codec and trajectories.

use geom::algorithms::clip::{clip_linestring, clip_polygon};
use geom::algorithms::hull::convex_hull;
use geom::algorithms::simplify::simplify_points;
use geom::{Envelope, LineString, Point, Polygon, Trajectory};
use proptest::prelude::*;
use rtree::{FixedGridPartitioner, SpatialPartitioner, StrPartitioner};

fn coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn points(n: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((coord(), coord()), 3..n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- partitioners ---

    #[test]
    fn str_partitioner_owns_every_interior_point(sample in points(200), probes in points(50)) {
        let extent = Envelope::new(-100.0, -100.0, 100.0, 100.0);
        let p = StrPartitioner::build(extent, &sample, 16);
        for probe in probes {
            let cell = p.cell_of(probe).expect("interior point must be owned");
            prop_assert!(p.cells()[cell].contains(probe.x, probe.y));
            // The owning cell is among the cells any envelope around the
            // point routes to — the partitioned-join invariant.
            let routed = p.cells_intersecting(&Envelope::of_point(probe).expanded_by(1.0));
            prop_assert!(routed.contains(&cell));
        }
    }

    #[test]
    fn grid_partitioner_cells_tile(cols in 1usize..12, rows in 1usize..12) {
        let extent = Envelope::new(0.0, 0.0, 37.0, 23.0);
        let g = FixedGridPartitioner::new(extent, cols, rows);
        let total: f64 = g.cells().iter().map(Envelope::area).sum();
        prop_assert!((total - extent.area()).abs() < 1e-9 * extent.area());
        prop_assert_eq!(g.num_cells(), cols * rows);
    }

    // --- clipping ---

    #[test]
    fn clipped_polygon_is_inside_both(cx in coord(), cy in coord(), s in 1.0..50.0f64,
                                      wx in coord(), wy in coord(), ws in 1.0..50.0f64) {
        let poly = Polygon::rectangle(Envelope::new(cx, cy, cx + s, cy + s));
        let window = Envelope::new(wx, wy, wx + ws, wy + ws);
        if let Some(clipped) = clip_polygon(&poly, window).unwrap() {
            use geom::HasEnvelope;
            let e = clipped.envelope();
            prop_assert!(window.expanded_by(1e-9).contains_envelope(&e));
            prop_assert!(poly.envelope().expanded_by(1e-9).contains_envelope(&e));
            // Area never exceeds either input.
            prop_assert!(clipped.area() <= poly.area() + 1e-9);
            prop_assert!(clipped.area() <= window.area() + 1e-9);
        }
    }

    #[test]
    fn clipped_linestring_pieces_are_inside(pts in points(12), wx in coord(), wy in coord(), ws in 5.0..80.0f64) {
        let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
        let ls = LineString::new(coords).unwrap();
        let window = Envelope::new(wx, wy, wx + ws, wy + ws);
        let total_len: f64 = ls.length();
        let mut clipped_len = 0.0;
        for piece in clip_linestring(&ls, window) {
            use geom::HasEnvelope;
            prop_assert!(window.expanded_by(1e-6).contains_envelope(&piece.envelope()));
            clipped_len += piece.length();
        }
        prop_assert!(clipped_len <= total_len + 1e-6);
    }

    // --- simplification ---

    #[test]
    fn simplification_error_is_bounded(pts in points(60), tol in 0.01..5.0f64) {
        let kept = simplify_points(&pts, tol);
        prop_assert!(kept.len() >= 2);
        prop_assert_eq!(kept[0], pts[0]);
        prop_assert_eq!(*kept.last().unwrap(), *pts.last().unwrap());
        if kept.len() >= 2 {
            let chain = LineString::from_points(&kept).unwrap();
            for p in &pts {
                prop_assert!(chain.distance_to_point(*p) <= tol + 1e-9);
            }
        }
    }

    // --- convex hull ---

    #[test]
    fn hull_contains_all_inputs(pts in points(80)) {
        if let Ok(hull) = convex_hull(&pts) {
            for p in &pts {
                prop_assert!(hull.contains_point(*p), "hull must contain {:?}", p);
            }
            // CCW and positive area.
            prop_assert!(hull.exterior().signed_area() > 0.0);
        }
    }

    // --- trajectories ---

    #[test]
    fn trajectory_record_round_trip(pts in points(20), dt in 0.1..100.0f64, id in 0i64..1_000_000) {
        let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
        let path = LineString::new(coords).unwrap();
        let times: Vec<f64> = (0..path.num_points()).map(|i| i as f64 * dt).collect();
        let t = Trajectory::new(path, times).unwrap();
        let (rid, back) = Trajectory::from_record(&t.to_record(id)).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn trajectory_position_interpolates_between_samples(pts in points(10), dt in 1.0..10.0f64) {
        let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
        let path = LineString::new(coords).unwrap();
        let n = path.num_points();
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let t = Trajectory::new(path.clone(), times).unwrap();
        // At sample instants, position equals the sample.
        for i in 0..n {
            let p = t.position_at(i as f64 * dt);
            prop_assert!((p.x - path.point(i).x).abs() < 1e-9);
            prop_assert!((p.y - path.point(i).y).abs() < 1e-9);
        }
        // Between samples, position lies on the segment.
        for i in 0..n - 1 {
            let mid = t.position_at((i as f64 + 0.5) * dt);
            let d = geom::algorithms::segment::point_segment_distance(
                mid,
                path.point(i),
                path.point(i + 1),
            );
            prop_assert!(d < 1e-9);
        }
    }
}
