//! Property-based tests for the extension modules: partitioners,
//! clipping, simplification, hulls, binary codec and trajectories,
//! running on the in-tree `proph` harness.

use geom::algorithms::clip::{clip_linestring, clip_polygon};
use geom::algorithms::hull::convex_hull;
use geom::algorithms::simplify::simplify_points;
use geom::{Envelope, LineString, Point, Polygon, Trajectory};
use proph::{check_with, f64_range, usize_range, vec_of, Config, Gen, GenExt};
use rtree::{FixedGridPartitioner, SpatialPartitioner, StrPartitioner};

/// 96 cases to match the original suite's budget.
fn check<G, P>(name: &str, gen: &G, prop: P)
where
    G: Gen,
    G::Value: std::fmt::Debug,
    P: Fn(G::Value),
{
    check_with(
        Config {
            cases: 96,
            ..Config::default()
        },
        name,
        gen,
        prop,
    );
}

fn coord() -> impl Gen<Value = f64> {
    f64_range(-100.0, 100.0)
}

fn points(n: usize) -> impl Gen<Value = Vec<Point>> {
    vec_of((coord(), coord()), 3, n - 1)
        .map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

// --- partitioners ---

#[test]
fn str_partitioner_owns_every_interior_point() {
    check(
        "str_partitioner_owns_every_interior_point",
        &(points(200), points(50)),
        |(sample, probes)| {
            let extent = Envelope::new(-100.0, -100.0, 100.0, 100.0);
            let p = StrPartitioner::build(extent, &sample, 16);
            for probe in probes {
                let cell = p.cell_of(probe).expect("interior point must be owned");
                assert!(p.cells()[cell].contains(probe.x, probe.y));
                // The owning cell is among the cells any envelope around the
                // point routes to — the partitioned-join invariant.
                let routed = p.cells_intersecting(&Envelope::of_point(probe).expanded_by(1.0));
                assert!(routed.contains(&cell));
            }
        },
    );
}

#[test]
fn grid_partitioner_cells_tile() {
    check(
        "grid_partitioner_cells_tile",
        &(usize_range(1, 12), usize_range(1, 12)),
        |(cols, rows)| {
            let extent = Envelope::new(0.0, 0.0, 37.0, 23.0);
            let g = FixedGridPartitioner::new(extent, cols, rows);
            let total: f64 = g.cells().iter().map(Envelope::area).sum();
            assert!((total - extent.area()).abs() < 1e-9 * extent.area());
            assert_eq!(g.num_cells(), cols * rows);
        },
    );
}

// --- clipping ---

#[test]
fn clipped_polygon_is_inside_both() {
    check(
        "clipped_polygon_is_inside_both",
        &(
            coord(),
            coord(),
            f64_range(1.0, 50.0),
            coord(),
            coord(),
            f64_range(1.0, 50.0),
        ),
        |(cx, cy, s, wx, wy, ws)| {
            let poly = Polygon::rectangle(Envelope::new(cx, cy, cx + s, cy + s));
            let window = Envelope::new(wx, wy, wx + ws, wy + ws);
            if let Some(clipped) = clip_polygon(&poly, window).unwrap() {
                use geom::HasEnvelope;
                let e = clipped.envelope();
                assert!(window.expanded_by(1e-9).contains_envelope(&e));
                assert!(poly.envelope().expanded_by(1e-9).contains_envelope(&e));
                // Area never exceeds either input.
                assert!(clipped.area() <= poly.area() + 1e-9);
                assert!(clipped.area() <= window.area() + 1e-9);
            }
        },
    );
}

#[test]
fn clipped_linestring_pieces_are_inside() {
    check(
        "clipped_linestring_pieces_are_inside",
        &(points(12), coord(), coord(), f64_range(5.0, 80.0)),
        |(pts, wx, wy, ws)| {
            let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
            let ls = LineString::new(coords).unwrap();
            let window = Envelope::new(wx, wy, wx + ws, wy + ws);
            let total_len: f64 = ls.length();
            let mut clipped_len = 0.0;
            for piece in clip_linestring(&ls, window) {
                use geom::HasEnvelope;
                assert!(window
                    .expanded_by(1e-6)
                    .contains_envelope(&piece.envelope()));
                clipped_len += piece.length();
            }
            assert!(clipped_len <= total_len + 1e-6);
        },
    );
}

// --- simplification ---

#[test]
fn simplification_error_is_bounded() {
    check(
        "simplification_error_is_bounded",
        &(points(60), f64_range(0.01, 5.0)),
        |(pts, tol)| {
            let kept = simplify_points(&pts, tol);
            assert!(kept.len() >= 2);
            assert_eq!(kept[0], pts[0]);
            assert_eq!(*kept.last().unwrap(), *pts.last().unwrap());
            if kept.len() >= 2 {
                let chain = LineString::from_points(&kept).unwrap();
                for p in &pts {
                    assert!(chain.distance_to_point(*p) <= tol + 1e-9);
                }
            }
        },
    );
}

// --- convex hull ---

#[test]
fn hull_contains_all_inputs() {
    check("hull_contains_all_inputs", &points(80), |pts| {
        if let Ok(hull) = convex_hull(&pts) {
            for p in &pts {
                assert!(hull.contains_point(*p), "hull must contain {p:?}");
            }
            // CCW and positive area.
            assert!(hull.exterior().signed_area() > 0.0);
        }
    });
}

// --- trajectories ---

#[test]
fn trajectory_record_round_trip() {
    check(
        "trajectory_record_round_trip",
        &(
            points(20),
            f64_range(0.1, 100.0),
            proph::i64_range(0, 1_000_000),
        ),
        |(pts, dt, id)| {
            let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
            let path = LineString::new(coords).unwrap();
            let times: Vec<f64> = (0..path.num_points()).map(|i| i as f64 * dt).collect();
            let t = Trajectory::new(path, times).unwrap();
            let (rid, back) = Trajectory::from_record(&t.to_record(id)).unwrap();
            assert_eq!(rid, id);
            assert_eq!(back, t);
        },
    );
}

#[test]
fn trajectory_position_interpolates_between_samples() {
    check(
        "trajectory_position_interpolates_between_samples",
        &(points(10), f64_range(1.0, 10.0)),
        |(pts, dt)| {
            let coords: Vec<f64> = pts.iter().flat_map(|p| [p.x, p.y]).collect();
            let path = LineString::new(coords).unwrap();
            let n = path.num_points();
            let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
            let t = Trajectory::new(path.clone(), times).unwrap();
            // At sample instants, position equals the sample.
            for i in 0..n {
                let p = t.position_at(i as f64 * dt);
                assert!((p.x - path.point(i).x).abs() < 1e-9);
                assert!((p.y - path.point(i).y).abs() < 1e-9);
            }
            // Between samples, position lies on the segment.
            for i in 0..n - 1 {
                let mid = t.position_at((i as f64 + 0.5) * dt);
                let d = geom::algorithms::segment::point_segment_distance(
                    mid,
                    path.point(i),
                    path.point(i + 1),
                );
                assert!(d < 1e-9);
            }
        },
    );
}
