//! Property tests for the cluster replay simulator, on the in-tree
//! `proph` harness.
//!
//! These pin the invariants the Fig. 4/5 schedule-mode ablation leans
//! on: no scheduler beats the work/cores lower bound, utilisation is a
//! true fraction, `StaticLocality` really honours its hints, and
//! dynamic scheduling never loses to static chunking on the hot-front
//! task sets that spatially sorted skewed data produces.

use cluster::{simulate, ClusterSpec, Scheduler, SimReport, TaskSpec};
use proph::{check_with, f64_range, usize_range, vec_of, Config, Gen, GenExt};

const ALL_SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Dynamic,
    Scheduler::StaticChunked,
    Scheduler::StaticLocality,
];

fn spec(nodes: usize, cores: usize) -> ClusterSpec {
    ClusterSpec {
        num_nodes: nodes,
        cores_per_node: cores,
        mem_per_node: 1 << 30,
    }
}

/// Generator: positive task costs with a wide dynamic range.
fn costs() -> impl Gen<Value = Vec<f64>> {
    vec_of(f64_range(0.01, 5.0), 1, 200)
}

fn tasks_of(costs: &[f64]) -> Vec<TaskSpec> {
    costs.iter().map(|&c| TaskSpec::of_cost(c)).collect()
}

/// Generator: a hot contiguous prefix ahead of a cold tail — the shape
/// a spatially sorted file with one dense region hands the executor.
fn hot_front() -> impl Gen<Value = Vec<f64>> {
    (
        vec_of(f64_range(5.0, 10.0), 4, 40),
        vec_of(f64_range(0.01, 0.2), 20, 300),
    )
        .map(|(hot, cold)| {
            let mut all = hot;
            all.extend(cold);
            all
        })
}

#[test]
fn prop_makespan_at_least_work_over_cores() {
    check_with(
        Config {
            cases: 200,
            ..Config::default()
        },
        "makespan ≥ total_work / total_cores",
        &(costs(), usize_range(1, 10), usize_range(1, 8)),
        |(costs, nodes, cores)| {
            let tasks = tasks_of(&costs);
            let spec = spec(nodes, cores);
            let lower = costs.iter().sum::<f64>() / spec.total_cores() as f64;
            for sched in ALL_SCHEDULERS {
                let r = simulate(&tasks, &spec, sched);
                assert!(
                    r.makespan >= lower - 1e-9,
                    "{sched:?}: makespan {} below work/cores {lower}",
                    r.makespan
                );
            }
        },
    );
}

#[test]
fn prop_utilisation_is_a_fraction() {
    check_with(
        Config {
            cases: 200,
            ..Config::default()
        },
        "utilisation ∈ (0, 1]",
        &(costs(), usize_range(1, 10), usize_range(1, 8)),
        |(costs, nodes, cores)| {
            let tasks = tasks_of(&costs);
            let spec = spec(nodes, cores);
            for sched in ALL_SCHEDULERS {
                let r = simulate(&tasks, &spec, sched);
                assert!(
                    r.utilisation > 0.0 && r.utilisation <= 1.0 + 1e-9,
                    "{sched:?}: utilisation {}",
                    r.utilisation
                );
                assert!(r.imbalance() >= 1.0 - 1e-9, "imbalance {}", r.imbalance());
            }
        },
    );
}

#[test]
fn prop_static_locality_honours_hints() {
    check_with(
        Config {
            cases: 150,
            ..Config::default()
        },
        "StaticLocality runs every hinted task on its node",
        &(
            vec_of((f64_range(0.01, 2.0), usize_range(0, 9)), 1, 120),
            usize_range(1, 10),
        ),
        |(tagged, nodes)| {
            let spec = spec(nodes, 4);
            let tasks: Vec<TaskSpec> = tagged
                .iter()
                .map(|&(cost, tag)| TaskSpec {
                    cost,
                    locality: Some(tag),
                })
                .collect();
            let r: SimReport = simulate(&tasks, &spec, Scheduler::StaticLocality);
            let mut expected_tasks = vec![0usize; nodes];
            let mut expected_busy = vec![0.0f64; nodes];
            for &(cost, tag) in &tagged {
                expected_tasks[tag % nodes] += 1;
                expected_busy[tag % nodes] += cost;
            }
            assert_eq!(r.node_tasks, expected_tasks, "task placement");
            for (got, want) in r.node_busy.iter().zip(&expected_busy) {
                assert!((got - want).abs() < 1e-9, "busy {got} vs hinted {want}");
            }
        },
    );
}

#[test]
fn prop_dynamic_beats_static_chunking_on_hot_front() {
    check_with(
        Config {
            cases: 120,
            ..Config::default()
        },
        "Dynamic makespan ≤ StaticChunked on hot-front task sets",
        &(hot_front(), usize_range(2, 10)),
        |(costs, nodes)| {
            let tasks = tasks_of(&costs);
            let spec = spec(nodes, 4);
            let dynamic = simulate(&tasks, &spec, Scheduler::Dynamic);
            let chunked = simulate(&tasks, &spec, Scheduler::StaticChunked);
            assert!(
                dynamic.makespan <= chunked.makespan + 1e-9,
                "dynamic {} vs chunked {} ({} tasks, {nodes} nodes)",
                dynamic.makespan,
                chunked.makespan,
                tasks.len()
            );
        },
    );
}
